//! The rule catalog. Every rule has a stable `ALxyz` code; DESIGN.md §9
//! documents each with the paper invariant it protects.

use alrescha::convert::{AccessOrder, ConfigTable, DataPath, KernelType, OperandPort};
use alrescha::program::ProgramBinary;
use alrescha_sim::SimConfig;
use alrescha::program::EntryLayout;
use alrescha_sparse::alf::AlfLayout;
use alrescha_sparse::{Alf, BlockKind};

use crate::{Diagnostic, Location, Severity};

/// AL1xx binary rules: header/matrix agreement (AL104) and codec
/// round-trip (AL101).
pub(crate) fn verify_binary(program: &ProgramBinary, alf: &Alf) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = alf.rows().max(alf.cols());
    if program.n() != n {
        diags.push(Diagnostic::of(
            "AL104",
            Location::Field { name: "n" },
            format!(
                "binary header declares n={} but the matrix is {}x{}",
                program.n(),
                alf.rows(),
                alf.cols()
            ),
        ));
    }
    if program.omega() != alf.omega() {
        diags.push(Diagnostic::of(
            "AL104",
            Location::Field { name: "omega" },
            format!(
                "binary header declares ω={} but the matrix is blocked at ω={}",
                program.omega(),
                alf.omega()
            ),
        ));
    }
    if program.entry_count() != alf.blocks().len() {
        diags.push(Diagnostic::of(
            "AL104",
            Location::Field { name: "entries" },
            format!(
                "binary header declares {} entries but the format stores {} blocks",
                program.entry_count(),
                alf.blocks().len()
            ),
        ));
    }

    match program.decode() {
        Err(_) => {
            let entry_bits = EntryLayout::for_matrix(program.n(), program.omega()).entry_bits();
            diags.push(Diagnostic::of(
                "AL101",
                Location::ByteOffset {
                    offset: program.len_bytes(),
                },
                format!(
                    "packed table truncated: {} bytes cannot hold {} entries of {} bits",
                    program.len_bytes(),
                    program.entry_count(),
                    entry_bits
                ),
            ));
        }
        Ok(decoded) => {
            let reencoded =
                ProgramBinary::encode(program.kernel(), &decoded, program.n(), program.omega());
            if reencoded.as_bytes() != program.as_bytes() {
                let offset = program
                    .as_bytes()
                    .iter()
                    .zip(reencoded.as_bytes())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| reencoded.len_bytes().min(program.len_bytes()));
                diags.push(Diagnostic::of(
                    "AL101",
                    Location::ByteOffset { offset },
                    "decode/encode round-trip diverges: the packed bytes carry bits the \
                     codec cannot reproduce"
                        .to_string(),
                ));
            }
        }
    }
    diags
}

/// The data paths a kernel's table may legally contain (Table 1).
fn allowed_paths(kernel: KernelType) -> &'static [DataPath] {
    match kernel {
        KernelType::SymGs => &[DataPath::Gemv, DataPath::DSymGs],
        KernelType::SpMv => &[DataPath::Gemv],
        KernelType::Bfs | KernelType::ConnectedComponents => &[DataPath::DBfs],
        KernelType::Sssp => &[DataPath::DSssp],
        KernelType::PageRank => &[DataPath::DPr],
    }
}

/// The FCU drain window that hides a reconfiguration for this kernel's
/// reduction (§4.4).
fn drain_window(kernel: KernelType, config: &SimConfig) -> u64 {
    match kernel {
        KernelType::Bfs | KernelType::Sssp | KernelType::ConnectedComponents => {
            config.fcu_min_latency()
        }
        _ => config.fcu_sum_latency(),
    }
}

/// AL0xx/AL1xx/AL2xx table rules: index bit-width (AL004), entry bounds
/// (AL102), kernel↔data-path agreement (AL103), and reconfiguration-point
/// legality (AL203).
pub fn verify_table(
    kernel: KernelType,
    table: &ConfigTable,
    alf: &Alf,
    config: &SimConfig,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let omega = alf.omega().max(1);
    let n = alf.rows().max(alf.cols());
    let padded = n.div_ceil(omega) * omega;

    // AL004: the one-time table must use exactly 2·ceil(log2(n/ω)) + 3 bits
    // per entry — wider wastes the §4.1 budget, narrower cannot address
    // every block.
    let want_bits = EntryLayout::for_matrix(n, omega).entry_bits();
    if table.entry_bits() != want_bits {
        diags.push(Diagnostic::of(
            "AL004",
            Location::Field { name: "entry_bits" },
            format!(
                "entry width is {} bits; 2·ceil(log2({n}/{omega})) + 3 = {want_bits}",
                table.entry_bits()
            ),
        ));
    }

    let paths = allowed_paths(kernel);
    for (i, entry) in table.entries().iter().enumerate() {
        // AL102: chunk indices must be ω-aligned and inside the padded
        // dimension (the hardware shifts them left by log2 ω; a stray index
        // would address memory outside the streamed vectors).
        if entry.inx_in % omega != 0 {
            diags.push(Diagnostic::of(
                "AL102",
                Location::Entry {
                    index: i,
                    field: "inx_in",
                },
                format!("Inx_in {} is not a multiple of ω={omega}", entry.inx_in),
            ));
        }
        if entry.inx_in >= padded.max(omega) {
            diags.push(Diagnostic::of(
                "AL102",
                Location::Entry {
                    index: i,
                    field: "inx_in",
                },
                format!(
                    "Inx_in {} addresses beyond the padded dimension {padded}",
                    entry.inx_in
                ),
            ));
        }
        if let Some(out) = entry.inx_out {
            if out % omega != 0 {
                diags.push(Diagnostic::of(
                    "AL102",
                    Location::Entry {
                        index: i,
                        field: "inx_out",
                    },
                    format!("Inx_out {out} is not a multiple of ω={omega}"),
                ));
            }
            // D-SymGS writes the chunk *after* its input, so Inx_out may
            // equal the padded dimension on the last block row; anything
            // beyond that is out of range.
            if out > padded {
                diags.push(Diagnostic::of(
                    "AL102",
                    Location::Entry {
                        index: i,
                        field: "inx_out",
                    },
                    format!("Inx_out {out} addresses beyond the padded dimension {padded}"),
                ));
            }
        }
        // AL103: the 1-bit data-path field only distinguishes paths within
        // one kernel's repertoire.
        if !paths.contains(&entry.data_path) {
            diags.push(Diagnostic::of(
                "AL103",
                Location::Entry {
                    index: i,
                    field: "data_path",
                },
                format!(
                    "data path {:?} is not in kernel {kernel:?}'s repertoire {paths:?}",
                    entry.data_path
                ),
            ));
        }
    }

    if table.entries().len() != alf.blocks().len() {
        diags.push(Diagnostic::of(
            "AL103",
            Location::Field { name: "entries" },
            format!(
                "table has {} entries for {} streamed blocks — one entry per block",
                table.entries().len(),
                alf.blocks().len()
            ),
        ));
        return diags;
    }

    // Entry-by-entry agreement with the streamed block it programs.
    for (i, (entry, block)) in table.entries().iter().zip(alf.blocks()).enumerate() {
        let (br, bc) = (block.block_row(), block.block_col());
        match kernel {
            KernelType::SymGs => {
                let is_diag = block.kind() == BlockKind::Diagonal;
                let entry_diag = entry.data_path == DataPath::DSymGs;
                if is_diag != entry_diag {
                    diags.push(Diagnostic::of(
                        "AL103",
                        Location::Entry {
                            index: i,
                            field: "data_path",
                        },
                        format!(
                            "entry programs {:?} but block ({br},{bc}) is {:?}",
                            entry.data_path,
                            block.kind()
                        ),
                    ));
                    continue;
                }
                if entry.inx_in != bc * omega {
                    diags.push(Diagnostic::of(
                        "AL103",
                        Location::Entry {
                            index: i,
                            field: "inx_in",
                        },
                        format!(
                            "Inx_in {} does not gather block column {bc} (expected {})",
                            entry.inx_in,
                            bc * omega
                        ),
                    ));
                }
                if is_diag {
                    if entry.inx_out != Some((br + 1) * omega) {
                        diags.push(Diagnostic::of(
                            "AL103",
                            Location::Entry {
                                index: i,
                                field: "inx_out",
                            },
                            format!(
                                "D-SymGS must write the successor chunk {} (found {:?})",
                                (br + 1) * omega,
                                entry.inx_out
                            ),
                        ));
                    }
                } else if entry.inx_out.is_some() {
                    diags.push(Diagnostic::of(
                        "AL103",
                        Location::Entry {
                            index: i,
                            field: "inx_out",
                        },
                        "GEMV results ride the link stack: Inx_out must be Algorithm 1's -1"
                            .to_string(),
                    ));
                }
                // Access order must match the stored reversal; the operand
                // port follows the triangle (Algorithm 1, lines 14-27).
                let want_r2l = block.reversed();
                if (entry.order == AccessOrder::R2L) != want_r2l {
                    diags.push(Diagnostic::of(
                        "AL103",
                        Location::Entry {
                            index: i,
                            field: "order",
                        },
                        format!(
                            "access order {:?} disagrees with the stored value order \
                             (reversed = {want_r2l})",
                            entry.order
                        ),
                    ));
                }
                let want_port = if is_diag || br > bc {
                    OperandPort::Port2
                } else {
                    OperandPort::Port1
                };
                if entry.op != want_port {
                    diags.push(Diagnostic::of(
                        "AL103",
                        Location::Entry {
                            index: i,
                            field: "op",
                        },
                        format!(
                            "operand port {:?} disagrees with the triangle rule (want {:?})",
                            entry.op, want_port
                        ),
                    ));
                }
            }
            _ => {
                if entry.inx_in != br * omega || entry.inx_out != Some(bc * omega) {
                    diags.push(Diagnostic::of(
                        "AL103",
                        Location::Entry {
                            index: i,
                            field: "inx_in",
                        },
                        format!(
                            "entry addresses chunks ({}, {:?}) but block ({br},{bc}) \
                             expects ({}, Some({}))",
                            entry.inx_in,
                            entry.inx_out,
                            br * omega,
                            bc * omega
                        ),
                    ));
                }
            }
        }
    }

    // AL203a: a reconfiguration takes cache_latency cycles through the
    // program interface; it is free only while the FCU pipeline drains.
    let window = drain_window(kernel, config);
    if table.switch_count() > 0 && config.cache_latency > window {
        diags.push(Diagnostic::of_with(
            "AL203",
            Severity::Warning,
            Location::Field {
                name: "cache_latency",
            },
            format!(
                "RCU reprogram ({} cycles) exceeds the FCU drain window ({window} cycles): \
                 {} switches are no longer drain-hidden",
                config.cache_latency,
                table.switch_count()
            ),
        ));
    }

    // AL203b: switches may only sit at data-path boundaries of the
    // schedule — entering a block row's diagonal, or leaving it for a
    // later block row's GEMVs.
    if kernel == KernelType::SymGs {
        let blocks = alf.blocks();
        for i in 1..table.entries().len() {
            let prev = &table.entries()[i - 1];
            let cur = &table.entries()[i];
            if prev.data_path == cur.data_path {
                continue;
            }
            let legal = if cur.data_path == DataPath::DSymGs {
                blocks[i].kind() == BlockKind::Diagonal
                    && blocks[i].block_row() == blocks[i - 1].block_row()
            } else {
                blocks[i - 1].kind() == BlockKind::Diagonal
                    && blocks[i].block_row() > blocks[i - 1].block_row()
            };
            if !legal {
                diags.push(Diagnostic::of(
                    "AL203",
                    Location::Entry {
                        index: i,
                        field: "data_path",
                    },
                    format!(
                        "reconfiguration to {:?} mid-row: switches are only legal entering \
                         a row's diagonal block or opening a later block row",
                        cur.data_path
                    ),
                ));
            }
        }
    }

    diags
}

/// AL0xx format rules and AL2xx/AL3xx schedule/resource rules that need
/// only the streamed format and the engine configuration.
pub fn verify_alf(alf: &Alf, config: &SimConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let omega = alf.omega().max(1);
    let symgs = alf.layout() == AlfLayout::SymGs;
    let row_bound = alf.rows().div_ceil(omega);
    let col_bound = alf.cols().div_ceil(omega);

    // AL001 / AL002 / AL201 / AL304 walk the stream once.
    let mut last_row = 0usize;
    let mut diag_seen = vec![false; row_bound.max(1)];
    let mut last_diag_row: Option<usize> = None;
    for (i, block) in alf.blocks().iter().enumerate() {
        let (br, bc) = (block.block_row(), block.block_col());

        // AL304: structural sanity — coordinates and payload geometry.
        if br >= row_bound || bc >= col_bound {
            diags.push(Diagnostic::of(
                "AL304",
                Location::Block { index: i },
                format!("block ({br},{bc}) lies outside the {row_bound}x{col_bound} block grid"),
            ));
            continue;
        }
        if block.payload().len() != omega * omega {
            diags.push(Diagnostic::of(
                "AL304",
                Location::Block { index: i },
                format!(
                    "payload holds {} values; a locally-dense block streams ω² = {}",
                    block.payload().len(),
                    omega * omega
                ),
            ));
        }

        // AL001: stream order is the order of computation — block rows
        // non-decreasing, and within a row every off-diagonal (GEMV) block
        // before the diagonal (D-SymGS) block.
        if br < last_row {
            diags.push(Diagnostic::of(
                "AL001",
                Location::Block { index: i },
                format!("block row {br} streams after block row {last_row}"),
            ));
        }
        last_row = last_row.max(br);
        match block.kind() {
            BlockKind::Diagonal => {
                if diag_seen[br] {
                    diags.push(Diagnostic::of(
                        "AL001",
                        Location::Block { index: i },
                        format!("block row {br} streams two diagonal blocks"),
                    ));
                }
                diag_seen[br] = true;
                // AL201: the D-SymGS recurrence x_i depends on x_{i-1};
                // diagonal blocks must stream in ascending order.
                if let Some(prev) = last_diag_row {
                    if br <= prev {
                        diags.push(Diagnostic::of(
                            "AL201",
                            Location::Block { index: i },
                            format!(
                                "diagonal block {br} streams after diagonal block {prev}: the \
                                 D-SymGS recurrence chain is no longer topologically ordered"
                            ),
                        ));
                    }
                }
                last_diag_row = Some(br);
            }
            BlockKind::OffDiagonal => {
                if symgs && bc == br && alf.rows() == alf.cols() {
                    diags.push(Diagnostic::of(
                        "AL002",
                        Location::Block { index: i },
                        format!(
                            "block ({br},{bc}) sits on the diagonal but is not marked as a \
                             D-SymGS diagonal block"
                        ),
                    ));
                }
                if symgs && diag_seen[br] {
                    diags.push(Diagnostic::of(
                        "AL001",
                        Location::Block { index: i },
                        format!(
                            "off-diagonal block ({br},{bc}) streams after its row's diagonal \
                             block: GEMVs must complete before the row's D-SymGS"
                        ),
                    ));
                }
                // AL201: a lower-triangle GEMV consumes x of its column's
                // block row, produced by that row's D-SymGS this sweep.
                if symgs && bc < br && bc < diag_seen.len() && !diag_seen[bc] {
                    diags.push(Diagnostic::of(
                        "AL201",
                        Location::Block { index: i },
                        format!(
                            "lower-triangle block ({br},{bc}) streams before diagonal block \
                             {bc} produces its operand chunk"
                        ),
                    ));
                }
            }
        }

        // AL002: the stored value order must match what the layout demands
        // (upper-triangle and diagonal rows right-to-left under SymGS).
        let want = block.expected_reversed(alf.layout());
        if block.reversed() != want {
            diags.push(Diagnostic::of(
                "AL002",
                Location::Block { index: i },
                format!(
                    "block ({br},{bc}) streams {} but the {:?} layout requires {}",
                    if block.reversed() { "r2l" } else { "l2r" },
                    alf.layout(),
                    if want { "r2l" } else { "l2r" }
                ),
            ));
        }
        if !symgs && block.kind() == BlockKind::Diagonal {
            diags.push(Diagnostic::of(
                "AL002",
                Location::Block { index: i },
                format!("diagonal-kind block ({br},{bc}) in a streaming-layout format"),
            ));
        }
        // AL002: extracted diagonal slots must be zero in the payload —
        // the diagonal travels in the separate cached vector.
        if symgs && block.kind() == BlockKind::Diagonal {
            for k in 0..omega {
                if block.get(k, k) != 0.0 {
                    diags.push(Diagnostic::of(
                        "AL002",
                        Location::Block { index: i },
                        format!(
                            "diagonal block ({br},{bc}) still carries a diagonal value at \
                             lane {k}: extraction must zero the payload slot"
                        ),
                    ));
                    break;
                }
            }
        }

        // AL003: an all-zero off-diagonal block is pure padding — BCSR
        // construction never emits one, so its presence means corruption
        // or a wasteful producer (ω²·8 streamed bytes for nothing).
        if block.kind() == BlockKind::OffDiagonal && block.fill_count() == 0 {
            diags.push(Diagnostic::of(
                "AL003",
                Location::Block { index: i },
                format!(
                    "off-diagonal block ({br},{bc}) is all padding: {} streamed bytes carry \
                     no non-zeros",
                    omega * omega * 8
                ),
            ));
        }
    }

    // AL003 (note): low mean fill erodes the locally-dense premise.
    let fill = alf.mean_block_fill();
    if !alf.blocks().is_empty() && fill < 1.0 / omega as f64 {
        diags.push(Diagnostic::of_with(
            "AL003",
            Severity::Info,
            Location::Format,
            format!(
                "mean block fill {fill:.3} is below 1/ω = {:.3}: most streamed values are \
                 padding zeros",
                1.0 / omega as f64
            ),
        ));
    }

    // AL304: the extracted diagonal's length is fixed by the layout.
    let want_diag = if symgs { alf.rows().min(alf.cols()) } else { 0 };
    if alf.diagonal().len() != want_diag {
        diags.push(Diagnostic::of(
            "AL304",
            Location::Field { name: "diagonal" },
            format!(
                "extracted diagonal holds {} values; the {:?} layout requires {want_diag}",
                alf.diagonal().len(),
                alf.layout()
            ),
        ));
    }

    // AL302: the engine derives tree depth and cache-line occupancy from
    // *its* ω; running a format blocked at a different ω would mis-count
    // every block's cycles (the engine rejects it at run time — this rule
    // rejects it before issue).
    if alf.omega() != config.omega {
        diags.push(Diagnostic::of(
            "AL302",
            Location::Field { name: "omega" },
            format!(
                "format is blocked at ω={} but the engine is configured for ω={}",
                alf.omega(),
                config.omega
            ),
        ));
    }

    // AL303: a dimension that is not a multiple of ω pads the final chunk;
    // legal (the engine clamps the tail) but worth surfacing.
    if alf.has_padded_tail() {
        diags.push(Diagnostic::of(
            "AL303",
            Location::Format,
            format!(
                "dimension {}x{} is not a multiple of ω={}: the final chunk of every vector \
                 operand carries padding lanes",
                alf.rows(),
                alf.cols(),
                alf.omega()
            ),
        ));
    }

    if symgs {
        // AL202: the RCU link stack buffers ω entries per off-diagonal
        // block of a row until the row's D-SymGS pops them.
        let peak = omega * alf.max_off_diagonal_blocks_per_row();
        if peak > config.link_stack_capacity() {
            diags.push(Diagnostic::of_with(
                "AL202",
                Severity::Warning,
                Location::Format,
                format!(
                    "densest block row pushes {peak} link-stack entries; the LIFO holds \
                     {} — spills stall the GEMV pipeline",
                    config.link_stack_capacity()
                ),
            ));
        }
        // AL202: the b/diagonal FIFOs hold exactly one ω-chunk.
        if alf.omega() > config.operand_fifo_capacity() {
            diags.push(Diagnostic::of(
                "AL202",
                Location::Field { name: "omega" },
                format!(
                    "operand FIFOs hold {} values but each block row fills them with ω={} \
                     b/diagonal operands",
                    config.operand_fifo_capacity(),
                    alf.omega()
                ),
            ));
        }

        // AL301: every distinct operand chunk of a block row (plus the b
        // and diagonal chunks) must coexist in the local cache for the
        // prefetch schedule to stand.
        let working_set = (alf.max_operand_blocks_per_row() + 2) * omega;
        if working_set > config.cache_values() {
            diags.push(Diagnostic::of(
                "AL301",
                Location::Format,
                format!(
                    "per-block-row working set of {working_set} values exceeds the \
                     {}-value cache: prefetched chunks thrash",
                    config.cache_values()
                ),
            ));
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use alrescha::convert::{convert, ConfigEntry};
    use alrescha_sparse::gen;

    fn symgs_fixture() -> (Alf, ConfigTable) {
        let coo = gen::stencil27(4); // n = 64 = 8·8, clean at paper ω
        convert(KernelType::SymGs, &coo, 8).expect("convert")
    }

    #[test]
    fn generated_format_is_rule_clean() {
        let (alf, table) = symgs_fixture();
        let cfg = SimConfig::paper();
        assert!(verify_alf(&alf, &cfg)
            .iter()
            .all(|d| d.severity != Severity::Error));
        assert!(verify_table(KernelType::SymGs, &table, &alf, &cfg)
            .iter()
            .all(|d| d.severity != Severity::Error));
    }

    #[test]
    fn al001_flags_diagonal_streaming_first() {
        let (mut alf, _) = symgs_fixture();
        // Find a row with an off-diagonal block and swap it behind its
        // diagonal block.
        let blocks = alf.blocks_mut_unchecked();
        let off = blocks
            .iter()
            .position(|b| b.kind() == BlockKind::OffDiagonal)
            .expect("stencil has off-diagonal blocks");
        let row = blocks[off].block_row();
        let diag = blocks
            .iter()
            .position(|b| b.kind() == BlockKind::Diagonal && b.block_row() == row)
            .expect("row has a diagonal block");
        blocks.swap(off, diag);
        let diags = verify_alf(&alf, &SimConfig::paper());
        assert!(diags.iter().any(|d| d.code == "AL001"));
    }

    #[test]
    fn al002_flags_wrong_reversal() {
        let (mut alf, _) = symgs_fixture();
        let blocks = alf.blocks_mut_unchecked();
        let upper = blocks
            .iter_mut()
            .find(|b| b.block_col() > b.block_row())
            .expect("stencil has upper blocks");
        upper.set_reversed_unchecked(false);
        let diags = verify_alf(&alf, &SimConfig::paper());
        assert!(diags.iter().any(|d| d.code == "AL002"));
    }

    #[test]
    fn al004_flags_wrong_entry_width() {
        let (alf, table) = symgs_fixture();
        let wrong = ConfigTable::from_entries(table.entries().to_vec(), table.entry_bits() + 2);
        let diags = verify_table(KernelType::SymGs, &wrong, &alf, &SimConfig::paper());
        assert!(diags.iter().any(|d| d.code == "AL004"));
    }

    #[test]
    fn al102_flags_out_of_range_index() {
        let (alf, table) = symgs_fixture();
        let mut entries = table.entries().to_vec();
        entries[0].inx_in = alf.padded_dim() + alf.omega(); // aligned but out of range
        let doctored = ConfigTable::from_entries(entries, table.entry_bits());
        let diags = verify_table(KernelType::SymGs, &doctored, &alf, &SimConfig::paper());
        assert!(diags
            .iter()
            .any(|d| d.code == "AL102" && d.severity == Severity::Error));
    }

    #[test]
    fn al103_and_al203_flag_a_mid_row_path_flip() {
        let (alf, table) = symgs_fixture();
        let mut entries = table.entries().to_vec();
        // Turn the first GEMV entry into a D-SymGS mid-row.
        let gemv = entries
            .iter()
            .position(|e| e.data_path == DataPath::Gemv)
            .expect("has gemv entries");
        entries[gemv] = ConfigEntry {
            data_path: DataPath::DSymGs,
            ..entries[gemv]
        };
        let doctored = ConfigTable::from_entries(entries, table.entry_bits());
        let diags = verify_table(KernelType::SymGs, &doctored, &alf, &SimConfig::paper());
        assert!(diags.iter().any(|d| d.code == "AL103"));
        assert!(diags.iter().any(|d| d.code == "AL203"));
    }

    #[test]
    fn al203_warns_when_reprogram_outruns_the_drain() {
        let (alf, table) = symgs_fixture();
        let mut slow = SimConfig::paper();
        slow.cache_latency = 50; // reprogram takes longer than any drain
        let diags = verify_table(KernelType::SymGs, &table, &alf, &slow);
        assert!(diags
            .iter()
            .any(|d| d.code == "AL203" && d.severity == Severity::Warning));
    }

    #[test]
    fn al202_warns_on_link_stack_pressure() {
        // scattered rows touch many distinct block columns, so one block
        // row's GEMV intermediates overflow the 128-entry LIFO.
        let coo = gen::ScienceClass::Economics.generate(400, 11);
        let (alf, _) = convert(KernelType::SymGs, &coo, 8).expect("convert");
        let peak = alf.omega() * alf.max_off_diagonal_blocks_per_row();
        let cfg = SimConfig::paper();
        let diags = verify_alf(&alf, &cfg);
        assert_eq!(
            diags.iter().any(|d| d.code == "AL202"),
            peak > cfg.link_stack_capacity(),
            "AL202 fires exactly when the static peak {peak} exceeds {}",
            cfg.link_stack_capacity()
        );
    }

    #[test]
    fn al3xx_resource_rules_fire_on_mismatch_and_padding() {
        let coo = gen::stencil27(3); // n = 27
        let (alf, _) = convert(KernelType::SymGs, &coo, 8).expect("convert");
        let diags = verify_alf(&alf, &SimConfig::paper().with_omega(4));
        assert!(diags
            .iter()
            .any(|d| d.code == "AL302" && d.severity == Severity::Error));
        assert!(diags
            .iter()
            .any(|d| d.code == "AL303" && d.severity == Severity::Warning));
    }

    #[test]
    fn streaming_layout_skips_symgs_only_rules() {
        let coo = gen::stencil27(4);
        let (alf, table) = convert(KernelType::SpMv, &coo, 8).expect("convert");
        let cfg = SimConfig::paper();
        let diags = verify_alf(&alf, &cfg);
        assert!(diags.iter().all(|d| d.code != "AL201" && d.code != "AL202"));
        let tdiags = verify_table(KernelType::SpMv, &table, &alf, &cfg);
        assert!(tdiags.iter().all(|d| d.severity != Severity::Error));
    }
}
