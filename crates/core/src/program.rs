//! The program binary: bit-packed configuration-table encoding.
//!
//! §4 of the paper: "the host first converts the sparse kernels into a
//! sequence of dense data paths and generates a *binary file*. Then, the
//! host writes the binary file to a configuration table of the accelerator
//! through the program interface." This module implements that binary at
//! exactly the paper's bit budget — `2·⌈log₂(n/ω)⌉ + 3` bits per entry
//! (§4.1): one bit for the data-path type, one for the access order, one
//! for the operand port, and two block indices.
//!
//! The 1-bit data-path field distinguishes the two path types *within one
//! kernel's table* (e.g. GEMV vs. D-SymGS for SymGS); the kernel type
//! itself is part of the binary's header, mirroring how the host launches
//! one kernel at a time. `Inx_out` is derivable for every kernel from the
//! entry's other fields (GEMV entries write to the link stack; D-SymGS
//! writes the chunk after its input; single-data-path kernels write their
//! block-row chunk), so the codec stores the two indices the hardware
//! actually consumes and reconstructs the rest exactly.

use alrescha_sparse::alf::config_entry_bits;

use crate::convert::{AccessOrder, ConfigEntry, ConfigTable, DataPath, KernelType, OperandPort};
use crate::{CoreError, Result};

/// A serialized accelerator program (header + bit-packed table).
///
/// # Example
///
/// ```
/// use alrescha::convert::{convert, KernelType};
/// use alrescha::program::ProgramBinary;
/// use alrescha_sparse::gen;
///
/// let coo = gen::stencil27(2);
/// let (_, table) = convert(KernelType::SymGs, &coo, 8)?;
/// let binary = ProgramBinary::encode(KernelType::SymGs, &table, coo.rows(), 8);
/// let decoded = binary.decode()?;
/// assert_eq!(decoded.entries(), table.entries());
/// # Ok::<(), alrescha::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramBinary {
    kernel: KernelType,
    n: usize,
    omega: usize,
    entries: usize,
    bits: Vec<u8>,
}

/// Writes `value`'s low `width` bits at bit offset `pos`.
fn write_bits(bits: &mut [u8], pos: usize, width: usize, value: usize) {
    for k in 0..width {
        if (value >> k) & 1 == 1 {
            bits[(pos + k) / 8] |= 1 << ((pos + k) % 8);
        }
    }
}

/// Reads `width` bits at bit offset `pos`.
fn read_bits(bits: &[u8], pos: usize, width: usize) -> usize {
    let mut value = 0usize;
    for k in 0..width {
        if bits[(pos + k) / 8] >> ((pos + k) % 8) & 1 == 1 {
            value |= 1 << k;
        }
    }
    value
}

impl ProgramBinary {
    /// Encodes a configuration table for an `n`-dimension matrix blocked at
    /// `omega`.
    pub fn encode(kernel: KernelType, table: &ConfigTable, n: usize, omega: usize) -> Self {
        let entry_bits = config_entry_bits(n, omega);
        let idx_bits = (entry_bits - 3) / 2;
        let total_bits = table.entries().len() * entry_bits;
        let mut bits = vec![0u8; total_bits.div_ceil(8)];
        for (e, entry) in table.entries().iter().enumerate() {
            let base = e * entry_bits;
            write_bits(
                &mut bits,
                base,
                1,
                usize::from(matches!(entry.data_path, DataPath::DSymGs)),
            );
            write_bits(
                &mut bits,
                base + 1,
                1,
                usize::from(matches!(entry.order, AccessOrder::R2L)),
            );
            write_bits(
                &mut bits,
                base + 2,
                1,
                usize::from(matches!(entry.op, OperandPort::Port2)),
            );
            write_bits(&mut bits, base + 3, idx_bits, entry.inx_in / omega.max(1));
            // Inx_out is derivable (see module docs); the field carries the
            // block index when present, masked to the field width.
            let out_block = entry.inx_out.map_or(0, |v| v / omega.max(1));
            let mask = if idx_bits >= usize::BITS as usize {
                usize::MAX
            } else {
                (1usize << idx_bits) - 1
            };
            write_bits(&mut bits, base + 3 + idx_bits, idx_bits, out_block & mask);
        }
        ProgramBinary {
            kernel,
            n,
            omega,
            entries: table.entries().len(),
            bits,
        }
    }

    /// Decodes back into a configuration table.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the byte buffer is too
    /// short for the declared entry count.
    pub fn decode(&self) -> Result<ConfigTable> {
        let entry_bits = config_entry_bits(self.n, self.omega);
        let idx_bits = (entry_bits - 3) / 2;
        let needed_bits = self.entries * entry_bits;
        if self.bits.len() * 8 < needed_bits {
            return Err(CoreError::DimensionMismatch {
                expected: needed_bits.div_ceil(8),
                found: self.bits.len(),
            });
        }
        let omega = self.omega.max(1);
        let entries = (0..self.entries)
            .map(|e| {
                let base = e * entry_bits;
                let is_dsymgs = read_bits(&self.bits, base, 1) == 1;
                let r2l = read_bits(&self.bits, base + 1, 1) == 1;
                let port2 = read_bits(&self.bits, base + 2, 1) == 1;
                let in_block = read_bits(&self.bits, base + 3, idx_bits);
                let inx_in = in_block * omega;
                let data_path = if is_dsymgs {
                    DataPath::DSymGs
                } else {
                    self.kernel.data_path()
                };
                // Reconstruct Inx_out from kernel semantics (module docs).
                let inx_out = match (self.kernel, is_dsymgs) {
                    (KernelType::SymGs, false) => None, // GEMV -> link stack
                    (KernelType::SymGs, true) => Some((in_block + 1) * omega),
                    _ => Some(read_bits(&self.bits, base + 3 + idx_bits, idx_bits) * omega),
                };
                ConfigEntry {
                    data_path,
                    inx_in,
                    inx_out,
                    order: if r2l {
                        AccessOrder::R2L
                    } else {
                        AccessOrder::L2R
                    },
                    op: if port2 {
                        OperandPort::Port2
                    } else {
                        OperandPort::Port1
                    },
                }
            })
            .collect();
        Ok(ConfigTable::from_entries(entries, entry_bits))
    }

    /// The kernel this binary programs.
    pub fn kernel(&self) -> KernelType {
        self.kernel
    }

    /// The matrix dimension declared in the header.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The block width ω declared in the header.
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// The number of table entries declared in the header.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Assembles a binary from raw header fields and packed bytes without
    /// any validation — for verifier/mutation tests that need corrupt
    /// binaries (truncated payload, header/matrix disagreement).
    #[doc(hidden)]
    pub fn from_raw_parts(
        kernel: KernelType,
        n: usize,
        omega: usize,
        entries: usize,
        bits: Vec<u8>,
    ) -> Self {
        ProgramBinary {
            kernel,
            n,
            omega,
            entries,
            bits,
        }
    }

    /// Size of the packed table in bytes — what crosses the program
    /// interface.
    pub fn len_bytes(&self) -> usize {
        self.bits.len()
    }

    /// The packed bits.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert;
    use alrescha_sparse::gen;

    fn round_trip(kernel: KernelType, coo: &alrescha_sparse::Coo, omega: usize) {
        let (_, table) = convert(kernel, coo, omega).expect("convert");
        let binary = ProgramBinary::encode(kernel, &table, coo.rows().max(coo.cols()), omega);
        let decoded = binary.decode().expect("decode");
        assert_eq!(decoded.entries(), table.entries());
        assert_eq!(decoded.entry_bits(), table.entry_bits());
    }

    #[test]
    fn symgs_round_trips() {
        round_trip(KernelType::SymGs, &gen::stencil27(4), 8);
    }

    #[test]
    fn spmv_round_trips() {
        round_trip(KernelType::SpMv, &gen::circuit(200, 3), 8);
    }

    #[test]
    fn graph_kernels_round_trip() {
        let g = gen::road_grid(8).transpose();
        round_trip(KernelType::Bfs, &g, 8);
        round_trip(KernelType::Sssp, &g, 8);
        round_trip(KernelType::PageRank, &g, 8);
    }

    #[test]
    fn round_trips_across_block_widths() {
        let coo = gen::banded(120, 4, 9);
        for omega in [2usize, 4, 8, 16, 32] {
            round_trip(KernelType::SymGs, &coo, omega);
            round_trip(KernelType::SpMv, &coo, omega);
        }
    }

    #[test]
    fn binary_size_matches_paper_budget() {
        let coo = gen::stencil27(4); // n = 64, omega 8 -> 8 block rows
        let (_, table) = convert(KernelType::SymGs, &coo, 8).unwrap();
        let binary = ProgramBinary::encode(KernelType::SymGs, &table, 64, 8);
        // 2*ceil(log2(8)) + 3 = 9 bits per entry.
        let expect_bits = table.entries().len() * 9;
        assert_eq!(binary.len_bytes(), expect_bits.div_ceil(8));
    }

    #[test]
    fn truncated_binary_is_rejected() {
        let coo = gen::stencil27(3);
        let (_, table) = convert(KernelType::SpMv, &coo, 8).unwrap();
        let mut binary = ProgramBinary::encode(KernelType::SpMv, &table, 27, 8);
        binary.bits.truncate(1);
        assert!(binary.decode().is_err());
    }

    #[test]
    fn bit_helpers_round_trip() {
        let mut bits = vec![0u8; 4];
        write_bits(&mut bits, 5, 7, 0b1010101);
        assert_eq!(read_bits(&bits, 5, 7), 0b1010101);
        write_bits(&mut bits, 12, 9, 0x1ff);
        assert_eq!(read_bits(&bits, 12, 9), 0x1ff);
        // The first field survives the second write.
        assert_eq!(read_bits(&bits, 5, 7), 0b1010101);
    }
}
