//! The program binary: bit-packed configuration-table encoding.
//!
//! §4 of the paper: "the host first converts the sparse kernels into a
//! sequence of dense data paths and generates a *binary file*. Then, the
//! host writes the binary file to a configuration table of the accelerator
//! through the program interface." This module implements that binary at
//! exactly the paper's bit budget — `2·⌈log₂(n/ω)⌉ + 3` bits per entry
//! (§4.1): one bit for the data-path type, one for the access order, one
//! for the operand port, and two block indices.
//!
//! The 1-bit data-path field distinguishes the two path types *within one
//! kernel's table* (e.g. GEMV vs. D-SymGS for SymGS); the kernel type
//! itself is part of the binary's header, mirroring how the host launches
//! one kernel at a time. `Inx_out` is derivable for every kernel from the
//! entry's other fields (GEMV entries write to the link stack; D-SymGS
//! writes the chunk after its input; single-data-path kernels write their
//! block-row chunk), so the codec stores the two indices the hardware
//! actually consumes and reconstructs the rest exactly.

use alrescha_sparse::alf::config_entry_bits;

use crate::convert::{AccessOrder, ConfigEntry, ConfigTable, DataPath, KernelType, OperandPort};
use crate::{CoreError, Result};

/// A serialized accelerator program (header + bit-packed table).
///
/// # Example
///
/// ```
/// use alrescha::convert::{convert, KernelType};
/// use alrescha::program::ProgramBinary;
/// use alrescha_sparse::gen;
///
/// let coo = gen::stencil27(2);
/// let (_, table) = convert(KernelType::SymGs, &coo, 8)?;
/// let binary = ProgramBinary::encode(KernelType::SymGs, &table, coo.rows(), 8);
/// let decoded = binary.decode()?;
/// assert_eq!(decoded.entries(), table.entries());
/// # Ok::<(), alrescha::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramBinary {
    kernel: KernelType,
    n: usize,
    omega: usize,
    entries: usize,
    bits: Vec<u8>,
}

/// Writes `value`'s low `width` bits at bit offset `pos`.
fn write_bits(bits: &mut [u8], pos: usize, width: usize, value: usize) {
    for k in 0..width {
        if (value >> k) & 1 == 1 {
            bits[(pos + k) / 8] |= 1 << ((pos + k) % 8);
        }
    }
}

/// Reads `width` bits at bit offset `pos`.
fn read_bits(bits: &[u8], pos: usize, width: usize) -> usize {
    let mut value = 0usize;
    for k in 0..width {
        if bits[(pos + k) / 8] >> ((pos + k) % 8) & 1 == 1 {
            value |= 1 << k;
        }
    }
    value
}

/// One named bit-field within a packed configuration-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// The field name as it appears in the paper (`data_path`, `order`,
    /// `op`, `inx_in`, `inx_out`).
    pub name: &'static str,
    /// Bit offset from the start of the entry.
    pub offset: usize,
    /// Field width in bits.
    pub width: usize,
}

/// The §4.1 bit layout of one configuration-table entry — the single
/// source of truth for field offsets and widths, shared by the codec
/// ([`ProgramBinary`]), the structural verifier (`alrescha-lint` AL0xx/
/// AL1xx), and the abstract interpreter (`alprove` AL4xx) so the three
/// can never drift.
///
/// An entry is `2·⌈log₂(n/ω)⌉ + 3` bits:
///
/// | field       | offset          | width     |
/// |-------------|-----------------|-----------|
/// | `data_path` | 0               | 1         |
/// | `order`     | 1               | 1         |
/// | `op`        | 2               | 1         |
/// | `inx_in`    | 3               | idx_bits  |
/// | `inx_out`   | 3 + idx_bits    | idx_bits  |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryLayout {
    entry_bits: usize,
    idx_bits: usize,
    omega: usize,
}

impl EntryLayout {
    /// The layout for an `n`-dimension matrix blocked at `omega`.
    pub fn for_matrix(n: usize, omega: usize) -> Self {
        let entry_bits = config_entry_bits(n, omega);
        EntryLayout {
            entry_bits,
            idx_bits: (entry_bits - 3) / 2,
            omega: omega.max(1),
        }
    }

    /// Total bits per entry (the paper's `2·⌈log₂(n/ω)⌉ + 3`).
    pub fn entry_bits(&self) -> usize {
        self.entry_bits
    }

    /// Width of each block-index field.
    pub fn idx_bits(&self) -> usize {
        self.idx_bits
    }

    /// The five fields in packing order.
    pub fn fields(&self) -> [FieldSpec; 5] {
        [
            FieldSpec {
                name: "data_path",
                offset: 0,
                width: 1,
            },
            FieldSpec {
                name: "order",
                offset: 1,
                width: 1,
            },
            FieldSpec {
                name: "op",
                offset: 2,
                width: 1,
            },
            FieldSpec {
                name: "inx_in",
                offset: 3,
                width: self.idx_bits,
            },
            FieldSpec {
                name: "inx_out",
                offset: 3 + self.idx_bits,
                width: self.idx_bits,
            },
        ]
    }

    /// Packed size in bytes of a table with `entries` entries.
    pub fn packed_bytes(&self, entries: usize) -> usize {
        (entries * self.entry_bits).div_ceil(8)
    }

    /// The largest value an index field can carry.
    fn idx_mask(&self) -> usize {
        if self.idx_bits >= usize::BITS as usize {
            usize::MAX
        } else {
            (1usize << self.idx_bits) - 1
        }
    }

    /// Packs `entry` at bit offset `base`.
    pub fn encode_entry(&self, entry: &ConfigEntry, bits: &mut [u8], base: usize) {
        let [dp, order, op, inx_in, inx_out] = self.fields();
        write_bits(
            bits,
            base + dp.offset,
            dp.width,
            usize::from(matches!(entry.data_path, DataPath::DSymGs)),
        );
        write_bits(
            bits,
            base + order.offset,
            order.width,
            usize::from(matches!(entry.order, AccessOrder::R2L)),
        );
        write_bits(
            bits,
            base + op.offset,
            op.width,
            usize::from(matches!(entry.op, OperandPort::Port2)),
        );
        write_bits(
            bits,
            base + inx_in.offset,
            inx_in.width,
            entry.inx_in / self.omega,
        );
        // Inx_out is derivable (see module docs); the field carries the
        // block index when present, masked to the field width.
        let out_block = entry.inx_out.map_or(0, |v| v / self.omega);
        write_bits(
            bits,
            base + inx_out.offset,
            inx_out.width,
            out_block & self.idx_mask(),
        );
    }

    /// Unpacks the entry at bit offset `base`, reconstructing the fields
    /// `kernel` semantics derive (see module docs).
    pub fn decode_entry(&self, kernel: KernelType, bits: &[u8], base: usize) -> ConfigEntry {
        let [dp, order, op, inx_in, inx_out] = self.fields();
        let is_dsymgs = read_bits(bits, base + dp.offset, dp.width) == 1;
        let r2l = read_bits(bits, base + order.offset, order.width) == 1;
        let port2 = read_bits(bits, base + op.offset, op.width) == 1;
        let in_block = read_bits(bits, base + inx_in.offset, inx_in.width);
        let data_path = if is_dsymgs {
            DataPath::DSymGs
        } else {
            kernel.data_path()
        };
        // Reconstruct Inx_out from kernel semantics (module docs).
        let out = match (kernel, is_dsymgs) {
            (KernelType::SymGs, false) => None, // GEMV -> link stack
            (KernelType::SymGs, true) => Some((in_block + 1) * self.omega),
            _ => Some(read_bits(bits, base + inx_out.offset, inx_out.width) * self.omega),
        };
        ConfigEntry {
            data_path,
            inx_in: in_block * self.omega,
            inx_out: out,
            order: if r2l {
                AccessOrder::R2L
            } else {
                AccessOrder::L2R
            },
            op: if port2 {
                OperandPort::Port2
            } else {
                OperandPort::Port1
            },
        }
    }
}

impl ProgramBinary {
    /// Encodes a configuration table for an `n`-dimension matrix blocked at
    /// `omega`.
    pub fn encode(kernel: KernelType, table: &ConfigTable, n: usize, omega: usize) -> Self {
        let layout = EntryLayout::for_matrix(n, omega);
        let mut bits = vec![0u8; layout.packed_bytes(table.entries().len())];
        for (e, entry) in table.entries().iter().enumerate() {
            layout.encode_entry(entry, &mut bits, e * layout.entry_bits());
        }
        ProgramBinary {
            kernel,
            n,
            omega,
            entries: table.entries().len(),
            bits,
        }
    }

    /// Decodes back into a configuration table.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the byte buffer is too
    /// short for the declared entry count.
    pub fn decode(&self) -> Result<ConfigTable> {
        let layout = EntryLayout::for_matrix(self.n, self.omega);
        let needed_bits = self.entries * layout.entry_bits();
        if self.bits.len() * 8 < needed_bits {
            return Err(CoreError::DimensionMismatch {
                expected: needed_bits.div_ceil(8),
                found: self.bits.len(),
            });
        }
        let entries = (0..self.entries)
            .map(|e| layout.decode_entry(self.kernel, &self.bits, e * layout.entry_bits()))
            .collect();
        Ok(ConfigTable::from_entries(entries, layout.entry_bits()))
    }

    /// The entry layout this binary's header implies.
    pub fn layout(&self) -> EntryLayout {
        EntryLayout::for_matrix(self.n, self.omega)
    }

    /// The kernel this binary programs.
    pub fn kernel(&self) -> KernelType {
        self.kernel
    }

    /// The matrix dimension declared in the header.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The block width ω declared in the header.
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// The number of table entries declared in the header.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Assembles a binary from raw header fields and packed bytes without
    /// any validation — for verifier/mutation tests that need corrupt
    /// binaries (truncated payload, header/matrix disagreement).
    #[doc(hidden)]
    pub fn from_raw_parts(
        kernel: KernelType,
        n: usize,
        omega: usize,
        entries: usize,
        bits: Vec<u8>,
    ) -> Self {
        ProgramBinary {
            kernel,
            n,
            omega,
            entries,
            bits,
        }
    }

    /// Size of the packed table in bytes — what crosses the program
    /// interface.
    pub fn len_bytes(&self) -> usize {
        self.bits.len()
    }

    /// The packed bits.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert;
    use alrescha_sparse::gen;

    fn round_trip(kernel: KernelType, coo: &alrescha_sparse::Coo, omega: usize) {
        let (_, table) = convert(kernel, coo, omega).expect("convert");
        let binary = ProgramBinary::encode(kernel, &table, coo.rows().max(coo.cols()), omega);
        let decoded = binary.decode().expect("decode");
        assert_eq!(decoded.entries(), table.entries());
        assert_eq!(decoded.entry_bits(), table.entry_bits());
    }

    #[test]
    fn symgs_round_trips() {
        round_trip(KernelType::SymGs, &gen::stencil27(4), 8);
    }

    #[test]
    fn spmv_round_trips() {
        round_trip(KernelType::SpMv, &gen::circuit(200, 3), 8);
    }

    #[test]
    fn graph_kernels_round_trip() {
        let g = gen::road_grid(8).transpose();
        round_trip(KernelType::Bfs, &g, 8);
        round_trip(KernelType::Sssp, &g, 8);
        round_trip(KernelType::PageRank, &g, 8);
    }

    #[test]
    fn round_trips_across_block_widths() {
        let coo = gen::banded(120, 4, 9);
        for omega in [2usize, 4, 8, 16, 32] {
            round_trip(KernelType::SymGs, &coo, omega);
            round_trip(KernelType::SpMv, &coo, omega);
        }
    }

    #[test]
    fn binary_size_matches_paper_budget() {
        let coo = gen::stencil27(4); // n = 64, omega 8 -> 8 block rows
        let (_, table) = convert(KernelType::SymGs, &coo, 8).unwrap();
        let binary = ProgramBinary::encode(KernelType::SymGs, &table, 64, 8);
        // 2*ceil(log2(8)) + 3 = 9 bits per entry.
        let expect_bits = table.entries().len() * 9;
        assert_eq!(binary.len_bytes(), expect_bits.div_ceil(8));
    }

    #[test]
    fn truncated_binary_is_rejected() {
        let coo = gen::stencil27(3);
        let (_, table) = convert(KernelType::SpMv, &coo, 8).unwrap();
        let mut binary = ProgramBinary::encode(KernelType::SpMv, &table, 27, 8);
        binary.bits.truncate(1);
        assert!(binary.decode().is_err());
    }

    #[test]
    fn layout_fields_tile_the_entry_exactly() {
        for (n, omega) in [(64usize, 8usize), (27, 8), (120, 4), (1000, 16)] {
            let layout = EntryLayout::for_matrix(n, omega);
            let fields = layout.fields();
            let mut next = 0;
            for f in fields {
                assert_eq!(f.offset, next, "field {} not contiguous", f.name);
                next += f.width;
            }
            assert_eq!(next, layout.entry_bits(), "fields must tile the entry");
            assert_eq!(layout.idx_bits() * 2 + 3, layout.entry_bits());
        }
    }

    #[test]
    fn layout_entry_round_trips_each_field() {
        let layout = EntryLayout::for_matrix(64, 8);
        let entry = ConfigEntry {
            data_path: DataPath::Gemv,
            inx_in: 40,
            inx_out: Some(16),
            order: AccessOrder::R2L,
            op: OperandPort::Port2,
        };
        let mut bits = vec![0u8; layout.packed_bytes(1)];
        layout.encode_entry(&entry, &mut bits, 0);
        let back = layout.decode_entry(KernelType::SpMv, &bits, 0);
        assert_eq!(back.inx_in, entry.inx_in);
        assert_eq!(back.inx_out, entry.inx_out);
        assert_eq!(back.order, entry.order);
        assert_eq!(back.op, entry.op);
    }

    #[test]
    fn bit_helpers_round_trip() {
        let mut bits = vec![0u8; 4];
        write_bits(&mut bits, 5, 7, 0b1010101);
        assert_eq!(read_bits(&bits, 5, 7), 0b1010101);
        write_bits(&mut bits, 12, 9, 0x1ff);
        assert_eq!(read_bits(&bits, 12, 9), 0x1ff);
        // The first field survives the second write.
        assert_eq!(read_bits(&bits, 5, 7), 0b1010101);
    }
}
