//! Circuit breaker for accelerator→CPU backend failover.
//!
//! The facade ([`Alrescha`](crate::accelerator::Alrescha)) treats the
//! simulated accelerator as a flaky backend: an operation that keeps
//! tripping fault detection is retried with exponential backoff, and after
//! `failure_threshold` consecutive failed *operations* the breaker opens
//! and routes work to the bit-exact CPU kernels. After `cooldown_ops`
//! CPU-served operations it half-opens and sends a single probe back to the
//! device; a successful probe re-closes the breaker, a failed probe re-opens
//! it for another cooldown.
//!
//! ```text
//!            K consecutive failures
//!   Closed ───────────────────────────▶ Open
//!     ▲                                  │ cooldown_ops CPU runs
//!     │ probe succeeds                   ▼
//!     └────────────────────────────── HalfOpen ──▶ (probe fails → Open)
//! ```
//!
//! Everything is deterministic: the backoff jitter comes from a SplitMix64
//! stream seeded by [`BreakerConfig::jitter_seed`], so a replayed run makes
//! identical failover decisions and charges identical recovery cycles.

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use alrescha_sim::BreakerStats;

/// Tuning knobs for [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failed operations (all device attempts exhausted) that
    /// trip the breaker open.
    pub failure_threshold: u32,
    /// Operations served by the CPU while open before a half-open probe.
    pub cooldown_ops: u32,
    /// Device attempts per operation while closed (≥ 1; a half-open probe
    /// always gets exactly one).
    pub max_attempts: u32,
    /// Backoff before retry `i` starts from `backoff_base_cycles · 2^i`.
    pub backoff_base_cycles: u64,
    /// Upper bound on a single backoff wait.
    pub backoff_cap_cycles: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ops: 4,
            max_attempts: 3,
            backoff_base_cycles: 64,
            backoff_cap_cycles: 4096,
            jitter_seed: 0xA17E_5C4A_B12E_A4E1,
        }
    }
}

/// Observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: operations run on the device (with bounded retries).
    Closed,
    /// Tripped: operations are served by the CPU backend.
    Open,
    /// Cooling down finished: the next operation is a single device probe.
    HalfOpen,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Routing decision for one operation, returned by [`CircuitBreaker::gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Run on the device with up to this many attempts.
    Device {
        /// Attempt budget for this operation (≥ 1).
        attempts: u32,
    },
    /// Half-open probe: one device attempt, no retries.
    Probe,
    /// Breaker is open: serve from the CPU backend.
    Cpu,
}

/// Deterministic circuit breaker (see the module docs for the state
/// machine).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    cooldown_remaining: u32,
    rng: u64,
    stats: BreakerStats,
}

use crate::util::splitmix64;

impl CircuitBreaker {
    /// A closed breaker with the given configuration.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            rng: config.jitter_seed,
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            cooldown_remaining: 0,
            stats: BreakerStats::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The active configuration.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Cumulative transition statistics since construction.
    pub fn stats(&self) -> BreakerStats {
        self.stats
    }

    /// Routes the next operation. Counts a cooldown tick when open and a
    /// probe when (transitioning to) half-open, so call exactly once per
    /// operation.
    pub fn gate(&mut self) -> BackendChoice {
        match self.state {
            BreakerState::Closed => BackendChoice::Device {
                attempts: self.config.max_attempts.max(1),
            },
            BreakerState::Open => {
                if self.cooldown_remaining == 0 {
                    self.state = BreakerState::HalfOpen;
                    self.stats.half_open_probes += 1;
                    BackendChoice::Probe
                } else {
                    self.cooldown_remaining -= 1;
                    self.stats.cpu_fallback_runs += 1;
                    BackendChoice::Cpu
                }
            }
            // Only reachable when a prior probe aborted without a verdict
            // (e.g. a structural error): probe again.
            BreakerState::HalfOpen => {
                self.stats.half_open_probes += 1;
                BackendChoice::Probe
            }
        }
    }

    /// Records a successful device operation: resets the failure run and
    /// re-closes the breaker (a successful half-open probe heals it).
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a failed device operation (every attempt exhausted). Returns
    /// `true` when this failure trips the breaker open.
    pub fn record_failure(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip();
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                self.trip();
                true
            }
            BreakerState::Open => false,
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.cooldown_remaining = self.config.cooldown_ops;
        self.consecutive_failures = 0;
        self.stats.trips += 1;
    }

    /// Backoff before retry `attempt` (0-based): exponential growth from
    /// `backoff_base_cycles`, capped, with deterministic equal-jitter (the
    /// wait lands in `[cap/2, cap]` of the capped exponential value).
    pub fn backoff_cycles(&mut self, attempt: u32) -> u64 {
        let exp = self
            .config
            .backoff_base_cycles
            .saturating_mul(1u64 << attempt.min(32));
        let capped = exp.min(self.config.backoff_cap_cycles);
        let half = capped / 2;
        let jitter = splitmix64(&mut self.rng) % (half + 1);
        (half + jitter).min(self.config.backoff_cap_cycles)
    }
}

// ---------------------------------------------------------------------------
// Shared breaker
// ---------------------------------------------------------------------------

/// State behind a [`SharedBreaker`]'s lock.
#[derive(Debug)]
struct SharedState {
    breaker: CircuitBreaker,
    /// A half-open probe has been issued and its verdict has not arrived.
    probe_inflight: bool,
}

fn lock(m: &Mutex<SharedState>) -> MutexGuard<'_, SharedState> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A thread-safe [`CircuitBreaker`] shared by every worker of a persistent
/// service, with one extra guarantee the per-job breaker cannot give:
/// **at most one half-open probe is outstanding at a time**. Concurrent
/// operations gated while a probe is in flight are served from the CPU —
/// without this, every worker that called [`CircuitBreaker::gate`] during
/// the half-open window would hammer the possibly-still-broken device at
/// once, defeating the point of probing.
///
/// Probe verdicts are reported through [`SharedBreaker::record_probe`],
/// which clears the in-flight flag; [`SharedBreaker::record_success`] /
/// [`SharedBreaker::record_failure`] report ordinary (non-probe) verdicts
/// and deliberately leave the flag alone, so a stale device verdict from an
/// operation gated before the trip can never unlock a second probe.
#[derive(Debug, Clone)]
pub struct SharedBreaker {
    inner: Arc<Mutex<SharedState>>,
}

impl SharedBreaker {
    /// A closed shared breaker.
    pub fn new(config: BreakerConfig) -> Self {
        SharedBreaker {
            inner: Arc::new(Mutex::new(SharedState {
                breaker: CircuitBreaker::new(config),
                probe_inflight: false,
            })),
        }
    }

    /// Routes the next operation (see [`CircuitBreaker::gate`]); while a
    /// probe is in flight every other caller is routed to the CPU.
    pub fn gate(&self) -> BackendChoice {
        let mut s = lock(&self.inner);
        // While a probe is outstanding, everyone else goes to the CPU —
        // regardless of state, because a stale (non-probe) verdict may
        // have moved the breaker under the in-flight probe, and only
        // `record_probe` may free the single probe slot.
        if s.probe_inflight {
            s.breaker.stats.cpu_fallback_runs += 1;
            return BackendChoice::Cpu;
        }
        let choice = s.breaker.gate();
        if choice == BackendChoice::Probe {
            s.probe_inflight = true;
        }
        choice
    }

    /// Reports the verdict of a probe issued by [`SharedBreaker::gate`]:
    /// clears the in-flight flag, then heals (success) or re-opens
    /// (failure) the breaker.
    pub fn record_probe(&self, success: bool) {
        let mut s = lock(&self.inner);
        s.probe_inflight = false;
        if success {
            s.breaker.record_success();
        } else {
            s.breaker.record_failure();
        }
    }

    /// Records an ordinary (non-probe) successful device operation.
    pub fn record_success(&self) {
        lock(&self.inner).breaker.record_success();
    }

    /// Records an ordinary (non-probe) failed device operation. Returns
    /// `true` when this failure trips the breaker open.
    pub fn record_failure(&self) -> bool {
        lock(&self.inner).breaker.record_failure()
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        lock(&self.inner).breaker.state()
    }

    /// Cumulative transition statistics since construction.
    pub fn stats(&self) -> BreakerStats {
        lock(&self.inner).breaker.stats()
    }

    /// Deterministic equal-jitter backoff (see
    /// [`CircuitBreaker::backoff_cycles`]); the jitter stream is shared, so
    /// concurrent callers draw distinct waits.
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        lock(&self.inner).breaker.backoff_cycles(attempt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_ops: 2,
            max_attempts: 3,
            backoff_base_cycles: 64,
            backoff_cap_cycles: 4096,
            jitter_seed: 1,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = breaker();
        assert_eq!(b.gate(), BackendChoice::Device { attempts: 3 });
        assert!(!b.record_failure());
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.record_failure());
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats().trips, 1);
    }

    #[test]
    fn success_resets_the_failure_run() {
        let mut b = breaker();
        assert!(!b.record_failure());
        b.record_success();
        assert!(!b.record_failure());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn open_serves_cpu_then_half_opens() {
        let mut b = breaker();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.gate(), BackendChoice::Cpu);
        assert_eq!(b.gate(), BackendChoice::Cpu);
        assert_eq!(b.gate(), BackendChoice::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        let s = b.stats();
        assert_eq!((s.cpu_fallback_runs, s.half_open_probes), (2, 1));
    }

    #[test]
    fn failed_probe_reopens_successful_probe_heals() {
        let mut b = breaker();
        b.record_failure();
        b.record_failure();
        b.gate();
        b.gate();
        assert_eq!(b.gate(), BackendChoice::Probe);
        assert!(b.record_failure());
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats().trips, 2);

        b.gate();
        b.gate();
        assert_eq!(b.gate(), BackendChoice::Probe);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.gate(), BackendChoice::Device { attempts: 3 });
    }

    #[test]
    fn backoff_grows_exponentially_stays_capped_and_is_deterministic() {
        let mut a = breaker();
        let mut b = breaker();
        let mut prev_cap = 0u64;
        for attempt in 0..12 {
            let wa = a.backoff_cycles(attempt);
            let wb = b.backoff_cycles(attempt);
            assert_eq!(wa, wb, "jitter must be deterministic");
            assert!(wa <= 4096, "cap violated: {wa}");
            let capped = (64u64 << attempt.min(32)).min(4096);
            assert!(wa >= capped / 2, "equal-jitter lower bound violated");
            assert!(capped >= prev_cap, "exponential envelope must not shrink");
            prev_cap = capped;
        }
    }

    #[test]
    fn states_display() {
        assert_eq!(BreakerState::Closed.to_string(), "closed");
        assert_eq!(BreakerState::Open.to_string(), "open");
        assert_eq!(BreakerState::HalfOpen.to_string(), "half-open");
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

    /// A shared breaker already tripped open with a zero cooldown, so the
    /// very next gate is the half-open probe.
    fn tripped_shared() -> SharedBreaker {
        let sb = SharedBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_ops: 0,
            max_attempts: 1,
            ..BreakerConfig::default()
        });
        sb.record_failure();
        sb
    }

    #[test]
    fn only_one_probe_while_half_open() {
        let sb = tripped_shared();
        assert_eq!(sb.state(), BreakerState::Open);
        assert_eq!(sb.gate(), BackendChoice::Probe);
        assert_eq!(sb.state(), BreakerState::HalfOpen);
        // While the probe is in flight everyone else is served by the CPU.
        assert_eq!(sb.gate(), BackendChoice::Cpu);
        assert_eq!(sb.gate(), BackendChoice::Cpu);
        // A failed probe re-opens; a healing probe then re-closes.
        sb.record_probe(false);
        assert_eq!(sb.state(), BreakerState::Open);
        assert_eq!(sb.gate(), BackendChoice::Probe);
        sb.record_probe(true);
        assert_eq!(sb.state(), BreakerState::Closed);
        assert!(matches!(sb.gate(), BackendChoice::Device { .. }));
    }

    #[test]
    fn stale_non_probe_verdicts_do_not_unlock_a_second_probe() {
        let sb = tripped_shared();
        assert_eq!(sb.gate(), BackendChoice::Probe);
        // A worker gated before the trip reports its late failure: the
        // probe slot must stay occupied.
        sb.record_failure();
        assert_eq!(sb.gate(), BackendChoice::Cpu, "probe still in flight");
        sb.record_probe(true);
        assert_eq!(sb.state(), BreakerState::Closed);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Under concurrent jobs, the half-open window admits exactly one
        /// probe to the device at a time: every other gate taken while a
        /// probe is outstanding is served from the CPU. Workers report
        /// failures on ordinary device ops so the breaker keeps cycling
        /// Closed → Open → HalfOpen and the window is exercised repeatedly.
        #[test]
        fn exactly_one_probe_on_device_while_half_open(
            workers in 2usize..6,
            ops_per_worker in 1usize..24,
            heal_raw in 0u32..2,
        ) {
            let heal = heal_raw == 1;
            let sb = tripped_shared();
            let probes_on_device = Arc::new(AtomicU32::new(0));
            let violated = Arc::new(AtomicBool::new(false));
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let sb = sb.clone();
                    let probes_on_device = Arc::clone(&probes_on_device);
                    let violated = Arc::clone(&violated);
                    scope.spawn(move || {
                        for op in 0..ops_per_worker {
                            match sb.gate() {
                                BackendChoice::Probe => {
                                    if probes_on_device.fetch_add(1, Ordering::SeqCst) != 0 {
                                        violated.store(true, Ordering::SeqCst);
                                    }
                                    std::thread::yield_now();
                                    probes_on_device.fetch_sub(1, Ordering::SeqCst);
                                    sb.record_probe(heal && op % 2 == 0);
                                }
                                BackendChoice::Device { .. } => {
                                    // Ordinary op while closed; fail it so
                                    // the breaker trips again (threshold 1).
                                    sb.record_failure();
                                }
                                BackendChoice::Cpu => {}
                            }
                        }
                    });
                }
            });
            prop_assert!(
                !violated.load(Ordering::SeqCst),
                "two half-open probes were on the device at once"
            );
        }
    }
}
