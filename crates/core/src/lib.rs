//! ALRESCHA: a lightweight reconfigurable sparse-computation accelerator
//! (HPCA 2020) — public API of the reproduction.
//!
//! This crate ties together the substrates:
//!
//! * [`convert`] — Algorithm 1: sparse kernel → dense data paths and the
//!   configuration table.
//! * [`accelerator::Alrescha`] — program kernels, run them on the
//!   cycle-level simulator, read [`alrescha_sim::ExecutionReport`]s.
//! * [`solver::AcceleratedPcg`] — the Figure 2 PCG with the SpMV and SymGS
//!   kernels on the device.
//!
//! # Quickstart
//!
//! ```
//! use alrescha::{Alrescha, KernelType};
//! use alrescha_sparse::gen;
//!
//! // A PDE-style SPD system (27-point stencil on a 3³ grid).
//! let a = gen::stencil27(3);
//!
//! let mut acc = Alrescha::with_paper_config();
//! let prog = acc.program(KernelType::SpMv, &a)?;
//! let x = vec![1.0; a.cols()];
//! let (y, report) = acc.spmv(&prog, &x)?;
//!
//! assert_eq!(y.len(), a.rows());
//! println!("{} cycles, {:.1}% of peak bandwidth",
//!          report.cycles, 100.0 * report.bandwidth_utilization);
//! # Ok::<(), alrescha::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod accelerator;
pub mod breaker;
pub mod checkpoint;
pub mod convert;
pub mod fleet;
pub mod program;
pub mod solver;
pub mod storage;
pub mod util;

pub use accelerator::{Alrescha, ProgrammedKernel};
pub use breaker::{BackendChoice, BreakerConfig, BreakerState, CircuitBreaker, SharedBreaker};
pub use checkpoint::{write_atomic, CheckpointError, SolverCheckpoint, SolverKind};
pub use convert::{ConfigEntry, ConfigTable, DataPath, KernelType};
pub use fleet::{
    AdmissionHook, CheckpointHook, Fleet, FleetConfig, FleetReport, FleetStats, JobKernel,
    JobOutput, JobRecord, JobSpec, PreflightHook, Station,
};
pub use program::{EntryLayout, FieldSpec, ProgramBinary};
pub use storage::{
    ChaosStorage, IoFaultCounters, IoFaultKind, IoFaultPlan, RealStorage, StorageFile, StorageIo,
};
pub use solver::{
    AcceleratedMgPcg, AcceleratedPcg, SolveOutcome, SolverOptions, TerminationReason,
};

// Fault-injection and runtime surface, re-exported so facade users configure
// resilience without importing the simulator crate directly.
pub use alrescha_sim::{
    BreakerStats, ExecBudget, FaultCounters, FaultPlan, FaultSite, InjectorSnapshot,
    RecoveryPolicy,
};

use std::fmt;

/// Errors raised by the accelerator API.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A sparse-format operation failed.
    Sparse(alrescha_sparse::Error),
    /// The simulator rejected the run.
    Sim(alrescha_sim::SimError),
    /// A host-side reference kernel failed (e.g. during a degraded run).
    Kernel(alrescha_kernels::KernelError),
    /// A program was used with a kernel it was not built for.
    WrongKernel {
        /// Kernel the program encodes.
        programmed: KernelType,
        /// Kernel the caller requested.
        requested: KernelType,
    },
    /// The solver requires a square matrix.
    NotSquare {
        /// Rows found.
        rows: usize,
        /// Columns found.
        cols: usize,
    },
    /// Operand lengths disagree.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        found: usize,
    },
    /// PCG broke down numerically (input was not positive definite).
    Breakdown {
        /// Iteration at which `pᵀAp ≤ 0` was observed.
        iteration: usize,
    },
    /// The residual became non-finite or grew past the divergence guard —
    /// typically the footprint of an undetected fault or ill-posed input.
    Diverged {
        /// Iteration at which divergence was detected.
        iteration: usize,
        /// Residual norm observed (may be NaN or infinite).
        residual: f64,
    },
    /// A programmed kernel is missing data its driver requires — the
    /// program was corrupted or built by an incompatible host.
    InvalidProgram {
        /// What was missing or inconsistent.
        reason: &'static str,
    },
    /// A solver checkpoint failed to decode or does not belong to the
    /// resuming solve.
    Checkpoint(checkpoint::CheckpointError),
    /// The batch runtime's bounded queue rejected a job at admission.
    QueueFull {
        /// Jobs the queue accepts per batch.
        capacity: usize,
        /// Jobs offered in the batch.
        offered: usize,
        /// Structured backpressure hint: how long the submitter should wait
        /// before re-offering this job (scales with how far past capacity
        /// the job landed; see `FleetConfig::retry_after_hint`).
        retry_after: std::time::Duration,
    },
    /// A preflight hook rejected a converted program before execution.
    Preflight {
        /// The verifier's explanation.
        message: String,
    },
    /// An admission hook rejected a job before execution: the static
    /// analysis proved its cycle bound cannot meet the deadline budget.
    Admission {
        /// The analyzer's explanation (carries the AL4xx code).
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sparse(e) => write!(f, "sparse format: {e}"),
            CoreError::Sim(e) => write!(f, "simulator: {e}"),
            CoreError::Kernel(e) => write!(f, "reference kernel: {e}"),
            CoreError::WrongKernel {
                programmed,
                requested,
            } => write!(
                f,
                "program encodes {programmed:?} but {requested:?} was requested"
            ),
            CoreError::NotSquare { rows, cols } => {
                write!(f, "solver requires a square matrix, found {rows}x{cols}")
            }
            CoreError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "operand length mismatch: expected {expected}, found {found}"
                )
            }
            CoreError::Breakdown { iteration } => {
                write!(
                    f,
                    "pcg breakdown at iteration {iteration}: matrix is not positive definite"
                )
            }
            CoreError::Diverged {
                iteration,
                residual,
            } => {
                write!(
                    f,
                    "solver diverged at iteration {iteration}: residual {residual:e}"
                )
            }
            CoreError::InvalidProgram { reason } => {
                write!(f, "invalid program: {reason}")
            }
            CoreError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            CoreError::QueueFull {
                capacity,
                offered,
                retry_after,
            } => {
                write!(
                    f,
                    "fleet queue full: capacity {capacity}, offered {offered}; retry after {}ms",
                    retry_after.as_millis()
                )
            }
            CoreError::Preflight { message } => {
                write!(f, "preflight rejected program: {message}")
            }
            CoreError::Admission { message } => {
                write!(f, "admission rejected job: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sparse(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Kernel(e) => Some(e),
            CoreError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<alrescha_sparse::Error> for CoreError {
    fn from(e: alrescha_sparse::Error) -> Self {
        CoreError::Sparse(e)
    }
}

impl From<alrescha_sim::SimError> for CoreError {
    fn from(e: alrescha_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<alrescha_kernels::KernelError> for CoreError {
    fn from(e: alrescha_kernels::KernelError) -> Self {
        CoreError::Kernel(e)
    }
}

impl From<checkpoint::CheckpointError> for CoreError {
    fn from(e: checkpoint::CheckpointError) -> Self {
        CoreError::Checkpoint(e)
    }
}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = CoreError::NotSquare { rows: 3, cols: 4 };
        assert_eq!(e.to_string(), "solver requires a square matrix, found 3x4");
    }

    #[test]
    fn diverged_and_invalid_program_display() {
        let d = CoreError::Diverged {
            iteration: 7,
            residual: f64::NAN,
        };
        assert!(d.to_string().contains("diverged at iteration 7"));
        let p = CoreError::InvalidProgram {
            reason: "pagerank program lacks out-degrees",
        };
        assert!(p.to_string().contains("out-degrees"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }

    #[test]
    fn errors_convert_from_substrates() {
        let sparse_err: CoreError = alrescha_sparse::Error::InvalidBlockWidth { omega: 0 }.into();
        assert!(matches!(sparse_err, CoreError::Sparse(_)));
        let sim_err: CoreError = alrescha_sim::SimError::NoConvergence { iterations: 5 }.into();
        assert!(matches!(sim_err, CoreError::Sim(_)));
    }
}
