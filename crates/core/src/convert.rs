//! Kernel-to-data-path conversion — Algorithm 1 of the paper (§4.1).
//!
//! The host-side "Convert" step takes a sparse kernel, the sparse matrix
//! operand, and the block width ω, and emits the configuration table: one
//! entry per locally-dense block specifying the data-path type, the
//! input/output vector indices (`Inx_in` / `Inx_out`), the access order
//! (`l2r` / `r2l`), and the operand source port. The entries appear in
//! execution order — for SymGS, all the GEMVs of a block row before its
//! D-SymGS (the reordering the distributive property of inner products makes
//! exact).

use alrescha_sparse::{alf::config_entry_bits, alf::AlfLayout, Alf, BlockKind, Coo};

use crate::Result;

/// The sparse kernels the accelerator runs (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelType {
    /// Sparse matrix–vector multiplication.
    SpMv,
    /// Symmetric Gauss-Seidel smoother.
    SymGs,
    /// Breadth-first search.
    Bfs,
    /// Single-source shortest paths.
    Sssp,
    /// PageRank.
    PageRank,
    /// Connected components by label propagation — an extension kernel
    /// built on the same min-reduce data path as BFS (not in the paper's
    /// Table 1; demonstrates adding a kernel to the architecture).
    ConnectedComponents,
}

impl KernelType {
    /// The dense data path this kernel's parallel blocks run as
    /// (Table 1's "Dense Data Paths" column).
    pub fn data_path(self) -> DataPath {
        match self {
            KernelType::SpMv => DataPath::Gemv,
            KernelType::SymGs => DataPath::Gemv, // off-diagonal blocks
            KernelType::Bfs | KernelType::ConnectedComponents => DataPath::DBfs,
            KernelType::Sssp => DataPath::DSssp,
            KernelType::PageRank => DataPath::DPr,
        }
    }

    /// Table 1 descriptor of this kernel's three vertex-centric phases.
    pub fn descriptor(self) -> KernelDescriptor {
        match self {
            KernelType::SymGs => KernelDescriptor {
                kernel: self,
                phase1_operation: "multiplication",
                phase2_reduce: "sum",
                phase3_assign: "apply with diagonal and b, update vector",
                vector_operands: 3,
            },
            KernelType::SpMv => KernelDescriptor {
                kernel: self,
                phase1_operation: "multiplication",
                phase2_reduce: "sum",
                phase3_assign: "sum and update the vector",
                vector_operands: 2,
            },
            KernelType::PageRank => KernelDescriptor {
                kernel: self,
                phase1_operation: "AND/division",
                phase2_reduce: "sum",
                phase3_assign: "rank vector update",
                vector_operands: 3,
            },
            KernelType::Bfs | KernelType::Sssp => KernelDescriptor {
                kernel: self,
                phase1_operation: "sum",
                phase2_reduce: "min",
                phase3_assign: "compare and update distance vector",
                vector_operands: 2,
            },
            KernelType::ConnectedComponents => KernelDescriptor {
                kernel: self,
                phase1_operation: "pass-through",
                phase2_reduce: "min",
                phase3_assign: "compare and update label vector",
                vector_operands: 2,
            },
        }
    }
}

/// Dense data-path types (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataPath {
    /// General matrix–vector multiply.
    Gemv,
    /// Data-dependent dense SymGS.
    DSymGs,
    /// Dense BFS.
    DBfs,
    /// Dense SSSP.
    DSssp,
    /// Dense PageRank.
    DPr,
}

/// In-block access order (Algorithm 1's `l2r` / `r2l`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOrder {
    /// Left to right — natural order.
    L2R,
    /// Right to left — the reversed order the D-SymGS operand rotation
    /// needs (Figure 10).
    R2L,
}

/// Which local-cache port supplies the vector operand (Algorithm 1's `Op`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandPort {
    /// Port 1 — the current iterate `xᵗ`.
    Port1,
    /// Port 2 — the previous iterate `xᵗ⁻¹`.
    Port2,
}

/// One row of the configuration table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigEntry {
    /// Data-path type for this block.
    pub data_path: DataPath,
    /// Input vector chunk index (`Inx_in`) in units of elements.
    pub inx_in: usize,
    /// Output vector chunk index (`Inx_out`); `None` encodes Algorithm 1's
    /// `-1` (results go to the link stack, not the cache).
    pub inx_out: Option<usize>,
    /// In-block access order.
    pub order: AccessOrder,
    /// Operand source port.
    pub op: OperandPort,
}

/// The configuration table the host writes through the program interface.
///
/// # Example
///
/// ```
/// use alrescha::convert::{convert, KernelType};
/// use alrescha_sparse::gen;
///
/// let coo = gen::stencil27(2);
/// let (alf, table) = convert(KernelType::SymGs, &coo, 8)?;
/// assert_eq!(table.entries().len(), alf.blocks().len());
/// assert!(table.entry_bits() >= 3);
/// # Ok::<(), alrescha::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigTable {
    entries: Vec<ConfigEntry>,
    entry_bits: usize,
}

impl ConfigTable {
    /// Rebuilds a table from entries, without validation (used by the
    /// program-binary codec in [`crate::program`] and by verification
    /// tooling that needs to construct deliberately illegal tables).
    pub fn from_entries(entries: Vec<ConfigEntry>, entry_bits: usize) -> Self {
        ConfigTable {
            entries,
            entry_bits,
        }
    }

    /// The table rows in execution order.
    pub fn entries(&self) -> &[ConfigEntry] {
        &self.entries
    }

    /// Bits per entry: `2·⌈log₂(n/ω)⌉ + 3` (§4.1).
    pub fn entry_bits(&self) -> usize {
        self.entry_bits
    }

    /// Total table size in bits.
    pub fn total_bits(&self) -> usize {
        self.entries.len() * self.entry_bits
    }

    /// Number of data-path switches a straight-line execution of this table
    /// performs (adjacent entries with different data paths).
    pub fn switch_count(&self) -> usize {
        self.entries
            .windows(2)
            .filter(|w| w[0].data_path != w[1].data_path)
            .count()
    }
}

/// Algorithm 1: converts `kernel` on matrix `a` at block width `omega` into
/// the locally-dense format plus its configuration table.
///
/// For SymGS the matrix must be square with a fully non-zero diagonal; for
/// the graph kernels `a` is the adjacency matrix (the caller transposes if
/// it wants column-major gathering).
///
/// # Errors
///
/// * [`crate::CoreError::Sparse`] for invalid block widths or (SymGS) a missing
///   diagonal entry.
pub fn convert(kernel: KernelType, a: &Coo, omega: usize) -> Result<(Alf, ConfigTable)> {
    let layout = match kernel {
        KernelType::SymGs => AlfLayout::SymGs,
        _ => AlfLayout::Streaming,
    };
    let alf = Alf::from_coo(a, omega, layout)?;
    let entry_bits = config_entry_bits(a.rows().max(a.cols()), omega);

    let entries = alf
        .blocks()
        .iter()
        .map(|block| {
            let (i, j) = (block.block_row(), block.block_col());
            match kernel {
                KernelType::SymGs => {
                    if block.kind() == BlockKind::Diagonal {
                        // Line 24-27: D-SymGS on the diagonal block.
                        ConfigEntry {
                            data_path: DataPath::DSymGs,
                            inx_in: j * omega,
                            inx_out: Some((i + 1) * omega),
                            order: AccessOrder::R2L,
                            op: OperandPort::Port2,
                        }
                    } else {
                        // Lines 14-22: GEMV on an off-diagonal block; the
                        // operand port depends on the triangle.
                        ConfigEntry {
                            data_path: DataPath::Gemv,
                            inx_in: j * omega,
                            inx_out: None, // Algorithm 1's -1: to the link stack
                            order: if j > i {
                                AccessOrder::R2L
                            } else {
                                AccessOrder::L2R
                            },
                            op: if i > j {
                                OperandPort::Port2
                            } else {
                                OperandPort::Port1
                            },
                        }
                    }
                }
                // Lines 8-12: single-data-path kernels.
                _ => ConfigEntry {
                    data_path: kernel.data_path(),
                    inx_in: i * omega,
                    inx_out: Some(j * omega),
                    order: AccessOrder::L2R,
                    op: OperandPort::Port1,
                },
            }
        })
        .collect();

    Ok((
        alf,
        ConfigTable {
            entries,
            entry_bits,
        },
    ))
}

/// Table 1 row: the three vertex-centric phases of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDescriptor {
    /// The kernel described.
    pub kernel: KernelType,
    /// Phase-1 vector operation.
    pub phase1_operation: &'static str,
    /// Phase-2 reduction.
    pub phase2_reduce: &'static str,
    /// Phase-3 assignment.
    pub phase3_assign: &'static str,
    /// Number of vector operands phase 1 consumes.
    pub vector_operands: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use alrescha_sparse::gen;

    fn paper_like() -> Coo {
        // 9x9, ω=3 — the Figure 8 scale.
        let mut coo = Coo::new(9, 9);
        for i in 0..9 {
            coo.push(i, i, 10.0);
        }
        coo.push(0, 6, 1.0); // upper block (0,2)
        coo.push(7, 1, 4.0); // lower block (2,0)
        coo
    }

    #[test]
    fn symgs_table_orders_gemv_before_dsymgs() {
        let (_, table) = convert(KernelType::SymGs, &paper_like(), 3).unwrap();
        let paths: Vec<DataPath> = table.entries().iter().map(|e| e.data_path).collect();
        assert_eq!(
            paths,
            vec![
                DataPath::Gemv,   // block (0,2)
                DataPath::DSymGs, // block (0,0)
                DataPath::DSymGs, // block (1,1)
                DataPath::Gemv,   // block (2,0)
                DataPath::DSymGs, // block (2,2)
            ]
        );
    }

    #[test]
    fn symgs_operand_ports_follow_the_triangle() {
        let (_, table) = convert(KernelType::SymGs, &paper_like(), 3).unwrap();
        // Upper-triangle GEMV (block row 0, col 2): port1, r2l.
        let upper = table.entries()[0];
        assert_eq!(upper.op, OperandPort::Port1);
        assert_eq!(upper.order, AccessOrder::R2L);
        assert_eq!(upper.inx_out, None);
        // Lower-triangle GEMV (block row 2, col 0): port2, l2r.
        let lower = table.entries()[3];
        assert_eq!(lower.op, OperandPort::Port2);
        assert_eq!(lower.order, AccessOrder::L2R);
        // Diagonal D-SymGS: r2l, port2, writes the next chunk.
        let diag = table.entries()[1];
        assert_eq!(diag.order, AccessOrder::R2L);
        assert_eq!(diag.op, OperandPort::Port2);
        assert_eq!(diag.inx_out, Some(3));
    }

    #[test]
    fn spmv_table_is_all_gemv_l2r() {
        let (_, table) = convert(KernelType::SpMv, &paper_like(), 3).unwrap();
        assert!(table
            .entries()
            .iter()
            .all(|e| e.data_path == DataPath::Gemv && e.order == AccessOrder::L2R));
        assert_eq!(table.switch_count(), 0);
    }

    #[test]
    fn entry_bits_formula() {
        let (_, table) = convert(KernelType::SpMv, &paper_like(), 3).unwrap();
        // n = 9, ω = 3: 2·ceil(log2 3) + 3 = 7.
        assert_eq!(table.entry_bits(), 7);
        assert_eq!(table.total_bits(), table.entries().len() * 7);
    }

    #[test]
    fn switch_count_counts_transitions() {
        let (_, table) = convert(KernelType::SymGs, &paper_like(), 3).unwrap();
        // Gemv -> DSymGs -> DSymGs -> Gemv -> DSymGs: 3 switches.
        assert_eq!(table.switch_count(), 3);
    }

    #[test]
    fn graph_kernels_pick_their_data_paths() {
        let g = gen::road_grid(4);
        for (kernel, dp) in [
            (KernelType::Bfs, DataPath::DBfs),
            (KernelType::Sssp, DataPath::DSssp),
            (KernelType::PageRank, DataPath::DPr),
        ] {
            let (_, table) = convert(kernel, &g, 8).unwrap();
            assert!(table.entries().iter().all(|e| e.data_path == dp));
        }
    }

    #[test]
    fn symgs_missing_diagonal_is_rejected() {
        let mut coo = Coo::new(4, 4);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push(3, 3, 1.0);
        assert!(convert(KernelType::SymGs, &coo, 2).is_err());
        // But SpMV on the same matrix is fine.
        assert!(convert(KernelType::SpMv, &coo, 2).is_ok());
    }

    #[test]
    fn descriptors_match_table1() {
        let d = KernelType::SymGs.descriptor();
        assert_eq!(d.phase2_reduce, "sum");
        assert_eq!(d.vector_operands, 3);
        let d = KernelType::Bfs.descriptor();
        assert_eq!(d.phase1_operation, "sum");
        assert_eq!(d.phase2_reduce, "min");
        let d = KernelType::PageRank.descriptor();
        assert_eq!(d.phase1_operation, "AND/division");
    }
}
