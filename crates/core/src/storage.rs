//! Injectable storage I/O — the host-side analogue of `sim::fault`.
//!
//! The device simulator earns its durability claims against a *seeded,
//! replayable* fault stream ([`alrescha_sim::FaultPlan`]); the host side
//! of the stack — the job journal and the checkpoint files — historically
//! talked to `std::fs` directly, so the only storage fault ever exercised
//! was a clean process death. This module closes that gap:
//!
//! * [`StorageIo`] / [`StorageFile`] — the narrow trait pair the journal
//!   and checkpoint writer actually need (open-append, create, read,
//!   rename, remove, fsync, truncate);
//! * [`RealStorage`] — the passthrough to `std::fs` every production
//!   caller uses (and the default everywhere);
//! * [`ChaosStorage`] — a decorator over any inner [`StorageIo`] that
//!   injects the faults real deployments see, drawn from a splitmix64
//!   stream seeded by an [`IoFaultPlan`]: **short writes**, **`EINTR`**,
//!   **`ENOSPC` tearing a partial record onto disk**, **failed `fsync`**,
//!   and **read-side bit flips**. Identical plans over identical call
//!   sequences fire identical faults — a failing seed replays exactly.
//!
//! Every fault fired is tallied in [`IoFaultCounters`] and, when a
//! telemetry handle is attached, counted into `alchaos_io_*_total`
//! metrics and dropped into the trace as an instant event, so a failing
//! chaos seed is diagnosable from its timeline.

use std::fmt;
use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// One open file as the storage layer sees it: append-or-create writes,
/// durability, and truncation. Reads go through [`StorageIo::read`] — the
/// journal and checkpoint formats are small enough to (re)read whole.
pub trait StorageFile: Send {
    /// Writes a prefix of `buf`, returning how many bytes were accepted.
    /// May short-write or fail with `EINTR`/`ENOSPC` like a real `write(2)`.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures, including injected ones.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Flushes file contents and metadata to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// Underlying I/O failures, including injected ones. After a failed
    /// sync no earlier unsynced write may be trusted.
    fn sync(&mut self) -> io::Result<()>;

    /// Truncates (or extends) the file to `len` bytes.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures. Never fault-injected: truncation is the
    /// *rollback* primitive crash consistency leans on.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
}

/// The filesystem surface the serve stack's durability rests on. Small by
/// design: everything the journal and the atomic checkpoint writer do is
/// expressible in these seven calls, so one chaos decorator covers every
/// storage-touching path.
pub trait StorageIo: Send + Sync + fmt::Debug {
    /// Opens `path` for appending, creating it if absent.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Creates (truncating) `path` for writing.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Reads the entire contents of `path`.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures. A chaos implementation may return bytes
    /// with bits flipped — callers must CRC-validate and re-read.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Renames `from` to `to` (atomic within one directory on POSIX).
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes `path`.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Fsyncs the parent directory of `path` so a rename survives power
    /// loss. Best-effort on platforms that cannot sync a directory.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn sync_parent_dir(&self, path: &Path) -> io::Result<()>;
}

/// Writes all of `buf`, absorbing short writes and `EINTR` the way
/// `Write::write_all` does — the loop every durable append must use once
/// writes can legally be partial.
///
/// # Errors
///
/// The first non-`Interrupted` error, or `WriteZero` if the file stops
/// accepting bytes.
pub fn write_all(file: &mut dyn StorageFile, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match file.write(buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "storage accepted zero bytes",
                ))
            }
            Ok(n) => buf = &buf[n.min(buf.len())..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Real storage
// ---------------------------------------------------------------------------

/// The production [`StorageIo`]: a direct passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealStorage;

struct RealFile(fs::File);

impl StorageFile for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

impl StorageIo for RealStorage {
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(RealFile(fs::File::create(path)?)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut file = fs::File::open(path)?;
        let mut out = Vec::new();
        file.read_to_end(&mut out)?;
        Ok(out)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(handle) = fs::File::open(dir) {
                let _ = handle.sync_all();
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------------

/// A seed-driven description of which storage faults to inject, at what
/// per-call rates — the host-storage sibling of
/// [`alrescha_sim::FaultPlan`].
///
/// Rates are per-opportunity probabilities: write-side rates are drawn
/// once per [`StorageFile::write`] call, `fsync_fail_rate` once per
/// [`StorageFile::sync`], and `bit_flip_rate` once per [`StorageIo::read`]
/// (the flip corrupts the returned bytes, not the disk — modelling bus /
/// DRAM transients that vanish on re-read, which the journal's replay
/// retry loop must absorb).
#[derive(Debug, Clone, PartialEq)]
pub struct IoFaultPlan {
    /// Seed for the fault stream. Identical seeds over identical call
    /// sequences reproduce identical faults.
    pub seed: u64,
    /// Probability per write of accepting only a prefix (legal short
    /// write; the bytes written are real).
    pub short_write_rate: f64,
    /// Probability per write of failing with `EINTR` before any byte.
    pub interrupt_rate: f64,
    /// Probability per write of writing a *partial prefix to disk* and
    /// then failing with `ENOSPC` — the fault that tears a final record.
    pub enospc_rate: f64,
    /// Probability per sync of failing with `EIO`. After a failed fsync
    /// the caller may not trust any unsynced write.
    pub fsync_fail_rate: f64,
    /// Probability per whole-file read of flipping one bit in the
    /// returned bytes.
    pub bit_flip_rate: f64,
}

impl IoFaultPlan {
    /// A plan with every rate zero — attachable for instrumentation
    /// without perturbing behaviour.
    pub fn inert(seed: u64) -> Self {
        IoFaultPlan {
            seed,
            short_write_rate: 0.0,
            interrupt_rate: 0.0,
            enospc_rate: 0.0,
            fsync_fail_rate: 0.0,
            bit_flip_rate: 0.0,
        }
    }

    /// The chaos-harness default: every fault kind armed at rates high
    /// enough to fire within a handful of operations, low enough that
    /// retried operations converge.
    pub fn aggressive(seed: u64) -> Self {
        IoFaultPlan {
            seed,
            short_write_rate: 0.20,
            interrupt_rate: 0.10,
            enospc_rate: 0.12,
            fsync_fail_rate: 0.08,
            bit_flip_rate: 0.15,
        }
    }
}

/// Which storage fault fired (metric / trace labelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum IoFaultKind {
    /// A write accepted only a prefix of the buffer.
    ShortWrite,
    /// A write failed with `EINTR` before any byte landed.
    Interrupted,
    /// A write tore a partial prefix onto disk and failed with `ENOSPC`.
    NoSpace,
    /// An `fsync` failed with `EIO`.
    FsyncFailed,
    /// A whole-file read returned bytes with one bit flipped.
    BitFlip,
}

impl IoFaultKind {
    /// Stable lowercase label used in metric names and trace events.
    pub fn label(self) -> &'static str {
        match self {
            IoFaultKind::ShortWrite => "short_write",
            IoFaultKind::Interrupted => "eintr",
            IoFaultKind::NoSpace => "enospc",
            IoFaultKind::FsyncFailed => "fsync_fail",
            IoFaultKind::BitFlip => "bit_flip",
        }
    }
}

impl fmt::Display for IoFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-plan tally of storage faults fired, one counter per
/// [`IoFaultKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoFaultCounters {
    /// Short writes injected.
    pub short_writes: u64,
    /// `EINTR` failures injected.
    pub interrupts: u64,
    /// `ENOSPC` failures injected (each tore a partial prefix onto disk).
    pub enospc: u64,
    /// `fsync` failures injected.
    pub fsync_failures: u64,
    /// Read-side bit flips injected.
    pub bit_flips: u64,
}

impl IoFaultCounters {
    /// Total faults fired.
    pub fn total(&self) -> u64 {
        self.short_writes + self.interrupts + self.enospc + self.fsync_failures + self.bit_flips
    }

    /// True when every fault kind has fired at least once — the coverage
    /// predicate the chaos harness asserts across its seed matrix.
    pub fn all_kinds_fired(&self) -> bool {
        self.short_writes > 0
            && self.interrupts > 0
            && self.enospc > 0
            && self.fsync_failures > 0
            && self.bit_flips > 0
    }

    /// Accumulates `other` into `self` (merging per-seed tallies).
    pub fn merge(&mut self, other: &IoFaultCounters) {
        self.short_writes += other.short_writes;
        self.interrupts += other.interrupts;
        self.enospc += other.enospc;
        self.fsync_failures += other.fsync_failures;
        self.bit_flips += other.bit_flips;
    }
}

/// The raw `ENOSPC` errno, used instead of `ErrorKind::StorageFull` so
/// match-sites can also recognise genuine kernel-reported exhaustion.
pub const ENOSPC: i32 = 28;

/// True when `e` looks like storage exhaustion (`ENOSPC` / `EDQUOT`),
/// injected or kernel-reported — the condition `alserve` maps to in-band
/// storage-pressure backpressure rather than a torn-down connection.
pub fn is_storage_full(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(code) if code == ENOSPC || code == 122)
        || e.kind() == io::ErrorKind::StorageFull
        || e.kind() == io::ErrorKind::QuotaExceeded
}

use crate::util::splitmix64;

/// One uniform draw in `[0, 1)` from the splitmix64 stream.
fn draw_unit(state: &mut u64) -> f64 {
    crate::util::unit_f64(splitmix64(state))
}

// ---------------------------------------------------------------------------
// Chaos storage
// ---------------------------------------------------------------------------

struct ChaosState {
    rng: u64,
    counters: IoFaultCounters,
}

/// Shared fault-decision state: the plan, the RNG cursor, the counters,
/// and the optional telemetry sink.
struct ChaosCore {
    plan: IoFaultPlan,
    state: Mutex<ChaosState>,
    telemetry: Option<Arc<alrescha_obs::Telemetry>>,
}

fn lock_state(core: &ChaosCore) -> MutexGuard<'_, ChaosState> {
    core.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ChaosCore {
    fn fired(&self, kind: IoFaultKind, state: &mut ChaosState) {
        match kind {
            IoFaultKind::ShortWrite => state.counters.short_writes += 1,
            IoFaultKind::Interrupted => state.counters.interrupts += 1,
            IoFaultKind::NoSpace => state.counters.enospc += 1,
            IoFaultKind::FsyncFailed => state.counters.fsync_failures += 1,
            IoFaultKind::BitFlip => state.counters.bit_flips += 1,
        }
        if let Some(tele) = &self.telemetry {
            tele.metrics()
                .counter(
                    &format!("alchaos_io_{}_total", kind.label()),
                    false,
                    "storage faults injected by ChaosStorage, by kind",
                )
                .inc();
            tele.instant(format!("alchaos.io.{}", kind.label()));
        }
    }
}

/// A [`StorageIo`] decorator that injects seeded, replayable storage
/// faults around an inner implementation (usually [`RealStorage`]).
///
/// Fault decisions are drawn from one shared splitmix64 stream in call
/// order, so a single-threaded caller replays bit-identically from the
/// seed alone; concurrent callers still see a deterministic *total* fault
/// budget per prefix of operations.
#[derive(Clone)]
pub struct ChaosStorage {
    inner: Arc<dyn StorageIo>,
    core: Arc<ChaosCore>,
}

impl fmt::Debug for ChaosStorage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosStorage")
            .field("plan", &self.core.plan)
            .field("counters", &self.counters())
            .finish_non_exhaustive()
    }
}

impl ChaosStorage {
    /// Chaos over the real filesystem.
    pub fn new(plan: IoFaultPlan) -> Self {
        ChaosStorage::over(Arc::new(RealStorage), plan)
    }

    /// Chaos over an arbitrary inner storage.
    pub fn over(inner: Arc<dyn StorageIo>, plan: IoFaultPlan) -> Self {
        let rng = plan.seed;
        ChaosStorage {
            inner,
            core: Arc::new(ChaosCore {
                plan,
                state: Mutex::new(ChaosState {
                    rng,
                    counters: IoFaultCounters::default(),
                }),
                telemetry: None,
            }),
        }
    }

    /// Attaches a telemetry sink: every injected fault increments an
    /// `alchaos_io_<kind>_total` counter and records an instant event.
    #[must_use]
    pub fn with_telemetry(mut self, tele: Arc<alrescha_obs::Telemetry>) -> Self {
        let state = {
            let s = lock_state(&self.core);
            ChaosState {
                rng: s.rng,
                counters: s.counters,
            }
        };
        self.core = Arc::new(ChaosCore {
            plan: self.core.plan.clone(),
            state: Mutex::new(state),
            telemetry: Some(tele),
        });
        self
    }

    /// The plan this storage injects from.
    pub fn plan(&self) -> &IoFaultPlan {
        &self.core.plan
    }

    /// Faults fired so far.
    pub fn counters(&self) -> IoFaultCounters {
        lock_state(&self.core).counters
    }
}

struct ChaosFile {
    inner: Box<dyn StorageFile>,
    core: Arc<ChaosCore>,
}

/// Which write fault, if any, a single draw selected.
enum WriteFault {
    None,
    /// Fail with `EINTR`; nothing written.
    Interrupt,
    /// Write a prefix of `cut` bytes for real, then fail with `ENOSPC`.
    Tear { cut: usize },
    /// Accept only `keep` bytes (a legal short write; the bytes are real).
    Short { keep: usize },
}

impl StorageFile for ChaosFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let fault = {
            let mut state = lock_state(&self.core);
            let plan = &self.core.plan;
            let roll = draw_unit(&mut state.rng);
            // One roll decides among the mutually exclusive write faults
            // by stacking their rates into disjoint intervals.
            if roll < plan.interrupt_rate {
                self.core.fired(IoFaultKind::Interrupted, &mut state);
                WriteFault::Interrupt
            } else if roll < plan.interrupt_rate + plan.enospc_rate {
                self.core.fired(IoFaultKind::NoSpace, &mut state);
                // Tear a strict prefix onto the real file, then report
                // exhaustion: exactly the torn-final-record crash shape.
                let cut = if buf.is_empty() {
                    0
                } else {
                    (splitmix64(&mut state.rng) as usize) % buf.len()
                };
                WriteFault::Tear { cut }
            } else if roll < plan.interrupt_rate + plan.enospc_rate + plan.short_write_rate {
                self.core.fired(IoFaultKind::ShortWrite, &mut state);
                let keep = if buf.len() <= 1 {
                    buf.len()
                } else {
                    1 + (splitmix64(&mut state.rng) as usize) % (buf.len() - 1)
                };
                WriteFault::Short { keep }
            } else {
                WriteFault::None
            }
        };
        match fault {
            WriteFault::Interrupt => Err(io::Error::from(io::ErrorKind::Interrupted)),
            WriteFault::Tear { cut } => {
                if cut > 0 {
                    write_all(self.inner.as_mut(), &buf[..cut])?;
                }
                Err(io::Error::from_raw_os_error(ENOSPC))
            }
            WriteFault::Short { keep } => {
                write_all(self.inner.as_mut(), &buf[..keep])?;
                Ok(keep)
            }
            WriteFault::None => self.inner.write(buf),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let fail = {
            let mut state = lock_state(&self.core);
            if draw_unit(&mut state.rng) < self.core.plan.fsync_fail_rate {
                self.core.fired(IoFaultKind::FsyncFailed, &mut state);
                true
            } else {
                false
            }
        };
        if fail {
            return Err(io::Error::other("injected fsync failure (EIO)"));
        }
        self.inner.sync()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        // Never injected: truncation is the rollback primitive.
        self.inner.set_len(len)
    }
}

impl StorageIo for ChaosStorage {
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(ChaosFile {
            inner: self.inner.open_append(path)?,
            core: Arc::clone(&self.core),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(ChaosFile {
            inner: self.inner.create(path)?,
            core: Arc::clone(&self.core),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.read(path)?;
        let flip = {
            let mut state = lock_state(&self.core);
            if !bytes.is_empty() && draw_unit(&mut state.rng) < self.core.plan.bit_flip_rate {
                self.core.fired(IoFaultKind::BitFlip, &mut state);
                Some(splitmix64(&mut state.rng) as usize % (bytes.len() * 8))
            } else {
                None
            }
        };
        if let Some(bit) = flip {
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        Ok(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn sync_parent_dir(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_parent_dir(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("alchaos-io-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_storage_round_trips() {
        let dir = scratch("real");
        let path = dir.join("a.bin");
        let io = RealStorage;
        let mut f = io.open_append(&path).unwrap();
        write_all(f.as_mut(), b"hello ").unwrap();
        write_all(f.as_mut(), b"world").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(io.read(&path).unwrap(), b"hello world");
        let renamed = dir.join("b.bin");
        io.rename(&path, &renamed).unwrap();
        io.sync_parent_dir(&renamed).unwrap();
        assert_eq!(io.read(&renamed).unwrap(), b"hello world");
        io.remove_file(&renamed).unwrap();
        assert!(io.read(&renamed).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn inert_plan_injects_nothing() {
        let dir = scratch("inert");
        let path = dir.join("a.bin");
        let io = ChaosStorage::new(IoFaultPlan::inert(1));
        let mut f = io.create(&path).unwrap();
        for _ in 0..100 {
            write_all(f.as_mut(), b"0123456789").unwrap();
            f.sync().unwrap();
        }
        drop(f);
        assert_eq!(io.read(&path).unwrap().len(), 1000);
        assert_eq!(io.counters(), IoFaultCounters::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_seeds_fire_identical_fault_streams() {
        let runs: Vec<IoFaultCounters> = (0..2)
            .map(|_| {
                let dir = scratch("det");
                let path = dir.join("a.bin");
                let io = ChaosStorage::new(IoFaultPlan::aggressive(0xC0FFEE));
                let mut f = io.create(&path).unwrap();
                for i in 0..200u32 {
                    let _ = write_all(f.as_mut(), &i.to_le_bytes());
                    let _ = f.sync();
                }
                drop(f);
                for _ in 0..50 {
                    let _ = io.read(&path);
                }
                let counters = io.counters();
                let _ = fs::remove_dir_all(&dir);
                counters
            })
            .collect();
        assert_eq!(runs[0], runs[1], "same seed must fire the same faults");
        assert!(runs[0].all_kinds_fired(), "aggressive plan left a kind silent: {:?}", runs[0]);
    }

    #[test]
    fn enospc_tears_a_strict_prefix_onto_disk() {
        // Crank only ENOSPC so the first write tears deterministically.
        let plan = IoFaultPlan {
            enospc_rate: 1.0,
            ..IoFaultPlan::inert(7)
        };
        let dir = scratch("tear");
        let path = dir.join("a.bin");
        let io = ChaosStorage::new(plan);
        let mut f = io.create(&path).unwrap();
        let payload = vec![0xABu8; 64];
        let err = write_all(f.as_mut(), &payload).unwrap_err();
        assert!(is_storage_full(&err), "expected ENOSPC, got {err:?}");
        drop(f);
        let on_disk = RealStorage.read(&path).unwrap();
        assert!(on_disk.len() < payload.len(), "nothing was torn");
        assert!(on_disk.iter().all(|&b| b == 0xAB));
        assert_eq!(io.counters().enospc, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_writes_and_eintr_are_absorbed_by_write_all() {
        let plan = IoFaultPlan {
            short_write_rate: 0.5,
            interrupt_rate: 0.3,
            ..IoFaultPlan::inert(3)
        };
        let dir = scratch("short");
        let path = dir.join("a.bin");
        let io = ChaosStorage::new(plan);
        let mut f = io.create(&path).unwrap();
        for i in 0..100u64 {
            write_all(f.as_mut(), &i.to_le_bytes()).unwrap();
        }
        drop(f);
        let bytes = RealStorage.read(&path).unwrap();
        assert_eq!(bytes.len(), 800, "write_all must land every byte");
        for i in 0..100u64 {
            assert_eq!(&bytes[i as usize * 8..][..8], &i.to_le_bytes());
        }
        let c = io.counters();
        assert!(c.short_writes > 0 && c.interrupts > 0, "faults never fired: {c:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flips_corrupt_the_read_not_the_disk() {
        let plan = IoFaultPlan {
            bit_flip_rate: 1.0,
            ..IoFaultPlan::inert(11)
        };
        let dir = scratch("flip");
        let path = dir.join("a.bin");
        fs::write(&path, vec![0u8; 256]).unwrap();
        let io = ChaosStorage::new(plan);
        let corrupted = io.read(&path).unwrap();
        assert_eq!(corrupted.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        // The disk image is untouched; a clean re-read sees zeros.
        assert!(RealStorage.read(&path).unwrap().iter().all(|&b| b == 0));
        assert_eq!(io.counters().bit_flips, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_counts_and_marks_every_fault() {
        let tele = alrescha_obs::Telemetry::new();
        let plan = IoFaultPlan {
            fsync_fail_rate: 1.0,
            ..IoFaultPlan::inert(5)
        };
        let dir = scratch("tele");
        let path = dir.join("a.bin");
        let io = ChaosStorage::new(plan).with_telemetry(Arc::clone(&tele));
        let mut f = io.create(&path).unwrap();
        assert!(f.sync().is_err());
        assert!(f.sync().is_err());
        drop(f);
        let snapshot = tele.metrics().snapshot_json();
        assert!(
            snapshot.contains("alchaos_io_fsync_fail_total"),
            "metric missing from {snapshot}"
        );
        assert_eq!(io.counters().fsync_failures, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn storage_full_predicate_matches_injected_and_kind_errors() {
        assert!(is_storage_full(&io::Error::from_raw_os_error(ENOSPC)));
        assert!(!is_storage_full(&io::Error::from(io::ErrorKind::Interrupted)));
    }
}
