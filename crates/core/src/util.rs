//! Small shared utilities: the workspace's one splitmix64.
//!
//! Every seeded subsystem in the workspace (client backoff jitter, chaos
//! fault scheduling, storage fault draws, breaker probe jitter, the alasm
//! program generator) derives its streams from splitmix64. Before this
//! module each carried its own copy; a constant typo in any one of them
//! would silently break seed replay for that subsystem only. There is now
//! exactly one implementation, pinned by a known-answer test against the
//! reference vectors from Steele/Lea/Flood's SplittableRandom stream.

/// Advance `state` one splitmix64 step and return the output word.
///
/// This is the raw stream function: callers that keep their own `u64`
/// state (chaos substream derivation, storage draws) use it directly so
/// their historical bit streams are preserved exactly.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a raw splitmix64 output word onto `[0, 1)`.
///
/// Uses the top 53 bits so the result is an exactly-representable f64 —
/// the same mapping the chaos injectors have always used.
#[inline]
pub fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// Stateful splitmix64 stream — the ergonomic wrapper over [`splitmix64`].
///
/// `SplitMix64::new(seed).next_u64()` produces the identical stream to
/// `let mut s = seed; splitmix64(&mut s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform draw in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// Current internal state (for substream derivation).
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer test: first outputs of the splitmix64 stream for
    /// seed 0 and seed 0x1234_5678, cross-checked against the published
    /// SplittableRandom reference implementation. If this test moves,
    /// every seeded repro line in the repo (CHAOS_SEED, ALASM_SEED,
    /// client backoff schedules) silently changes meaning — never
    /// "fix" the constants to make it pass.
    #[test]
    fn known_answer_pinned() {
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);

        let mut s = 0x1234_5678u64;
        assert_eq!(splitmix64(&mut s), 0x38F1_DC39_D190_6B6F);
    }

    #[test]
    fn wrapper_matches_raw_stream() {
        let mut raw = 42u64;
        let mut rng = SplitMix64::new(42);
        for _ in 0..16 {
            assert_eq!(rng.next_u64(), splitmix64(&mut raw));
        }
        assert_eq!(rng.state(), raw);
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..256 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_respects_bound_and_zero() {
        let mut rng = SplitMix64::new(9);
        assert_eq!(rng.below(0), 0);
        for _ in 0..256 {
            assert!(rng.below(10) < 10);
        }
    }
}
