//! Versioned, CRC-checked solver checkpoints.
//!
//! A PCG iteration is fully described by a handful of vectors and scalars
//! (§"Checkpoint/resume" of DESIGN.md): the iterate `x`, the residual `r`,
//! the search direction `p`, the scalar `rᵀz`, the initial residual norm
//! used by the divergence guard, and the residual history. With a fault
//! plan armed, the injector's RNG cursor and counters ride along so a
//! resumed run replays the *same* fault stream — making resume bit-identical
//! to an uninterrupted solve, faults and all.
//!
//! The wire format is deliberately boring: a fixed magic, a format version,
//! little-endian fixed-width integers, `f64` values as raw IEEE-754 bits
//! (bit-exactness survives the round trip by construction), and a trailing
//! CRC-32 over everything before it. Decoding is total: corrupted or
//! truncated bytes produce a typed [`CheckpointError`], never a panic, and
//! length fields are validated against the remaining payload before any
//! allocation.

use std::fmt;
#[cfg(test)]
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::storage::{self, RealStorage, StorageIo};
use alrescha_sim::InjectorSnapshot;

/// File magic: "ALCK" (ALrescha ChecKpoint).
const MAGIC: [u8; 4] = *b"ALCK";
/// Current wire-format version.
const VERSION: u32 = 1;

/// Which solver produced a checkpoint (resuming into the wrong solver is a
/// typed error, not a silent wrong answer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// [`AcceleratedPcg`](crate::solver::AcceleratedPcg) — SymGS-preconditioned CG.
    Pcg,
    /// [`AcceleratedMgPcg`](crate::solver::AcceleratedMgPcg) — V-cycle-preconditioned CG.
    MgPcg,
}

impl SolverKind {
    fn tag(self) -> u8 {
        match self {
            SolverKind::Pcg => 0,
            SolverKind::MgPcg => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SolverKind::Pcg),
            1 => Some(SolverKind::MgPcg),
            _ => None,
        }
    }
}

/// Errors raised while decoding or validating a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The bytes do not start with the `ALCK` magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The byte stream ends before the advertised payload.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        got: usize,
    },
    /// The trailing CRC-32 does not match the payload.
    CrcMismatch {
        /// Checksum stored in the trailer.
        stored: u32,
        /// Checksum recomputed over the payload.
        computed: u32,
    },
    /// A field holds a value the format forbids (unknown solver tag,
    /// implausible length).
    Malformed(&'static str),
    /// A structurally valid checkpoint does not belong to the resuming
    /// solver (wrong kind, wrong problem size, wrong right-hand side).
    Mismatch {
        /// Which field disagreed.
        field: &'static str,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint: bad magic"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads {VERSION})")
            }
            CheckpointError::Truncated { needed, got } => {
                write!(f, "truncated checkpoint: needed {needed} more bytes, found {got}")
            }
            CheckpointError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "checkpoint CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::Mismatch { field } => {
                write!(f, "checkpoint does not match this solve: {field} disagrees")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Snapshot of a PCG/MG-PCG solve at the end of one iteration.
///
/// Captured by
/// [`AcceleratedPcg::solve_with_checkpoints`](crate::solver::AcceleratedPcg::solve_with_checkpoints)
/// and consumed by [`AcceleratedPcg::resume`](crate::solver::AcceleratedPcg::resume);
/// [`SolverCheckpoint::to_bytes`] / [`SolverCheckpoint::from_bytes`] move it
/// through durable storage.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverCheckpoint {
    /// Which solver wrote this checkpoint.
    pub kind: SolverKind,
    /// Problem size.
    pub n: usize,
    /// Completed iterations when the checkpoint was taken.
    pub iteration: usize,
    /// Current iterate.
    pub x: Vec<f64>,
    /// Current residual `b − A·x`.
    pub r: Vec<f64>,
    /// Current search direction.
    pub p: Vec<f64>,
    /// Current `rᵀz` scalar.
    pub rz: f64,
    /// Initial residual norm (anchors the divergence guard).
    pub r0: f64,
    /// Residual norm after each completed iteration (`1..=iteration`).
    pub residual_history: Vec<f64>,
    /// Fault-injector cursor at the checkpoint boundary, when a plan was
    /// armed — restoring it replays the identical fault stream.
    pub fault: Option<InjectorSnapshot>,
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum of
/// gzip/zip/PNG, computed bitwise (the trailer is tiny relative to a solve).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], CheckpointError> {
        let got = self.bytes.len() - self.pos;
        if got < len {
            return Err(CheckpointError::Truncated { needed: len, got });
        }
        let out = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed vector of `f64` bit patterns. The length is
    /// validated against the bytes actually remaining *before* allocating,
    /// so a corrupted length field cannot request an absurd allocation.
    fn f64_vec(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let len = self.u64()?;
        let remaining = self.bytes.len() - self.pos;
        let len = usize::try_from(len).map_err(|_| CheckpointError::Malformed("vector length"))?;
        let needed = len
            .checked_mul(8)
            .ok_or(CheckpointError::Malformed("vector length"))?;
        if needed > remaining {
            return Err(CheckpointError::Truncated {
                needed,
                got: remaining,
            });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_vec(out: &mut Vec<u8>, v: &[f64]) {
    put_u64(out, v.len() as u64);
    for &value in v {
        put_u64(out, value.to_bits());
    }
}

impl SolverCheckpoint {
    /// Serializes to the versioned wire format with a trailing CRC-32.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 8 * (self.x.len() + self.r.len() + self.p.len()));
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.kind.tag());
        out.push(u8::from(self.fault.is_some()));
        put_u64(&mut out, self.n as u64);
        put_u64(&mut out, self.iteration as u64);
        put_u64(&mut out, self.rz.to_bits());
        put_u64(&mut out, self.r0.to_bits());
        if let Some(fault) = &self.fault {
            put_u64(&mut out, fault.rng_state);
            put_u64(&mut out, fault.cycle);
            put_u64(&mut out, fault.counters.injected);
            put_u64(&mut out, fault.counters.detected);
            put_u64(&mut out, fault.counters.recovered);
            put_u64(&mut out, fault.counters.retries);
            put_u64(&mut out, fault.counters.degraded);
        }
        put_f64_vec(&mut out, &self.x);
        put_f64_vec(&mut out, &self.r);
        put_f64_vec(&mut out, &self.p);
        put_f64_vec(&mut out, &self.residual_history);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and validates a checkpoint.
    ///
    /// # Errors
    ///
    /// Every malformation is a typed [`CheckpointError`]; this function
    /// never panics on arbitrary input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 4 + 4 + 4 {
            return Err(CheckpointError::Truncated {
                needed: 12,
                got: bytes.len(),
            });
        }
        // The CRC trailer covers everything before it; verify first so every
        // later error means "well-formed prefix, genuinely bad field".
        let (payload, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let computed = crc32(payload);
        if payload[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if stored != computed {
            return Err(CheckpointError::CrcMismatch { stored, computed });
        }

        let mut rd = Reader {
            bytes: payload,
            pos: 4,
        };
        let version = rd.u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let kind = SolverKind::from_tag(rd.u8()?)
            .ok_or(CheckpointError::Malformed("unknown solver kind"))?;
        let has_fault = match rd.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CheckpointError::Malformed("fault flag")),
        };
        let n = usize::try_from(rd.u64()?)
            .map_err(|_| CheckpointError::Malformed("problem size"))?;
        let iteration = usize::try_from(rd.u64()?)
            .map_err(|_| CheckpointError::Malformed("iteration count"))?;
        let rz = rd.f64()?;
        let r0 = rd.f64()?;
        let fault = if has_fault {
            Some(InjectorSnapshot {
                rng_state: rd.u64()?,
                cycle: rd.u64()?,
                counters: alrescha_sim::FaultCounters {
                    injected: rd.u64()?,
                    detected: rd.u64()?,
                    recovered: rd.u64()?,
                    retries: rd.u64()?,
                    degraded: rd.u64()?,
                },
            })
        } else {
            None
        };
        let x = rd.f64_vec()?;
        let r = rd.f64_vec()?;
        let p = rd.f64_vec()?;
        let residual_history = rd.f64_vec()?;
        if rd.pos != payload.len() {
            return Err(CheckpointError::Malformed("trailing bytes after payload"));
        }
        if x.len() != n || r.len() != n || p.len() != n {
            return Err(CheckpointError::Malformed("vector length disagrees with n"));
        }
        Ok(SolverCheckpoint {
            kind,
            n,
            iteration,
            x,
            r,
            p,
            rz,
            r0,
            residual_history,
            fault,
        })
    }

    /// Writes the checkpoint to `path` **atomically and durably**: the
    /// encoded bytes go to a temporary sibling file first, that file is
    /// fsynced, and only then is it renamed over `path` (rename within one
    /// directory is atomic on POSIX filesystems). A crash at any instant
    /// therefore leaves either the previous checkpoint or the new one —
    /// never a torn mixture — and [`SolverCheckpoint::read_from_path`]
    /// additionally rejects any torn image via the CRC trailer.
    ///
    /// # Errors
    ///
    /// Filesystem errors (the temporary file is cleaned up best-effort on
    /// failure).
    pub fn write_to_path(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, &self.to_bytes())
    }

    /// [`SolverCheckpoint::write_to_path`] through an injectable
    /// [`StorageIo`] — the entry point the chaos harness drives.
    ///
    /// # Errors
    ///
    /// Filesystem errors, including injected ones.
    pub fn write_to_path_with(&self, io: &dyn StorageIo, path: &Path) -> io::Result<()> {
        write_atomic_with(io, path, &self.to_bytes())
    }

    /// Reads and decodes a checkpoint written by
    /// [`SolverCheckpoint::write_to_path`].
    ///
    /// # Errors
    ///
    /// Filesystem errors, or [`io::ErrorKind::InvalidData`] wrapping the
    /// [`CheckpointError`] when the bytes fail validation (torn write,
    /// corruption, foreign file).
    pub fn read_from_path(path: &Path) -> io::Result<Self> {
        SolverCheckpoint::read_from_path_with(&RealStorage, path)
    }

    /// [`SolverCheckpoint::read_from_path`] through an injectable
    /// [`StorageIo`]. A transient read-side bit flip fails the CRC and is
    /// absorbed by re-reading; only a *stable* anomaly (the same bad bytes
    /// twice in a row) is reported as corruption.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or [`io::ErrorKind::InvalidData`] wrapping the
    /// [`CheckpointError`] when the bytes fail validation (torn write,
    /// corruption, foreign file).
    pub fn read_from_path_with(io: &dyn StorageIo, path: &Path) -> io::Result<Self> {
        let mut last_err = None;
        let mut prev_bytes: Option<Vec<u8>> = None;
        for _ in 0..READ_RETRY_LIMIT {
            let bytes = io.read(path)?;
            match SolverCheckpoint::from_bytes(&bytes) {
                Ok(cp) => return Ok(cp),
                Err(e) => {
                    let stable = prev_bytes.as_deref() == Some(bytes.as_slice());
                    prev_bytes = Some(bytes);
                    last_err = Some(io::Error::new(io::ErrorKind::InvalidData, e));
                    if stable {
                        break;
                    }
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("checkpoint read retries exhausted")))
    }
}

/// Consecutive whole-file reads attempted before a CRC anomaly is treated
/// as stable (on-disk) corruption rather than a transient read fault.
const READ_RETRY_LIMIT: usize = 8;

/// The temporary sibling used by [`write_atomic`] for `path`.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically and durably replaces the contents of `path` with `bytes`:
/// write to a `.tmp` sibling, fsync it, rename it over `path`, fsync the
/// parent directory so the rename itself survives a power cut. Readers
/// never observe a partially written file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic_with(&RealStorage, path, bytes)
}

/// [`write_atomic`] through an injectable [`StorageIo`]. The rename is the
/// commit point: any failure before it (short write, `ENOSPC`, failed
/// fsync) aborts the replacement, removes the torn `.tmp` sibling, and
/// leaves the previous contents of `path` untouched.
///
/// # Errors
///
/// Filesystem errors, including injected ones.
pub fn write_atomic_with(io: &dyn StorageIo, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut file = io.create(&tmp)?;
        storage::write_all(file.as_mut(), bytes)?;
        file.sync()?;
        drop(file);
        io.rename(&tmp, path)?;
        // Persist the directory entry; platforms that cannot fsync a
        // directory handle still performed the atomic rename above.
        io.sync_parent_dir(path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = io.remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(fault: bool) -> SolverCheckpoint {
        SolverCheckpoint {
            kind: SolverKind::Pcg,
            n: 3,
            iteration: 7,
            x: vec![1.0, -2.5, 3.25],
            r: vec![0.5, 0.0, -0.125],
            p: vec![-1.0, 2.0, f64::MIN_POSITIVE],
            rz: 0.375,
            r0: 12.5,
            residual_history: vec![10.0, 5.0, 2.5],
            fault: fault.then_some(InjectorSnapshot {
                rng_state: 0xDEAD_BEEF_CAFE_F00D,
                cycle: 424242,
                counters: alrescha_sim::FaultCounters {
                    injected: 5,
                    detected: 4,
                    recovered: 3,
                    retries: 2,
                    degraded: 1,
                },
            }),
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        for fault in [false, true] {
            let cp = sample(fault);
            let decoded = SolverCheckpoint::from_bytes(&cp.to_bytes()).unwrap();
            assert_eq!(cp, decoded);
            // Bit exactness, not approximate equality.
            for (a, b) in cp.x.iter().zip(&decoded.x) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn crc_is_the_ieee_polynomial() {
        // The standard check value for CRC-32/IEEE over "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_byte_corruption_is_detected() {
        let bytes = sample(true).to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                SolverCheckpoint::from_bytes(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = sample(false).to_bytes();
        for len in 0..bytes.len() {
            assert!(
                SolverCheckpoint::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        let mut bytes = sample(false).to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            SolverCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = sample(false).to_bytes();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        // Re-seal the CRC so the version check is what fires.
        let crc_pos = bytes.len() - 4;
        let crc = crc32(&bytes[..crc_pos]);
        bytes[crc_pos..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            SolverCheckpoint::from_bytes(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn absurd_length_field_is_rejected_without_allocation() {
        let mut bytes = sample(false).to_bytes();
        // The x-vector length lives right after the fixed header
        // (4 magic + 4 version + 2 flags + 4×8 scalars = 42).
        bytes[42..50].copy_from_slice(&u64::MAX.to_le_bytes());
        let crc_pos = bytes.len() - 4;
        let crc = crc32(&bytes[..crc_pos]);
        bytes[crc_pos..].copy_from_slice(&crc.to_le_bytes());
        match SolverCheckpoint::from_bytes(&bytes) {
            Err(CheckpointError::Malformed(_) | CheckpointError::Truncated { .. }) => {}
            other => panic!("expected typed rejection, got {other:?}"),
        }
    }

    /// A unique scratch directory under the target-local temp dir.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "alrescha-ckpt-{tag}-{}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_round_trip_is_bit_exact() {
        let dir = scratch("roundtrip");
        let path = dir.join("job-1.ckpt");
        let cp = sample(true);
        cp.write_to_path(&path).unwrap();
        let decoded = SolverCheckpoint::read_from_path(&path).unwrap();
        assert_eq!(cp, decoded);
        // No temporary file is left behind after a successful write.
        assert!(!tmp_sibling(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_replaces_existing_checkpoint() {
        let dir = scratch("replace");
        let path = dir.join("job-2.ckpt");
        let old = sample(false);
        let mut new = sample(false);
        new.iteration = 99;
        old.write_to_path(&path).unwrap();
        new.write_to_path(&path).unwrap();
        assert_eq!(
            SolverCheckpoint::read_from_path(&path).unwrap().iteration,
            99
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_write_to_final_path_is_rejected_old_tmp_is_harmless() {
        // Simulate the failure write_to_path is designed to prevent: a
        // crash mid-write leaving a truncated image at the final path.
        let dir = scratch("torn");
        let path = dir.join("job-3.ckpt");
        let bytes = sample(true).to_bytes();
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            fs::write(&path, &bytes[..cut]).unwrap();
            let err = SolverCheckpoint::read_from_path(&path).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "cut {cut}");
        }
        // A leftover temporary from a crashed writer never shadows the
        // real checkpoint: the next atomic write simply overwrites it.
        fs::write(tmp_sibling(&path), &bytes[..7]).unwrap();
        let cp = sample(true);
        cp.write_to_path(&path).unwrap();
        assert_eq!(SolverCheckpoint::read_from_path(&path).unwrap(), cp);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn error_display_is_informative() {
        let e = CheckpointError::CrcMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("CRC mismatch"));
        assert!(CheckpointError::BadMagic.to_string().contains("magic"));
        assert!(CheckpointError::Mismatch { field: "n" }
            .to_string()
            .contains("n disagrees"));
    }
}
