//! PCG on the accelerator — the algorithm of Figure 2 driven through the
//! device kernels.
//!
//! SpMV and the SymGS preconditioner run on the accelerator (they dominate
//! the execution time, Figure 3); the dot products and AXPYs run host-side,
//! "so ubiquitous that they are executed using special hardware in some
//! supercomputers" (§2). The returned report accumulates the device work of
//! every iteration.

use std::fmt;

use alrescha_kernels::{dot, norm2, spmv::axpy};
use alrescha_sim::{ExecutionReport, SimConfig, SimError};
use alrescha_sparse::Coo;

use crate::accelerator::{Alrescha, ProgrammedKernel};
use crate::checkpoint::{CheckpointError, SolverCheckpoint, SolverKind};
use crate::convert::KernelType;
use crate::{CoreError, Result};

/// Divergence guard: a residual that grows this far past its starting point
/// (or goes non-finite) aborts the solve with [`CoreError::Diverged`] —
/// typically the footprint of a fault that slipped past detection.
const DIVERGENCE_FACTOR: f64 = 1e8;

/// Returns [`CoreError::Diverged`] when a residual norm is non-finite or has
/// blown up relative to the larger of its starting value and `‖b‖`.
fn check_residual(r_norm: f64, r0: f64, b_norm: f64, iteration: usize) -> Result<()> {
    if !r_norm.is_finite() || r_norm > DIVERGENCE_FACTOR * r0.max(b_norm) {
        return Err(CoreError::Diverged {
            iteration,
            residual: r_norm,
        });
    }
    Ok(())
}

/// Unwraps the accumulated device report; every solve path performs device
/// work before reaching a return, so `None` means the driver is broken.
fn finished_report(report: Option<ExecutionReport>) -> Result<ExecutionReport> {
    report.ok_or(CoreError::InvalidProgram {
        reason: "solver finished without any device work",
    })
}

/// Options for [`AcceleratedPcg`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Relative residual target.
    pub tol: f64,
    /// Iteration budget.
    pub max_iters: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            tol: 1e-10,
            max_iters: 500,
        }
    }
}

/// Why a solve stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TerminationReason {
    /// The relative residual target was met.
    Converged,
    /// The residual went non-finite or blew past the divergence guard
    /// (reported via [`CoreError::Diverged`]; surfaced here by
    /// [`TerminationReason::from_error`]).
    Diverged,
    /// A budget ran out: the iteration budget in a returned
    /// [`SolveOutcome`], or a cycle/wall-clock budget via
    /// [`SimError::DeadlineExceeded`].
    BudgetExhausted,
    /// The watchdog saw no forward progress
    /// ([`SimError::Stalled`]; surfaced by
    /// [`TerminationReason::from_error`]).
    Stalled,
    /// Converged after resuming from a checkpoint.
    Resumed,
}

impl TerminationReason {
    /// Maps a solve error to the reason it encodes, for reporting paths
    /// that want a uniform label for both `Ok` and `Err` terminations.
    /// `None` for errors that are not terminations (bad input, wrong
    /// kernel, …).
    pub fn from_error(err: &CoreError) -> Option<Self> {
        match err {
            CoreError::Diverged { .. } => Some(TerminationReason::Diverged),
            CoreError::Sim(SimError::Stalled { .. }) => Some(TerminationReason::Stalled),
            CoreError::Sim(SimError::DeadlineExceeded { .. }) => {
                Some(TerminationReason::BudgetExhausted)
            }
            _ => None,
        }
    }
}

impl fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TerminationReason::Converged => "converged",
            TerminationReason::Diverged => "diverged",
            TerminationReason::BudgetExhausted => "budget exhausted",
            TerminationReason::Stalled => "stalled",
            TerminationReason::Resumed => "converged (resumed)",
        })
    }
}

/// Result of an accelerated PCG solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual norm.
    pub residual: f64,
    /// Whether the relative target was met.
    pub converged: bool,
    /// Why the solve stopped.
    pub reason: TerminationReason,
    /// Accumulated device-side execution report.
    pub report: ExecutionReport,
}

/// Merges a per-kernel report into the solve's accumulator.
fn absorb_into(rep: ExecutionReport, report: &mut Option<ExecutionReport>, config: &SimConfig) {
    match report {
        Some(acc_rep) => acc_rep.merge(&rep, config),
        None => *report = Some(rep),
    }
}

/// One device kernel application inside the PCG loop: `f(acc, v, report)`
/// returns the result vector and absorbs its execution report.
type KernelCall<'s> =
    dyn FnMut(&mut Alrescha, &[f64], &mut Option<ExecutionReport>) -> Result<Vec<f64>> + 's;

/// The Figure 2 PCG loop, shared by [`AcceleratedPcg`] and
/// [`AcceleratedMgPcg`]: `spmv` computes `A·v`, `precond` applies `M⁻¹`
/// (one SymGS sweep or a full V-cycle).
///
/// The loop state at the end of iteration `k` — `(x, r, p, rz)` plus the
/// divergence anchor `r0` and the residual history — is exactly a
/// [`SolverCheckpoint`]; with `checkpoint_every > 0` one is emitted to
/// `sink` every that-many iterations, and with `resume_from` the loop picks
/// up from a prior checkpoint instead of from `x = 0`. Because the device
/// call sequence after the checkpoint boundary is identical to the
/// uninterrupted run's (including the fault injector's restored RNG
/// cursor), a resumed solve is bit-identical to one that never stopped.
#[allow(clippy::too_many_arguments)]
fn run_pcg(
    acc: &mut Alrescha,
    b: &[f64],
    opts: &SolverOptions,
    kind: SolverKind,
    n: usize,
    spmv: &mut KernelCall<'_>,
    precond: &mut KernelCall<'_>,
    checkpoint_every: usize,
    mut sink: Option<&mut dyn FnMut(SolverCheckpoint)>,
    resume_from: Option<&SolverCheckpoint>,
) -> Result<SolveOutcome> {
    if b.len() != n {
        return Err(CoreError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    let b_norm = norm2(b).max(f64::MIN_POSITIVE);
    let mut report: Option<ExecutionReport> = None;
    let resumed = resume_from.is_some();
    let tele = acc.telemetry().cloned();
    let _solve_span = alrescha_obs::span!(tele, format!("pcg:{kind:?}"));
    let iter_counter = tele.as_ref().map(|t| {
        t.metrics().counter(
            "alrescha_pcg_iterations_total",
            true,
            "PCG iterations executed (across all solves)",
        )
    });

    let (mut x, mut r, mut p, mut rz, r0, mut history, start_k);
    if let Some(cp) = resume_from {
        if cp.kind != kind {
            return Err(CheckpointError::Mismatch {
                field: "solver kind",
            }
            .into());
        }
        if cp.n != n || cp.x.len() != n || cp.r.len() != n || cp.p.len() != n {
            return Err(CheckpointError::Mismatch { field: "n" }.into());
        }
        if cp.iteration >= opts.max_iters {
            return Err(CheckpointError::Mismatch {
                field: "iteration budget",
            }
            .into());
        }
        x = cp.x.clone();
        r = cp.r.clone();
        p = cp.p.clone();
        rz = cp.rz;
        r0 = cp.r0;
        history = cp.residual_history.clone();
        start_k = cp.iteration + 1;
        if let Some(snap) = &cp.fault {
            acc.restore_fault_snapshot(snap);
        }
    } else {
        x = vec![0.0; n];
        r = b.to_vec();
        r0 = norm2(&r);
        check_residual(r0, r0, b_norm, 0)?;
        if r0 <= opts.tol * b_norm {
            spmv(acc, &x, &mut report)?;
            return Ok(SolveOutcome {
                x,
                iterations: 0,
                residual: r0,
                converged: true,
                reason: TerminationReason::Converged,
                report: finished_report(report)?,
            });
        }
        let z = precond(acc, &r, &mut report)?;
        rz = dot(&r, &z);
        p = z;
        history = Vec::new();
        start_k = 1;
    }

    for k in start_k..=opts.max_iters {
        if let Some(c) = &iter_counter {
            c.inc();
        }
        let ap = spmv(acc, &p, &mut report)?;
        let pap = dot(&p, &ap);
        if !pap.is_finite() {
            return Err(CoreError::Diverged {
                iteration: k,
                residual: norm2(&r),
            });
        }
        if pap <= 0.0 {
            return Err(CoreError::Breakdown { iteration: k });
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let r_norm = norm2(&r);
        history.push(r_norm);
        if r_norm <= opts.tol * b_norm {
            return Ok(SolveOutcome {
                x,
                iterations: k,
                residual: r_norm,
                converged: true,
                reason: if resumed {
                    TerminationReason::Resumed
                } else {
                    TerminationReason::Converged
                },
                report: finished_report(report)?,
            });
        }
        check_residual(r_norm, r0, b_norm, k)?;
        let z = precond(acc, &r, &mut report)?;
        let rz_next = dot(&r, &z);
        let beta = rz_next / rz;
        rz = rz_next;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
        if checkpoint_every > 0 && k % checkpoint_every == 0 {
            if let Some(sink) = sink.as_deref_mut() {
                let cp = SolverCheckpoint {
                    kind,
                    n,
                    iteration: k,
                    x: x.clone(),
                    r: r.clone(),
                    p: p.clone(),
                    rz,
                    r0,
                    residual_history: history.clone(),
                    fault: acc.fault_snapshot(),
                };
                // Size the encoded image only when someone is watching —
                // serialization is pure cost otherwise.
                if acc.telemetry().is_some_and(|t| t.is_enabled()) {
                    acc.note_checkpoint_write(cp.to_bytes().len() as u64);
                }
                sink(cp);
            }
        }
    }

    let residual = norm2(&r);
    Ok(SolveOutcome {
        x,
        iterations: opts.max_iters,
        residual,
        converged: false,
        reason: TerminationReason::BudgetExhausted,
        report: finished_report(report)?,
    })
}

/// A PCG solver whose SpMV and SymGS kernels run on the accelerator.
#[derive(Debug)]
pub struct AcceleratedPcg {
    spmv_prog: ProgrammedKernel,
    symgs_prog: ProgrammedKernel,
    n: usize,
}

impl AcceleratedPcg {
    /// Programs both device kernels for the SPD matrix `a`.
    ///
    /// # Errors
    ///
    /// Conversion failures (non-square matrix, zero block width, missing
    /// diagonal for SymGS).
    pub fn program(acc: &mut Alrescha, a: &Coo) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(CoreError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let spmv_prog = acc.program(KernelType::SpMv, a)?;
        let symgs_prog = acc.program(KernelType::SymGs, a)?;
        Ok(AcceleratedPcg {
            spmv_prog,
            symgs_prog,
            n: a.rows(),
        })
    }

    /// Assembles a solver from two already-programmed kernels — the batch
    /// runtime uses this to reuse cached conversions instead of re-running
    /// Algorithm 1. Cloning a [`ProgrammedKernel`] is cheap (its payloads
    /// are reference-counted).
    ///
    /// # Errors
    ///
    /// [`CoreError::WrongKernel`] if either program encodes the wrong
    /// kernel; [`CoreError::InvalidProgram`] if the two programs disagree
    /// on the system size.
    pub fn from_programs(spmv_prog: ProgrammedKernel, symgs_prog: ProgrammedKernel) -> Result<Self> {
        if spmv_prog.kernel() != KernelType::SpMv {
            return Err(CoreError::WrongKernel {
                programmed: spmv_prog.kernel(),
                requested: KernelType::SpMv,
            });
        }
        if symgs_prog.kernel() != KernelType::SymGs {
            return Err(CoreError::WrongKernel {
                programmed: symgs_prog.kernel(),
                requested: KernelType::SymGs,
            });
        }
        let n = spmv_prog.matrix().rows();
        if n != symgs_prog.matrix().rows() {
            return Err(CoreError::InvalidProgram {
                reason: "spmv and symgs programs encode different system sizes",
            });
        }
        Ok(AcceleratedPcg {
            spmv_prog,
            symgs_prog,
            n,
        })
    }

    /// Solves `A x = b` with the SymGS-preconditioned CG of Figure 2.
    ///
    /// # Errors
    ///
    /// Device errors, dimension mismatches, or a numerical breakdown
    /// (`pᵀAp ≤ 0`, impossible for SPD input).
    pub fn solve(
        &self,
        acc: &mut Alrescha,
        b: &[f64],
        opts: &SolverOptions,
    ) -> Result<SolveOutcome> {
        self.drive(acc, b, opts, 0, None, None)
    }

    /// Like [`AcceleratedPcg::solve`], emitting a [`SolverCheckpoint`] to
    /// `sink` after every `every` iterations (`every = 0` never emits).
    ///
    /// # Errors
    ///
    /// As [`AcceleratedPcg::solve`].
    pub fn solve_with_checkpoints(
        &self,
        acc: &mut Alrescha,
        b: &[f64],
        opts: &SolverOptions,
        every: usize,
        sink: &mut dyn FnMut(SolverCheckpoint),
    ) -> Result<SolveOutcome> {
        self.drive(acc, b, opts, every, Some(sink), None)
    }

    /// Continues a solve from `checkpoint` (taken by
    /// [`AcceleratedPcg::solve_with_checkpoints`] against the same system
    /// and right-hand side). The resumed run is bit-identical to the
    /// uninterrupted one; a converged outcome reports
    /// [`TerminationReason::Resumed`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] when the checkpoint belongs to a different
    /// solver kind, problem size, or an already-exhausted iteration budget;
    /// otherwise as [`AcceleratedPcg::solve`].
    pub fn resume(
        &self,
        acc: &mut Alrescha,
        b: &[f64],
        opts: &SolverOptions,
        checkpoint: &SolverCheckpoint,
    ) -> Result<SolveOutcome> {
        self.drive(acc, b, opts, 0, None, Some(checkpoint))
    }

    /// The crash-recovery path: emits a [`SolverCheckpoint`] to `sink`
    /// every `every` iterations **and** (when `resume_from` is set) picks
    /// up from a prior checkpoint — the combination a persistent solver
    /// service needs, since a resumed job must keep checkpointing so a
    /// *second* crash resumes from the newest boundary instead of the one
    /// that survived the first.
    ///
    /// # Errors
    ///
    /// As [`AcceleratedPcg::resume`].
    pub fn solve_journaled(
        &self,
        acc: &mut Alrescha,
        b: &[f64],
        opts: &SolverOptions,
        every: usize,
        sink: &mut dyn FnMut(SolverCheckpoint),
        resume_from: Option<&SolverCheckpoint>,
    ) -> Result<SolveOutcome> {
        self.drive(acc, b, opts, every, Some(sink), resume_from)
    }

    fn drive(
        &self,
        acc: &mut Alrescha,
        b: &[f64],
        opts: &SolverOptions,
        every: usize,
        sink: Option<&mut dyn FnMut(SolverCheckpoint)>,
        resume_from: Option<&SolverCheckpoint>,
    ) -> Result<SolveOutcome> {
        let config = acc.config().clone();
        let n = self.n;
        run_pcg(
            acc,
            b,
            opts,
            SolverKind::Pcg,
            n,
            &mut |acc, v, report| {
                let (y, rep) = acc.spmv(&self.spmv_prog, v)?;
                absorb_into(rep, report, &config);
                Ok(y)
            },
            &mut |acc, r, report| {
                // Device SymGS application: z = M⁻¹ r.
                let mut z = vec![0.0; n];
                absorb_into(acc.symgs(&self.symgs_prog, r, &mut z)?, report, &config);
                Ok(z)
            },
            every,
            sink,
            resume_from,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alrescha_kernels::spmv::spmv;
    use alrescha_sparse::{gen, Csr};

    #[test]
    fn solves_stencil_system() {
        let coo = gen::stencil27(3);
        let csr = Csr::from_coo(&coo);
        let x_true: Vec<f64> = (0..coo.rows()).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b = spmv(&csr, &x_true);

        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedPcg::program(&mut acc, &coo).unwrap();
        let out = solver
            .solve(&mut acc, &b, &SolverOptions::default())
            .unwrap();
        assert!(out.converged, "residual {}", out.residual);
        assert!(alrescha_sparse::approx_eq(&out.x, &x_true, 1e-6));
        assert!(out.report.cycles > 0);
        assert!(out.report.datapaths.dsymgs_blocks > 0);
    }

    #[test]
    fn iteration_count_matches_host_pcg() {
        // The accelerator computes the same arithmetic as the host PCG, so
        // the convergence trajectory must agree.
        let coo = gen::banded(200, 4, 7);
        let csr = Csr::from_coo(&coo);
        let b: Vec<f64> = (0..200).map(|i| (f64::from(i) * 0.1).sin()).collect();

        let host =
            alrescha_kernels::pcg::pcg(&csr, &b, &alrescha_kernels::pcg::PcgOptions::default())
                .unwrap();

        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedPcg::program(&mut acc, &coo).unwrap();
        let out = solver
            .solve(
                &mut acc,
                &b,
                &SolverOptions {
                    tol: 1e-10,
                    max_iters: 500,
                },
            )
            .unwrap();
        assert!(out.converged);
        let diff = (out.iterations as i64 - host.iterations as i64).abs();
        assert!(
            diff <= 1,
            "device {} host {}",
            out.iterations,
            host.iterations
        );
        assert!(alrescha_sparse::approx_eq(&out.x, &host.x, 1e-6));
    }

    #[test]
    fn rejects_rectangular() {
        let mut acc = Alrescha::with_paper_config();
        let a = Coo::new(3, 4);
        assert!(AcceleratedPcg::program(&mut acc, &a).is_err());
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedPcg::program(&mut acc, &gen::stencil27(2)).unwrap();
        assert!(solver
            .solve(&mut acc, &[1.0], &SolverOptions::default())
            .is_err());
    }

    #[test]
    fn nan_rhs_is_reported_as_divergence() {
        let coo = gen::stencil27(2);
        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedPcg::program(&mut acc, &coo).unwrap();
        let mut b = vec![1.0; coo.rows()];
        b[0] = f64::NAN;
        let err = solver
            .solve(&mut acc, &b, &SolverOptions::default())
            .unwrap_err();
        assert!(
            matches!(err, CoreError::Diverged { iteration: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn infinite_rhs_is_reported_as_divergence() {
        let coo = gen::stencil27(2);
        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedPcg::program(&mut acc, &coo).unwrap();
        let mut b = vec![1.0; coo.rows()];
        b[3] = f64::INFINITY;
        let err = solver
            .solve(&mut acc, &b, &SolverOptions::default())
            .unwrap_err();
        assert!(matches!(err, CoreError::Diverged { .. }), "{err:?}");
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let coo = gen::stencil27(2);
        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedPcg::program(&mut acc, &coo).unwrap();
        let out = solver
            .solve(&mut acc, &vec![0.0; coo.rows()], &SolverOptions::default())
            .unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.reason, TerminationReason::Converged);
    }

    #[test]
    fn exhausted_iteration_budget_reports_reason() {
        let coo = gen::stencil27(3);
        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedPcg::program(&mut acc, &coo).unwrap();
        let out = solver
            .solve(
                &mut acc,
                &vec![1.0; coo.rows()],
                &SolverOptions {
                    tol: 1e-14,
                    max_iters: 2,
                },
            )
            .unwrap();
        assert!(!out.converged);
        assert_eq!(out.reason, TerminationReason::BudgetExhausted);
        assert_eq!(out.iterations, 2);
    }

    #[test]
    fn resume_from_checkpoint_is_bit_identical() {
        let coo = gen::stencil27(3);
        let csr = Csr::from_coo(&coo);
        let x_true: Vec<f64> = (0..coo.rows()).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b = spmv(&csr, &x_true);
        let opts = SolverOptions::default();

        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedPcg::program(&mut acc, &coo).unwrap();
        let full = solver.solve(&mut acc, &b, &opts).unwrap();

        let mut checkpoints = Vec::new();
        let out = solver
            .solve_with_checkpoints(&mut acc, &b, &opts, 3, &mut |cp| checkpoints.push(cp))
            .unwrap();
        assert!(out.converged);
        assert!(!checkpoints.is_empty(), "solve must emit checkpoints");
        // Checkpointing must not perturb the solve.
        assert_eq!(out.iterations, full.iterations);
        for (a, b) in out.x.iter().zip(&full.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // "Kill" the run: resume from an intermediate checkpoint only.
        let cp = &checkpoints[checkpoints.len() / 2];
        let resumed = solver.resume(&mut acc, &b, &opts, cp).unwrap();
        assert!(resumed.converged);
        assert_eq!(resumed.reason, TerminationReason::Resumed);
        assert_eq!(resumed.iterations, full.iterations);
        assert_eq!(resumed.residual.to_bits(), full.residual.to_bits());
        for (a, b) in resumed.x.iter().zip(&full.x) {
            assert_eq!(a.to_bits(), b.to_bits(), "resume must be bit-identical");
        }
    }

    #[test]
    fn resume_rejects_foreign_checkpoints() {
        use crate::checkpoint::{CheckpointError, SolverCheckpoint, SolverKind};
        let coo = gen::stencil27(2);
        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedPcg::program(&mut acc, &coo).unwrap();
        let b = vec![1.0; coo.rows()];
        let n = coo.rows();
        let cp = SolverCheckpoint {
            kind: SolverKind::MgPcg,
            n,
            iteration: 1,
            x: vec![0.0; n],
            r: b.clone(),
            p: b.clone(),
            rz: 1.0,
            r0: 1.0,
            residual_history: vec![],
            fault: None,
        };
        let err = solver
            .resume(&mut acc, &b, &SolverOptions::default(), &cp)
            .unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Checkpoint(CheckpointError::Mismatch {
                    field: "solver kind"
                })
            ),
            "{err:?}"
        );

        let cp_wrong_n = SolverCheckpoint {
            kind: SolverKind::Pcg,
            n: n + 1,
            ..cp.clone()
        };
        let err = solver
            .resume(&mut acc, &b, &SolverOptions::default(), &cp_wrong_n)
            .unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Checkpoint(CheckpointError::Mismatch { field: "n" })
            ),
            "{err:?}"
        );

        let cp_spent = SolverCheckpoint {
            kind: SolverKind::Pcg,
            iteration: 600,
            ..cp
        };
        let err = solver
            .resume(&mut acc, &b, &SolverOptions::default(), &cp_spent)
            .unwrap_err();
        assert!(matches!(err, CoreError::Checkpoint(_)), "{err:?}");
    }

    #[test]
    fn termination_reason_maps_errors() {
        let diverged = CoreError::Diverged {
            iteration: 3,
            residual: f64::NAN,
        };
        assert_eq!(
            TerminationReason::from_error(&diverged),
            Some(TerminationReason::Diverged)
        );
        let stalled = CoreError::Sim(SimError::Stalled {
            site: "d-symgs block scheduler",
            cycle: 10,
            idle_cycles: 5,
        });
        assert_eq!(
            TerminationReason::from_error(&stalled),
            Some(TerminationReason::Stalled)
        );
        let deadline = CoreError::Sim(SimError::DeadlineExceeded {
            budget: "cycle",
            cycle: 10,
        });
        assert_eq!(
            TerminationReason::from_error(&deadline),
            Some(TerminationReason::BudgetExhausted)
        );
        assert_eq!(
            TerminationReason::from_error(&CoreError::Breakdown { iteration: 1 }),
            None
        );
        assert_eq!(TerminationReason::Resumed.to_string(), "converged (resumed)");
    }
}

/// PCG with an HPCG-style multigrid V-cycle preconditioner whose SymGS
/// smoothers and residual SpMVs all run on the accelerator.
///
/// Demonstrates the multi-kernel capability Table 2 credits ALRESCHA with:
/// a solve interleaves SpMV and SymGS programs across every grid level,
/// exercising the runtime reconfiguration path continuously.
#[derive(Debug)]
pub struct AcceleratedMgPcg {
    /// Per level: (spmv program, symgs program, coarse injection map).
    levels: Vec<(ProgrammedKernel, ProgrammedKernel, Vec<usize>)>,
    n: usize,
}

impl AcceleratedMgPcg {
    /// Programs every level of `hierarchy` onto the accelerator.
    ///
    /// # Errors
    ///
    /// Propagates programming failures (the stencil hierarchy always
    /// programs cleanly).
    pub fn program(
        acc: &mut Alrescha,
        hierarchy: &alrescha_kernels::multigrid::GridHierarchy,
    ) -> Result<Self> {
        let mut levels = Vec::with_capacity(hierarchy.levels().len());
        for level in hierarchy.levels() {
            let coo = level.matrix.to_coo();
            let spmv_prog = acc.program(KernelType::SpMv, &coo)?;
            let symgs_prog = acc.program(KernelType::SymGs, &coo)?;
            levels.push((spmv_prog, symgs_prog, level.coarse_to_fine.clone()));
        }
        let n = hierarchy.levels()[0].matrix.rows();
        Ok(AcceleratedMgPcg { levels, n })
    }

    fn v_cycle(
        &self,
        acc: &mut Alrescha,
        level: usize,
        r: &[f64],
        report: &mut Option<ExecutionReport>,
    ) -> Result<Vec<f64>> {
        let (spmv_prog, symgs_prog, coarse_map) = &self.levels[level];
        let n = r.len();
        let mut z = vec![0.0; n];
        let config = acc.config().clone();
        let absorb = |rep: ExecutionReport, report: &mut Option<ExecutionReport>| match report {
            Some(acc_rep) => acc_rep.merge(&rep, &config),
            None => *report = Some(rep),
        };

        absorb(acc.symgs(symgs_prog, r, &mut z)?, report);
        if level + 1 == self.levels.len() {
            return Ok(z);
        }

        let (az, rep) = acc.spmv(spmv_prog, &z)?;
        absorb(rep, report);
        let residual: Vec<f64> = r.iter().zip(&az).map(|(ri, azi)| ri - azi).collect();
        let rc: Vec<f64> = coarse_map.iter().map(|&f| residual[f]).collect();
        let zc = self.v_cycle(acc, level + 1, &rc, report)?;
        for (c, &f) in coarse_map.iter().enumerate() {
            z[f] += zc[c];
        }
        absorb(acc.symgs(symgs_prog, r, &mut z)?, report);
        Ok(z)
    }

    /// Solves `A x = b` with V-cycle-preconditioned CG on the device.
    ///
    /// # Errors
    ///
    /// Device errors, dimension mismatches, or [`CoreError::Breakdown`] on
    /// non-SPD input.
    pub fn solve(
        &self,
        acc: &mut Alrescha,
        b: &[f64],
        opts: &SolverOptions,
    ) -> Result<SolveOutcome> {
        self.drive(acc, b, opts, 0, None, None)
    }

    /// Like [`AcceleratedMgPcg::solve`], emitting a [`SolverCheckpoint`] to
    /// `sink` after every `every` iterations (`every = 0` never emits).
    ///
    /// # Errors
    ///
    /// As [`AcceleratedMgPcg::solve`].
    pub fn solve_with_checkpoints(
        &self,
        acc: &mut Alrescha,
        b: &[f64],
        opts: &SolverOptions,
        every: usize,
        sink: &mut dyn FnMut(SolverCheckpoint),
    ) -> Result<SolveOutcome> {
        self.drive(acc, b, opts, every, Some(sink), None)
    }

    /// Continues a solve from `checkpoint` (see
    /// [`AcceleratedPcg::resume`]; the checkpoint must carry
    /// [`SolverKind::MgPcg`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] on a foreign checkpoint; otherwise as
    /// [`AcceleratedMgPcg::solve`].
    pub fn resume(
        &self,
        acc: &mut Alrescha,
        b: &[f64],
        opts: &SolverOptions,
        checkpoint: &SolverCheckpoint,
    ) -> Result<SolveOutcome> {
        self.drive(acc, b, opts, 0, None, Some(checkpoint))
    }

    fn drive(
        &self,
        acc: &mut Alrescha,
        b: &[f64],
        opts: &SolverOptions,
        every: usize,
        sink: Option<&mut dyn FnMut(SolverCheckpoint)>,
        resume_from: Option<&SolverCheckpoint>,
    ) -> Result<SolveOutcome> {
        let config = acc.config().clone();
        run_pcg(
            acc,
            b,
            opts,
            SolverKind::MgPcg,
            self.n,
            &mut |acc, v, report| {
                let (y, rep) = acc.spmv(&self.levels[0].0, v)?;
                absorb_into(rep, report, &config);
                Ok(y)
            },
            &mut |acc, r, report| self.v_cycle(acc, 0, r, report),
            every,
            sink,
            resume_from,
        )
    }
}

#[cfg(test)]
mod mg_tests {
    use super::*;
    use alrescha_kernels::multigrid::GridHierarchy;
    use alrescha_kernels::spmv::spmv;
    use alrescha_sparse::Csr;

    #[test]
    fn accelerated_mg_pcg_matches_host_mg_pcg() {
        let hierarchy = GridHierarchy::build(8, 3).unwrap();
        let a = hierarchy.levels()[0].matrix.clone();
        let x_true: Vec<f64> = (0..a.rows()).map(|i| ((i % 6) as f64) - 2.5).collect();
        let b = spmv(&a, &x_true);

        let (_, host_iters, host_converged) = hierarchy.solve(&b, 1e-9, 100).unwrap();
        assert!(host_converged);

        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedMgPcg::program(&mut acc, &hierarchy).unwrap();
        let out = solver
            .solve(
                &mut acc,
                &b,
                &SolverOptions {
                    tol: 1e-9,
                    max_iters: 100,
                },
            )
            .unwrap();
        assert!(out.converged);
        assert!(alrescha_sparse::approx_eq(&out.x, &x_true, 1e-5));
        assert!(
            (out.iterations as i64 - host_iters as i64).abs() <= 1,
            "device {} host {host_iters}",
            out.iterations
        );
        // The multi-level workload reconfigures constantly, all hidden.
        assert!(out.report.reconfig.switches > 10);
        assert_eq!(out.report.reconfig.exposed_cycles, 0);
    }

    #[test]
    fn mg_beats_plain_symgs_pcg_on_the_device() {
        let hierarchy = GridHierarchy::build(8, 3).unwrap();
        let coo = hierarchy.levels()[0].matrix.to_coo();
        let csr = Csr::from_coo(&coo);
        let b = spmv(&csr, &vec![1.0; csr.cols()]);

        let mut acc = Alrescha::with_paper_config();
        let plain = AcceleratedPcg::program(&mut acc, &coo).unwrap();
        let plain_out = plain
            .solve(
                &mut acc,
                &b,
                &SolverOptions {
                    tol: 1e-9,
                    max_iters: 100,
                },
            )
            .unwrap();

        let mg = AcceleratedMgPcg::program(&mut acc, &hierarchy).unwrap();
        let mg_out = mg
            .solve(
                &mut acc,
                &b,
                &SolverOptions {
                    tol: 1e-9,
                    max_iters: 100,
                },
            )
            .unwrap();

        assert!(plain_out.converged && mg_out.converged);
        assert!(
            mg_out.iterations <= plain_out.iterations,
            "mg {} plain {}",
            mg_out.iterations,
            plain_out.iterations
        );
    }

    #[test]
    fn mg_nan_rhs_is_reported_as_divergence() {
        let hierarchy = GridHierarchy::build(4, 2).unwrap();
        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedMgPcg::program(&mut acc, &hierarchy).unwrap();
        let n = hierarchy.levels()[0].matrix.rows();
        let mut b = vec![1.0; n];
        b[0] = f64::NAN;
        let err = solver
            .solve(&mut acc, &b, &SolverOptions::default())
            .unwrap_err();
        assert!(matches!(err, CoreError::Diverged { .. }), "{err:?}");
    }

    #[test]
    fn mg_rejects_wrong_rhs() {
        let hierarchy = GridHierarchy::build(4, 2).unwrap();
        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedMgPcg::program(&mut acc, &hierarchy).unwrap();
        assert!(solver
            .solve(&mut acc, &[1.0], &SolverOptions::default())
            .is_err());
    }
}
