//! `alrescha-fleet`: a work-stealing, batched execution runtime.
//!
//! The paper's host/device split (§4) makes Algorithm-1 conversion the
//! dominant one-time cost of a run: the host reformats the sparse operand
//! into locally-dense blocks and writes the configuration table before the
//! device streams a single byte. Parameter sweeps and solver campaigns,
//! however, run *many* kernels over *few* distinct matrices — HPCG runs the
//! same stencil hundreds of times; a fault-injection study replays one
//! system under dozens of plans. The fleet amortizes the host work across
//! such batches:
//!
//! * a **sharded conversion cache** keyed by a matrix fingerprint lets
//!   repeated matrices skip Algorithm 1 (and any preflight verification)
//!   entirely — a cache hit hands the worker a reference-counted
//!   [`ProgrammedKernel`] clone;
//! * **per-worker accelerator reuse**: each worker owns one [`Alrescha`]
//!   and recycles it between jobs via [`Alrescha::reset`] instead of
//!   rebuilding the simulator;
//! * **work stealing**: jobs are dealt round-robin onto per-worker FIFO
//!   deques; an idle worker steals from the back of a sibling's deque, so
//!   a skewed batch (one huge solve among many small SpMVs) still keeps
//!   every worker busy;
//! * **bounded admission with deadline propagation**: a batch larger than
//!   the queue capacity rejects the excess jobs in-band
//!   ([`CoreError::QueueFull`]), and a fleet deadline is translated into
//!   each job's [`ExecBudget::max_wall`] so the existing runtime guard and
//!   circuit-breaker machinery enforce it.
//!
//! # Determinism
//!
//! Batch execution is **bit-identical** to sequential execution, per job:
//! [`Fleet::run`] and [`Fleet::run_sequential`] produce the same numeric
//! results and the same [`ExecutionReport`]s regardless of worker count,
//! scheduling order, or cache hits. This holds because
//!
//! * every job arms its **own** fault plan — the injector's RNG cursor is
//!   never shared across jobs;
//! * [`Alrescha::reset`] restores a recycled accelerator to its
//!   just-built state (verified down to the RCU's configured data path,
//!   whose persistence would otherwise perturb reconfiguration counts);
//! * Algorithm-1 conversion is a pure function of `(kernel, matrix, ω)`,
//!   so a cached program is indistinguishable from a fresh one.
//!
//! Only *scheduling metadata* (which worker ran a job, queue-wait times,
//! hit/miss attribution when two workers race to convert the same key) may
//! vary between runs; `tests/fleet_determinism.rs` pins the invariant.
//!
//! ```
//! use alrescha::fleet::{Fleet, FleetConfig, JobKernel, JobSpec};
//! use alrescha_sparse::gen;
//!
//! let a = gen::stencil27(3);
//! let x = vec![1.0; a.cols()];
//! let jobs: Vec<JobSpec> = (0..8)
//!     .map(|_| JobSpec::new(a.clone(), JobKernel::SpMv { x: x.clone() }))
//!     .collect();
//!
//! let fleet = Fleet::new(FleetConfig::default().with_workers(2));
//! let report = fleet.run(jobs);
//! assert_eq!(report.stats.completed, 8);
//! // One conversion, seven cache hits: the matrix repeats.
//! assert_eq!(report.stats.cache_misses, 1);
//! assert_eq!(report.stats.cache_hits, 7);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use alrescha_sim::{ExecBudget, ExecutionReport, FaultPlan, RecoveryPolicy, SimConfig, SimError};
use alrescha_sparse::Coo;
use crossbeam::deque::{Steal, Stealer, Worker};

use crate::accelerator::{Alrescha, ProgrammedKernel};
use crate::breaker::BreakerConfig;
use crate::checkpoint::SolverCheckpoint;
use crate::convert::KernelType;
use crate::solver::{AcceleratedPcg, SolveOutcome, SolverOptions};
use crate::{CoreError, Result};

/// A verification hook run on every freshly converted program before it is
/// cached and executed (cache hits skip it — the program was already
/// verified when it entered the cache).
///
/// The fleet lives below the `alrescha-lint` crate in the dependency graph,
/// so static verification is injected rather than imported; see
/// [`Fleet::with_preflight`] for wiring `alverify` in.
pub type PreflightHook =
    Arc<dyn Fn(&ProgrammedKernel, &SimConfig) -> std::result::Result<(), String> + Send + Sync>;

/// An admission hook run on every program a job is about to execute,
/// *after* conversion/preflight but *before* any engine cycle is charged.
///
/// Unlike [`PreflightHook`], it also sees the job's effective
/// [`ExecBudget`], so a static analyzer (alprove's AL404 cycle bound) can
/// reject a job whose proven minimum cost already exceeds the deadline —
/// and because the verdict depends on the budget, it runs on cache *hits*
/// too. Returning `Err` fails the job in-band as
/// [`CoreError::Admission`]; see `alrescha_lint::fleet_admission_hook`.
pub type AdmissionHook = Arc<
    dyn Fn(&ProgrammedKernel, &SimConfig, &ExecBudget) -> std::result::Result<(), String>
        + Send
        + Sync,
>;

/// A durability hook invoked with every [`SolverCheckpoint`] a journaled
/// PCG job emits, keyed by the job's stable identifier
/// ([`JobSpec::with_id`], falling back to the batch index).
///
/// A persistent service points this at atomic checkpoint files (see
/// `SolverCheckpoint::write_to_path`) so a crash resumes from the newest
/// iteration boundary instead of the beginning. The hook runs on the
/// worker thread between solver iterations; it must not panic.
pub type CheckpointHook = Arc<dyn Fn(u64, &SolverCheckpoint) + Send + Sync>;

/// Locks a mutex, recovering the guard if a previous holder panicked — the
/// protected state (cache maps, job deques) is valid at every await point
/// of its critical sections.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Job specification
// ---------------------------------------------------------------------------

/// The kernel a job runs, with its operands.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKernel {
    /// `y = A·x`.
    SpMv {
        /// Dense operand vector.
        x: Vec<f64>,
    },
    /// One symmetric Gauss–Seidel sweep, `x0` seeding the iterate.
    SymGs {
        /// Right-hand side.
        b: Vec<f64>,
        /// Initial iterate.
        x0: Vec<f64>,
    },
    /// A full SymGS-preconditioned CG solve (Figure 2).
    Pcg {
        /// Right-hand side.
        b: Vec<f64>,
        /// Solver options.
        opts: SolverOptions,
    },
}

impl JobKernel {
    /// Stable lowercase label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            JobKernel::SpMv { .. } => "spmv",
            JobKernel::SymGs { .. } => "symgs",
            JobKernel::Pcg { .. } => "pcg",
        }
    }
}

/// One unit of fleet work: a matrix, a kernel, and the runtime knobs the
/// sequential API would set on the accelerator by hand.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The sparse operand.
    pub matrix: Coo,
    /// Kernel and operands.
    pub kernel: JobKernel,
    /// Simulator configuration (determines ω and hence the conversion).
    pub config: SimConfig,
    /// Per-job fault plan; the injector cursor is private to this job.
    pub fault_plan: Option<FaultPlan>,
    /// Recovery policy applied when a detected fault survives recovery.
    pub recovery: RecoveryPolicy,
    /// Per-job budget; [`FleetConfig::default_budget`] applies when `None`.
    pub budget: Option<ExecBudget>,
    /// Stable identifier passed to the [`CheckpointHook`]; the batch index
    /// is used when `None`. A persistent service assigns journal job IDs
    /// here so checkpoints land in the right per-job file.
    pub id: Option<u64>,
    /// For PCG jobs: emit a checkpoint to the fleet's [`CheckpointHook`]
    /// every this many iterations (`0` = never).
    pub checkpoint_every: usize,
    /// For PCG jobs: resume from this checkpoint instead of starting from
    /// the zero iterate. Resume is bit-identical in the solution fields
    /// (see [`JobOutput::solution_fingerprint`]).
    pub resume_from: Option<SolverCheckpoint>,
    /// Pin every kernel of this job to the host reference backend — the
    /// planned CPU mode a service enters while the device breaker is open
    /// (agrees with the device to rounding; no device cycles simulated).
    pub cpu_only: bool,
    /// Scheduling priority: higher levels are dequeued first by consumers
    /// that order work (e.g. the alserve queue); within a level ordering
    /// is stable FIFO. The fleet's own batch APIs preserve submission
    /// order regardless — this field is carried for schedulers above.
    pub priority: u8,
    /// Distributed-trace identifier minted by the submitting client
    /// (`0` = untraced). When set, the per-job span name is prefixed
    /// `trace:<id>:` so the alobs stitcher can merge client, server, and
    /// engine events under one trace.
    pub trace_id: u64,
}

impl JobSpec {
    /// A job with the paper's Table 5 configuration and default runtime
    /// policies.
    pub fn new(matrix: Coo, kernel: JobKernel) -> Self {
        JobSpec {
            matrix,
            kernel,
            config: SimConfig::paper(),
            fault_plan: None,
            recovery: RecoveryPolicy::default(),
            budget: None,
            id: None,
            checkpoint_every: 0,
            resume_from: None,
            cpu_only: false,
            priority: 0,
            trace_id: 0,
        }
    }

    /// Replaces the simulator configuration.
    #[must_use]
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Arms a deterministic fault plan for this job only.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the recovery policy.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets a per-job execution budget.
    #[must_use]
    pub fn with_budget(mut self, budget: ExecBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the stable job identifier handed to the [`CheckpointHook`].
    #[must_use]
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = Some(id);
        self
    }

    /// Emits a checkpoint every `every` iterations (PCG jobs only).
    #[must_use]
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Resumes a PCG job from a prior checkpoint.
    #[must_use]
    pub fn with_resume_from(mut self, checkpoint: SolverCheckpoint) -> Self {
        self.resume_from = Some(checkpoint);
        self
    }

    /// Pins the job to the host reference backend (no device).
    #[must_use]
    pub fn with_cpu_only(mut self, cpu_only: bool) -> Self {
        self.cpu_only = cpu_only;
        self
    }

    /// Sets the scheduling priority (higher runs first; 0 is default).
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Propagates a distributed-trace id into the job span (`0` clears).
    #[must_use]
    pub fn with_trace_id(mut self, trace_id: u64) -> Self {
        self.trace_id = trace_id;
        self
    }
}

// ---------------------------------------------------------------------------
// Fleet configuration
// ---------------------------------------------------------------------------

/// Knobs for a [`Fleet`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads; `0` resolves to the machine's available parallelism.
    pub workers: usize,
    /// Jobs admitted per batch; the excess is rejected with
    /// [`CoreError::QueueFull`].
    pub queue_capacity: usize,
    /// Shards in the conversion cache (clamped to at least 1).
    pub cache_shards: usize,
    /// Wall-clock deadline for the whole batch, propagated into each job's
    /// [`ExecBudget::max_wall`] as the remaining time at dequeue.
    pub deadline: Option<Duration>,
    /// Budget applied to jobs that do not carry their own.
    pub default_budget: ExecBudget,
    /// When set, every job runs behind a freshly armed circuit breaker
    /// (per-job, so breaker state never leaks between jobs).
    pub breaker: Option<BreakerConfig>,
    /// Base unit of the [`CoreError::QueueFull`] backpressure hint. The
    /// `i`-th job past capacity is told to retry after
    /// `retry_after_hint × (i + 1)` — a deterministic linear ramp that
    /// spreads resubmissions instead of stampeding, and depends only on
    /// the job's position in the batch (never on worker count or timing,
    /// preserving batch ≡ sequential bit-identity).
    pub retry_after_hint: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 0,
            queue_capacity: 1024,
            cache_shards: 8,
            deadline: None,
            default_budget: ExecBudget::default(),
            breaker: None,
            retry_after_hint: Duration::from_millis(25),
        }
    }
}

impl FleetConfig {
    /// Sets the worker count (`0` = available parallelism).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the admission capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the batch deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-job circuit breaker.
    #[must_use]
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Sets the base unit of the queue-full backpressure hint.
    #[must_use]
    pub fn with_retry_after_hint(mut self, hint: Duration) -> Self {
        self.retry_after_hint = hint;
        self
    }

    /// The backpressure hint for the job at batch position `index` when
    /// the queue holds `capacity`: a deterministic linear ramp over how
    /// far past capacity the job landed.
    pub fn retry_after(&self, index: usize, capacity: usize) -> Duration {
        let excess = index.saturating_sub(capacity).saturating_add(1);
        self.retry_after_hint
            .saturating_mul(u32::try_from(excess).unwrap_or(u32::MAX))
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

// ---------------------------------------------------------------------------
// Conversion cache
// ---------------------------------------------------------------------------

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Content fingerprint of a COO matrix: dimensions plus every entry's
/// coordinates and exact value bits, FNV-1a folded. Two matrices with the
/// same fingerprint, shape, and nnz are treated as identical by the cache
/// (the full key also carries shape and nnz, so a 64-bit collision would
/// additionally have to match those).
pub fn matrix_fingerprint(a: &Coo) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, &(a.rows() as u64).to_le_bytes());
    fnv1a(&mut h, &(a.cols() as u64).to_le_bytes());
    for &(r, c, v) in a.entries() {
        fnv1a(&mut h, &(r as u64).to_le_bytes());
        fnv1a(&mut h, &(c as u64).to_le_bytes());
        fnv1a(&mut h, &v.to_bits().to_le_bytes());
    }
    h
}

/// Cache key: the conversion inputs that determine a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    kernel: KernelType,
    omega: usize,
    rows: usize,
    cols: usize,
    nnz: usize,
    fingerprint: u64,
}

impl CacheKey {
    fn new(kernel: KernelType, omega: usize, a: &Coo) -> Self {
        CacheKey {
            kernel,
            omega,
            rows: a.rows(),
            cols: a.cols(),
            nnz: a.entries().len(),
            fingerprint: matrix_fingerprint(a),
        }
    }

    fn shard(&self, shards: usize) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % shards
    }
}

/// Sharded map from conversion inputs to programs. The shard lock is held
/// across a miss's conversion, so concurrent requests for the *same* key
/// block and then hit instead of duplicating Algorithm 1; requests for
/// different keys usually land on different shards and proceed in parallel.
struct ConversionCache {
    shards: Vec<Mutex<HashMap<CacheKey, Arc<ProgrammedKernel>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ConversionCache {
    fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ConversionCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached program for `(kernel, ω, matrix)` or converts,
    /// preflights, and caches it. The boolean is `true` on a hit.
    fn get_or_convert(
        &self,
        acc: &mut Alrescha,
        kernel: KernelType,
        a: &Coo,
        preflight: Option<&PreflightHook>,
    ) -> Result<(Arc<ProgrammedKernel>, bool)> {
        let key = CacheKey::new(kernel, acc.config().omega, a);
        let shard = &self.shards[key.shard(self.shards.len())];
        let mut map = lock(shard);
        if let Some(prog) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(prog), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let prog = acc.program(kernel, a)?;
        if let Some(hook) = preflight {
            hook(&prog, acc.config()).map_err(|message| CoreError::Preflight { message })?;
        }
        let prog = Arc::new(prog);
        map.insert(key, Arc::clone(&prog));
        Ok((prog, false))
    }

    fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// What a completed job produced.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// SpMV result vector and its report.
    SpMv {
        /// `A·x`.
        y: Vec<f64>,
        /// Device execution report.
        report: ExecutionReport,
    },
    /// SymGS iterate after the sweep and its report.
    SymGs {
        /// Updated iterate.
        x: Vec<f64>,
        /// Device execution report.
        report: ExecutionReport,
    },
    /// Full solve outcome.
    Pcg {
        /// The solve outcome (iterate, residual, accumulated report).
        outcome: SolveOutcome,
    },
}

impl JobOutput {
    /// The device execution report (accumulated across iterations for PCG).
    pub fn report(&self) -> &ExecutionReport {
        match self {
            JobOutput::SpMv { report, .. } | JobOutput::SymGs { report, .. } => report,
            JobOutput::Pcg { outcome } => &outcome.report,
        }
    }

    /// The numeric result vector.
    pub fn values(&self) -> &[f64] {
        match self {
            JobOutput::SpMv { y, .. } => y,
            JobOutput::SymGs { x, .. } => x,
            JobOutput::Pcg { outcome } => &outcome.x,
        }
    }

    /// Content fingerprint over every deterministic field: the exact bits
    /// of the result vector, the full execution report, and (for solves)
    /// the iteration count, residual bits, convergence flag, and
    /// termination reason. Two outputs with equal fingerprints are
    /// bit-identical for determinism purposes.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let tag: u8 = match self {
            JobOutput::SpMv { .. } => 1,
            JobOutput::SymGs { .. } => 2,
            JobOutput::Pcg { .. } => 3,
        };
        fnv1a(&mut h, &[tag]);
        let values = self.values();
        fnv1a(&mut h, &(values.len() as u64).to_le_bytes());
        for v in values {
            fnv1a(&mut h, &v.to_bits().to_le_bytes());
        }
        if let JobOutput::Pcg { outcome } = self {
            fnv1a(&mut h, &(outcome.iterations as u64).to_le_bytes());
            fnv1a(&mut h, &outcome.residual.to_bits().to_le_bytes());
            fnv1a(&mut h, &[u8::from(outcome.converged)]);
            fnv1a(&mut h, format!("{:?}", outcome.reason).as_bytes());
        }
        fnv1a(&mut h, self.report().to_json().as_bytes());
        h
    }

    /// Resume-invariant fingerprint: covers only the fields a
    /// checkpoint/resume boundary preserves — the exact result bits and
    /// (for solves) the iteration count, residual bits, and convergence
    /// flag. Unlike [`JobOutput::fingerprint`] it excludes the execution
    /// report (a resume restarts report accumulation mid-solve) and the
    /// termination reason, so an interrupted-and-resumed solve and an
    /// uninterrupted one compare equal exactly when their numerics agree.
    pub fn solution_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let tag: u8 = match self {
            JobOutput::SpMv { .. } => 1,
            JobOutput::SymGs { .. } => 2,
            JobOutput::Pcg { .. } => 3,
        };
        fnv1a(&mut h, &[tag]);
        let values = self.values();
        fnv1a(&mut h, &(values.len() as u64).to_le_bytes());
        for v in values {
            fnv1a(&mut h, &v.to_bits().to_le_bytes());
        }
        if let JobOutput::Pcg { outcome } = self {
            fnv1a(&mut h, &(outcome.iterations as u64).to_le_bytes());
            fnv1a(&mut h, &outcome.residual.to_bits().to_le_bytes());
            fnv1a(&mut h, &[u8::from(outcome.converged)]);
        }
        h
    }
}

/// Per-job record in a [`FleetReport`].
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Index of the job in the submitted batch.
    pub job: usize,
    /// Kernel label (`"spmv"`, `"symgs"`, `"pcg"`).
    pub kernel: &'static str,
    /// Worker that executed the job (`usize::MAX` for admission rejects).
    pub worker: usize,
    /// Whether every program the job needed came from the conversion cache.
    pub cache_hit: bool,
    /// Time between batch submission and this job's dequeue.
    pub queue_wait: Duration,
    /// Time spent executing (programming + device run).
    pub run_time: Duration,
    /// The job's result.
    pub result: Result<JobOutput>,
}

impl JobRecord {
    fn rejected(job: usize, kernel: &'static str, err: CoreError) -> Self {
        JobRecord {
            job,
            kernel,
            worker: usize::MAX,
            cache_hit: false,
            queue_wait: Duration::ZERO,
            run_time: Duration::ZERO,
            result: Err(err),
        }
    }

    fn to_json(&self) -> String {
        let (ok, fingerprint, error) = match &self.result {
            Ok(out) => (
                true,
                format!("\"{:#018x}\"", out.fingerprint()),
                "null".to_owned(),
            ),
            Err(e) => (false, "null".to_owned(), format!("{:?}", e.to_string())),
        };
        format!(
            concat!(
                "{{\"job\":{},\"kernel\":{:?},\"worker\":{},\"cache_hit\":{},",
                "\"queue_wait_us\":{},\"run_time_us\":{},\"ok\":{},",
                "\"fingerprint\":{},\"error\":{}}}"
            ),
            self.job,
            self.kernel,
            if self.worker == usize::MAX {
                -1_i64
            } else {
                self.worker as i64
            },
            self.cache_hit,
            self.queue_wait.as_micros(),
            self.run_time.as_micros(),
            ok,
            fingerprint,
            error,
        )
    }
}

/// Aggregate statistics for one batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetStats {
    /// Jobs offered to the batch.
    pub jobs: usize,
    /// Jobs that finished with `Ok`.
    pub completed: usize,
    /// Jobs that ran but failed.
    pub failed: usize,
    /// Jobs rejected at admission ([`CoreError::QueueFull`]).
    pub rejected: usize,
    /// Conversion-cache hits during the batch.
    pub cache_hits: u64,
    /// Conversion-cache misses (conversions performed) during the batch.
    pub cache_misses: u64,
    /// Workers that rebuilt their accelerator for a config change.
    pub engine_rebuilds: u64,
    /// Jobs served by a recycled ([`Alrescha::reset`]) accelerator.
    pub engine_reuses: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Wall time of the whole batch.
    pub wall_time: Duration,
    /// Device cycles summed over completed jobs.
    pub total_device_cycles: u64,
    /// Longest queue wait observed.
    pub queue_wait_max: Duration,
    /// Mean queue wait over executed jobs.
    pub queue_wait_mean: Duration,
}

impl FleetStats {
    /// Completed jobs per wall-clock second (0 for an empty batch).
    pub fn jobs_per_second(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"jobs\":{},\"completed\":{},\"failed\":{},\"rejected\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},",
                "\"engine_rebuilds\":{},\"engine_reuses\":{},\"workers\":{},",
                "\"wall_time_us\":{},\"total_device_cycles\":{},",
                "\"queue_wait_max_us\":{},\"queue_wait_mean_us\":{}}}"
            ),
            self.jobs,
            self.completed,
            self.failed,
            self.rejected,
            self.cache_hits,
            self.cache_misses,
            self.engine_rebuilds,
            self.engine_reuses,
            self.workers,
            self.wall_time.as_micros(),
            self.total_device_cycles,
            self.queue_wait_max.as_micros(),
            self.queue_wait_mean.as_micros(),
        )
    }
}

/// Everything a batch produced: one record per submitted job (in submission
/// order) plus aggregate statistics.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-job records, indexed by submission order.
    pub jobs: Vec<JobRecord>,
    /// Aggregate statistics.
    pub stats: FleetStats,
}

impl FleetReport {
    /// Single-line JSON with a stable schema (`stats` object first, then
    /// the `jobs` array in submission order). Job results appear as
    /// determinism fingerprints, not payloads.
    pub fn to_json(&self) -> String {
        let jobs: Vec<String> = self.jobs.iter().map(JobRecord::to_json).collect();
        format!(
            "{{\"stats\":{},\"jobs\":[{}]}}",
            self.stats.to_json(),
            jobs.join(",")
        )
    }
}

// ---------------------------------------------------------------------------
// The fleet
// ---------------------------------------------------------------------------

/// The batched execution runtime. See the [module docs](self) for the
/// architecture and determinism contract.
pub struct Fleet {
    config: FleetConfig,
    cache: ConversionCache,
    preflight: Option<PreflightHook>,
    admission: Option<AdmissionHook>,
    checkpoint_hook: Option<CheckpointHook>,
    telemetry: Option<Arc<alrescha_obs::Telemetry>>,
}

impl fmt::Debug for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fleet")
            .field("config", &self.config)
            .field("cached_programs", &self.cache.len())
            .field("preflight", &self.preflight.is_some())
            .field("admission", &self.admission.is_some())
            .field("checkpoint_hook", &self.checkpoint_hook.is_some())
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

impl Fleet {
    /// Builds a fleet; the conversion cache persists across batches.
    pub fn new(config: FleetConfig) -> Self {
        let cache = ConversionCache::new(config.cache_shards);
        Fleet {
            config,
            cache,
            preflight: None,
            admission: None,
            checkpoint_hook: None,
            telemetry: None,
        }
    }

    /// Installs a preflight hook run on every fresh conversion (cache hits
    /// skip it). Rejections fail the job with [`CoreError::Preflight`].
    #[must_use]
    pub fn with_preflight(mut self, hook: PreflightHook) -> Self {
        self.preflight = Some(hook);
        self
    }

    /// Installs an admission hook run on every program a job executes,
    /// with the job's effective budget (cache hits included — the verdict
    /// depends on the budget, not just the program). Rejections fail the
    /// job with [`CoreError::Admission`].
    #[must_use]
    pub fn with_admission(mut self, hook: AdmissionHook) -> Self {
        self.admission = Some(hook);
        self
    }

    /// Installs the durability hook that receives every checkpoint a
    /// journaled PCG job emits (see [`JobSpec::with_checkpoint_every`]).
    #[must_use]
    pub fn with_checkpoint_hook(mut self, hook: CheckpointHook) -> Self {
        self.checkpoint_hook = Some(hook);
        self
    }

    /// Attaches an alobs telemetry sink: batch/job spans (one timeline
    /// track per worker thread), device timelines nested inside job spans,
    /// and fleet metrics (steals, queue waits, cache attribution). Job
    /// results stay bit-identical — telemetry only observes.
    #[must_use]
    pub fn with_telemetry(mut self, tele: Arc<alrescha_obs::Telemetry>) -> Self {
        self.telemetry = Some(tele);
        self
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&Arc<alrescha_obs::Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Programs currently held by the conversion cache.
    pub fn cached_programs(&self) -> usize {
        self.cache.len()
    }

    /// Runs a batch across the worker pool and returns one record per job,
    /// in submission order.
    ///
    /// Jobs beyond [`FleetConfig::queue_capacity`] are not run; their
    /// records carry [`CoreError::QueueFull`]. Everything else about a
    /// job's result is bit-identical to [`Fleet::run_sequential`].
    pub fn run(&self, jobs: Vec<JobSpec>) -> FleetReport {
        let offered = jobs.len();
        let capacity = self.config.queue_capacity;
        let workers = self.config.resolved_workers();
        let Ok(pool) = rayon::ThreadPoolBuilder::new().num_threads(workers).build() else {
            // Thread spawning failed: serve the batch on this thread.
            let mut report = self.run_sequential(jobs);
            report.stats.workers = 0;
            return report;
        };
        let (hits0, misses0) = self.cache.counters();
        let _batch_span = alrescha_obs::span!(self.telemetry, format!("fleet:batch:{offered}"));
        let steal_counter = self.telemetry.as_ref().map(|t| {
            t.metrics().counter(
                "alrescha_fleet_steals_total",
                false,
                "jobs stolen from a sibling worker's deque",
            )
        });
        let submitted = Instant::now();
        let deadline = self.config.deadline.map(|d| submitted + d);

        // Admission: everything past the capacity is rejected in-band.
        let mut rejects: Vec<JobRecord> = Vec::new();
        for (i, spec) in jobs.iter().enumerate().skip(capacity) {
            rejects.push(JobRecord::rejected(
                i,
                spec.kernel.name(),
                CoreError::QueueFull {
                    capacity,
                    offered,
                    retry_after: self.config.retry_after(i, capacity),
                },
            ));
        }
        let admitted = &jobs[..offered.min(capacity)];

        // Deal admitted jobs round-robin onto per-worker FIFO deques.
        let deques: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<usize>> = deques.iter().map(Worker::stealer).collect();
        for (i, _) in admitted.iter().enumerate() {
            deques[i % workers].push(i);
        }
        let slots: Vec<Mutex<Option<Worker<usize>>>> =
            deques.into_iter().map(|d| Mutex::new(Some(d))).collect();

        let rebuilds = AtomicU64::new(0);
        let reuses = AtomicU64::new(0);
        let per_worker: Vec<Vec<JobRecord>> = pool.broadcast(|ctx| {
            let me = ctx.index();
            let Some(local) = lock(&slots[me]).take() else {
                return Vec::new();
            };
            if let Some(tele) = &self.telemetry {
                tele.name_thread(format!("worker-{me}"));
            }
            let mut station = WorkerStation::new(me);
            let mut out = Vec::new();
            loop {
                let next = local.pop().or_else(|| {
                    // Steal from siblings, scanning from our right neighbor
                    // so contention spreads instead of piling on worker 0.
                    (1..workers).find_map(|d| loop {
                        match stealers[(me + d) % workers].steal() {
                            Steal::Success(i) => {
                                if let Some(c) = &steal_counter {
                                    c.inc();
                                }
                                break Some(i);
                            }
                            Steal::Empty => break None,
                            Steal::Retry => {}
                        }
                    })
                });
                let Some(i) = next else { break };
                let queue_wait = submitted.elapsed();
                out.push(self.execute(&mut station, i, &admitted[i], queue_wait, deadline));
            }
            rebuilds.fetch_add(station.rebuilds, Ordering::Relaxed);
            reuses.fetch_add(station.reuses, Ordering::Relaxed);
            out
        });

        let mut records: Vec<JobRecord> = per_worker.into_iter().flatten().collect();
        records.extend(rejects);
        records.sort_by_key(|r| r.job);

        let (hits1, misses1) = self.cache.counters();
        let stats = finish_stats(
            &records,
            offered,
            workers,
            submitted.elapsed(),
            hits1 - hits0,
            misses1 - misses0,
            rebuilds.into_inner(),
            reuses.into_inner(),
        );
        self.publish_batch(&stats);
        FleetReport {
            jobs: records,
            stats,
        }
    }

    /// Publishes one batch's aggregate statistics to the metrics registry.
    fn publish_batch(&self, stats: &FleetStats) {
        let Some(tele) = &self.telemetry else { return };
        let m = tele.metrics();
        m.counter("alrescha_fleet_batches_total", true, "batches executed")
            .inc();
        m.counter(
            "alrescha_fleet_jobs_completed_total",
            true,
            "jobs that finished with Ok",
        )
        .add(stats.completed as u64);
        m.counter(
            "alrescha_fleet_jobs_failed_total",
            true,
            "jobs that ran but failed",
        )
        .add(stats.failed as u64);
        m.counter(
            "alrescha_fleet_jobs_rejected_total",
            true,
            "jobs rejected at admission (queue full)",
        )
        .add(stats.rejected as u64);
        // Two workers racing on the same key can both convert, so hit/miss
        // totals (not just attribution) can vary run-to-run.
        m.counter(
            "alrescha_fleet_cache_hits_total",
            false,
            "conversion-cache hits",
        )
        .add(stats.cache_hits);
        m.counter(
            "alrescha_fleet_cache_misses_total",
            false,
            "conversion-cache misses (conversions performed)",
        )
        .add(stats.cache_misses);
        m.counter(
            "alrescha_fleet_engine_rebuilds_total",
            false,
            "workers that rebuilt their accelerator for a config change",
        )
        .add(stats.engine_rebuilds);
        m.counter(
            "alrescha_fleet_engine_reuses_total",
            false,
            "jobs served by a recycled accelerator",
        )
        .add(stats.engine_reuses);
    }

    /// Reference path: runs every job on this thread with a **fresh**
    /// accelerator per job and no conversion cache. Produces the results
    /// [`Fleet::run`] must match bit-for-bit.
    ///
    /// Admission and deadline rules are applied identically to
    /// [`Fleet::run`].
    pub fn run_sequential(&self, jobs: Vec<JobSpec>) -> FleetReport {
        let offered = jobs.len();
        let capacity = self.config.queue_capacity;
        let _batch_span =
            alrescha_obs::span!(self.telemetry, format!("fleet:sequential:{offered}"));
        let submitted = Instant::now();
        let deadline = self.config.deadline.map(|d| submitted + d);
        let mut records = Vec::with_capacity(offered);
        for (i, spec) in jobs.iter().enumerate() {
            if i >= capacity {
                records.push(JobRecord::rejected(
                    i,
                    spec.kernel.name(),
                    CoreError::QueueFull {
                        capacity,
                        offered,
                        retry_after: self.config.retry_after(i, capacity),
                    },
                ));
                continue;
            }
            let mut station = WorkerStation::new(0);
            station.caching = false;
            let queue_wait = submitted.elapsed();
            records.push(self.execute(&mut station, i, spec, queue_wait, deadline));
        }
        let stats = finish_stats(&records, offered, 1, submitted.elapsed(), 0, 0, 0, 0);
        self.publish_batch(&stats);
        FleetReport {
            jobs: records,
            stats,
        }
    }

    /// Runs one job on a worker's accelerator, converting (or fetching)
    /// programs as needed.
    fn execute(
        &self,
        station: &mut WorkerStation,
        index: usize,
        spec: &JobSpec,
        queue_wait: Duration,
        deadline: Option<Instant>,
    ) -> JobRecord {
        let started = Instant::now();
        let kernel = spec.kernel.name();
        let caching = station.caching;
        let mut cache_hit = true;
        let _job_span = if spec.trace_id != 0 {
            alrescha_obs::span!(
                self.telemetry,
                format!("trace:{:016x}:job:{index}:{kernel}", spec.trace_id)
            )
        } else {
            alrescha_obs::span!(self.telemetry, format!("job:{index}:{kernel}"))
        };
        let result = (|| -> Result<JobOutput> {
            let budget = effective_budget(spec, &self.config, deadline)?;
            let acc = station.accelerator(&spec.config);
            acc.set_telemetry(self.telemetry.clone());
            let mut convert = |acc: &mut Alrescha, kind: KernelType| {
                let prog = if caching {
                    let (prog, hit) =
                        self.cache
                            .get_or_convert(acc, kind, &spec.matrix, self.preflight.as_ref())?;
                    cache_hit &= hit;
                    (*prog).clone()
                } else {
                    cache_hit = false;
                    let prog = acc.program(kind, &spec.matrix)?;
                    if let Some(hook) = &self.preflight {
                        hook(&prog, acc.config())
                            .map_err(|message| CoreError::Preflight { message })?;
                    }
                    prog
                };
                if let Some(hook) = &self.admission {
                    hook(&prog, acc.config(), &budget)
                        .map_err(|message| CoreError::Admission { message })?;
                }
                Ok::<ProgrammedKernel, CoreError>(prog)
            };
            match &spec.kernel {
                JobKernel::SpMv { x } => {
                    let prog = convert(acc, KernelType::SpMv)?;
                    arm(acc, spec, budget, self.config.breaker);
                    let (y, report) = acc.spmv(&prog, x)?;
                    Ok(JobOutput::SpMv { y, report })
                }
                JobKernel::SymGs { b, x0 } => {
                    let prog = convert(acc, KernelType::SymGs)?;
                    arm(acc, spec, budget, self.config.breaker);
                    let mut x = x0.clone();
                    let report = acc.symgs(&prog, b, &mut x)?;
                    Ok(JobOutput::SymGs { x, report })
                }
                JobKernel::Pcg { b, opts } => {
                    let spmv_prog = convert(acc, KernelType::SpMv)?;
                    let symgs_prog = convert(acc, KernelType::SymGs)?;
                    let solver = AcceleratedPcg::from_programs(spmv_prog, symgs_prog)?;
                    arm(acc, spec, budget, self.config.breaker);
                    let journaled = spec.checkpoint_every > 0 || spec.resume_from.is_some();
                    let outcome = if journaled {
                        let job_id = spec.id.unwrap_or(index as u64);
                        let hook = self.checkpoint_hook.as_ref();
                        let mut sink = |cp: SolverCheckpoint| {
                            if let Some(hook) = hook {
                                hook(job_id, &cp);
                            }
                        };
                        solver.solve_journaled(
                            acc,
                            b,
                            opts,
                            spec.checkpoint_every,
                            &mut sink,
                            spec.resume_from.as_ref(),
                        )?
                    } else {
                        solver.solve(acc, b, opts)?
                    };
                    Ok(JobOutput::Pcg { outcome })
                }
            }
        })();
        let run_time = started.elapsed();
        if let Some(tele) = &self.telemetry {
            let m = tele.metrics();
            m.histogram(
                "alrescha_fleet_queue_wait_us",
                alrescha_obs::MICROS_BUCKETS,
                false,
                "time between batch submission and job dequeue",
            )
            .observe(queue_wait.as_micros().min(u128::from(u64::MAX)) as u64);
            m.histogram(
                "alrescha_fleet_run_time_us",
                alrescha_obs::MICROS_BUCKETS,
                false,
                "time spent executing a job (programming + device run)",
            )
            .observe(run_time.as_micros().min(u128::from(u64::MAX)) as u64);
        }
        JobRecord {
            job: index,
            kernel,
            worker: station.worker,
            cache_hit: cache_hit && result.is_ok(),
            queue_wait,
            run_time,
            result,
        }
    }
    /// A long-lived execution seat for one service worker thread: wraps a
    /// worker station so a daemon can run jobs one at a time while still
    /// sharing the fleet's conversion cache, preflight hook, checkpoint
    /// hook, and telemetry. `worker` labels the seat in job records.
    pub fn station(&self, worker: usize) -> Station {
        Station(WorkerStation::new(worker))
    }

    /// Runs one job on a [`Station`], bypassing batch admission (the
    /// caller — typically a persistent service — has already admitted it).
    /// Results are bit-identical to the same spec run via [`Fleet::run`].
    pub fn execute_on(
        &self,
        station: &mut Station,
        index: usize,
        spec: &JobSpec,
        queue_wait: Duration,
    ) -> JobRecord {
        self.execute(&mut station.0, index, spec, queue_wait, None)
    }
}

/// A persistent per-thread execution seat handed out by [`Fleet::station`].
pub struct Station(WorkerStation);

impl fmt::Debug for Station {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Station")
            .field("worker", &self.0.worker)
            .field("rebuilds", &self.0.rebuilds)
            .field("reuses", &self.0.reuses)
            .finish()
    }
}

/// One worker's long-lived state: its accelerator, recycled between jobs
/// and rebuilt only when a job carries a different [`SimConfig`].
struct WorkerStation {
    worker: usize,
    acc: Option<Alrescha>,
    caching: bool,
    rebuilds: u64,
    reuses: u64,
}

impl WorkerStation {
    fn new(worker: usize) -> Self {
        WorkerStation {
            worker,
            acc: None,
            caching: true,
            rebuilds: 0,
            reuses: 0,
        }
    }

    /// The worker's accelerator, reset for a new job; rebuilt when the
    /// job's configuration differs from the current one.
    fn accelerator(&mut self, config: &SimConfig) -> &mut Alrescha {
        let rebuild = match &self.acc {
            Some(acc) => acc.config() != config,
            None => true,
        };
        if rebuild {
            self.rebuilds += 1;
            self.acc = Some(Alrescha::new(config.clone()));
        } else {
            self.reuses += 1;
            if let Some(acc) = self.acc.as_mut() {
                acc.reset();
            }
        }
        // The line above guarantees presence; avoid unwrap under the
        // crate-wide unwrap ban by inserting on the (unreachable) None arm.
        self.acc
            .get_or_insert_with(|| Alrescha::new(config.clone()))
    }
}

/// Resolves the budget a job runs under: its own (or the fleet default),
/// tightened by the remaining batch deadline. A deadline already in the
/// past fails the job with [`SimError::DeadlineExceeded`] before any
/// device work.
fn effective_budget(
    spec: &JobSpec,
    config: &FleetConfig,
    deadline: Option<Instant>,
) -> Result<ExecBudget> {
    let mut budget = spec.budget.unwrap_or(config.default_budget);
    if let Some(deadline) = deadline {
        let now = Instant::now();
        if now >= deadline {
            return Err(CoreError::Sim(SimError::DeadlineExceeded {
                budget: "fleet deadline",
                cycle: 0,
            }));
        }
        let remaining = deadline - now;
        budget.max_wall = Some(match budget.max_wall {
            Some(own) => own.min(remaining),
            None => remaining,
        });
    }
    Ok(budget)
}

/// Arms per-job runtime state on a (fresh or reset) accelerator.
fn arm(acc: &mut Alrescha, spec: &JobSpec, budget: ExecBudget, breaker: Option<BreakerConfig>) {
    acc.set_fault_plan(spec.fault_plan.clone());
    acc.set_recovery_policy(spec.recovery);
    acc.set_budget(budget);
    acc.set_circuit_breaker(breaker);
    acc.set_cpu_only(spec.cpu_only);
}

#[allow(clippy::too_many_arguments)]
fn finish_stats(
    records: &[JobRecord],
    offered: usize,
    workers: usize,
    wall_time: Duration,
    cache_hits: u64,
    cache_misses: u64,
    engine_rebuilds: u64,
    engine_reuses: u64,
) -> FleetStats {
    let mut stats = FleetStats {
        jobs: offered,
        workers,
        wall_time,
        cache_hits,
        cache_misses,
        engine_rebuilds,
        engine_reuses,
        ..FleetStats::default()
    };
    let mut wait_total = Duration::ZERO;
    let mut executed = 0u32;
    for r in records {
        match &r.result {
            Ok(out) => {
                stats.completed += 1;
                stats.total_device_cycles += out.report().cycles;
            }
            Err(CoreError::QueueFull { .. }) => {
                stats.rejected += 1;
                continue;
            }
            Err(_) => stats.failed += 1,
        }
        executed += 1;
        wait_total += r.queue_wait;
        stats.queue_wait_max = stats.queue_wait_max.max(r.queue_wait);
    }
    if executed > 0 {
        stats.queue_wait_mean = wait_total / executed;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use alrescha_sparse::gen;

    fn spmv_jobs(n_jobs: usize, grid: usize) -> Vec<JobSpec> {
        let a = gen::stencil27(grid);
        let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 7) as f64).collect();
        (0..n_jobs)
            .map(|_| JobSpec::new(a.clone(), JobKernel::SpMv { x: x.clone() }))
            .collect()
    }

    #[test]
    fn repeated_matrix_hits_the_cache() {
        let fleet = Fleet::new(FleetConfig::default().with_workers(2));
        let report = fleet.run(spmv_jobs(6, 3));
        assert_eq!(report.stats.completed, 6);
        assert_eq!(report.stats.cache_misses, 1);
        assert_eq!(report.stats.cache_hits, 5);
        assert_eq!(report.jobs.iter().filter(|r| r.cache_hit).count(), 5);
        assert_eq!(fleet.cached_programs(), 1);
    }

    #[test]
    fn batch_matches_sequential_bitwise() {
        let a = gen::stencil27(3);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let mut jobs = spmv_jobs(3, 3);
        jobs.push(JobSpec::new(
            a.clone(),
            JobKernel::SymGs {
                b: b.clone(),
                x0: vec![0.0; n],
            },
        ));
        jobs.push(JobSpec::new(
            a,
            JobKernel::Pcg {
                b,
                opts: SolverOptions {
                    tol: 1e-8,
                    max_iters: 50,
                },
            },
        ));

        let fleet = Fleet::new(FleetConfig::default().with_workers(3));
        let batch = fleet.run(jobs.clone());
        let sequential = Fleet::new(FleetConfig::default()).run_sequential(jobs);
        assert_eq!(batch.jobs.len(), sequential.jobs.len());
        for (b_rec, s_rec) in batch.jobs.iter().zip(&sequential.jobs) {
            assert_eq!(b_rec.job, s_rec.job);
            let (b_out, s_out) = match (&b_rec.result, &s_rec.result) {
                (Ok(b), Ok(s)) => (b, s),
                other => panic!("job {} diverged: {other:?}", b_rec.job),
            };
            assert_eq!(
                b_out.fingerprint(),
                s_out.fingerprint(),
                "job {} not bit-identical",
                b_rec.job
            );
        }
    }

    #[test]
    fn per_job_fault_plans_stay_isolated() {
        // Same matrix, different fault plans: each job's injector cursor is
        // private, so a faulty job does not perturb a clean one.
        let a = gen::stencil27(3);
        let x = vec![1.0; a.cols()];
        let clean = JobSpec::new(a.clone(), JobKernel::SpMv { x: x.clone() });
        let faulty = JobSpec::new(a, JobKernel::SpMv { x })
            .with_fault_plan(FaultPlan::inert(11).with_fcu_tree_rate(1.0))
            .with_recovery(RecoveryPolicy::default());
        let jobs = vec![clean.clone(), faulty, clean];

        let fleet = Fleet::new(FleetConfig::default().with_workers(2));
        let batch = fleet.run(jobs.clone());
        let sequential = Fleet::new(FleetConfig::default()).run_sequential(jobs);
        for (b_rec, s_rec) in batch.jobs.iter().zip(&sequential.jobs) {
            match (&b_rec.result, &s_rec.result) {
                (Ok(b), Ok(s)) => assert_eq!(b.fingerprint(), s.fingerprint()),
                (Err(b), Err(s)) => assert_eq!(b, s),
                other => panic!("job {} diverged: {other:?}", b_rec.job),
            }
        }
        // Jobs 0 and 2 are identical clean runs: bit-identical outputs.
        let f0 = batch.jobs[0].result.as_ref().map(JobOutput::fingerprint);
        let f2 = batch.jobs[2].result.as_ref().map(JobOutput::fingerprint);
        assert_eq!(f0.ok(), f2.ok());
    }

    #[test]
    fn admission_rejects_past_capacity() {
        let fleet = Fleet::new(FleetConfig::default().with_workers(1).with_queue_capacity(2));
        let hint = fleet.config().retry_after_hint;
        let report = fleet.run(spmv_jobs(4, 2));
        assert_eq!(report.stats.completed, 2);
        assert_eq!(report.stats.rejected, 2);
        // The backpressure hint ramps linearly with distance past capacity,
        // independent of worker count or timing.
        match (&report.jobs[2].result, &report.jobs[3].result) {
            (
                Err(CoreError::QueueFull {
                    capacity: 2,
                    offered: 4,
                    retry_after: first,
                }),
                Err(CoreError::QueueFull {
                    capacity: 2,
                    offered: 4,
                    retry_after: second,
                }),
            ) => {
                assert_eq!(*first, hint);
                assert_eq!(*second, hint * 2);
            }
            other => panic!("expected two QueueFull rejections, got {other:?}"),
        }
        assert_eq!(report.jobs[3].worker, usize::MAX);
    }

    #[test]
    fn journaled_pcg_emits_checkpoints_and_resumes_bit_identically() {
        let a = gen::stencil27(3);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let opts = SolverOptions {
            tol: 1e-10,
            max_iters: 60,
        };
        let base = JobSpec::new(a, JobKernel::Pcg { b, opts });

        // Uninterrupted journaled run: collect every checkpoint.
        let taken: Arc<Mutex<Vec<(u64, SolverCheckpoint)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&taken);
        let hook: CheckpointHook = Arc::new(move |id, cp| {
            lock(&sink).push((id, cp.clone()));
        });
        let fleet = Fleet::new(FleetConfig::default().with_workers(1)).with_checkpoint_hook(hook);
        let full = fleet.run(vec![base.clone().with_id(42).with_checkpoint_every(3)]);
        let full_out = full.jobs[0]
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("journaled solve failed: {e}"));
        let checkpoints = lock(&taken).clone();
        assert!(
            !checkpoints.is_empty(),
            "expected checkpoints every 3 iterations"
        );
        assert!(checkpoints.iter().all(|(id, _)| *id == 42));

        // Resume from a mid-solve checkpoint: the solution fingerprint
        // (resume-invariant fields) must match the uninterrupted run.
        let (_, mid) = checkpoints[checkpoints.len() / 2].clone();
        let resumed = fleet.run(vec![base.with_resume_from(mid)]);
        let resumed_out = resumed.jobs[0]
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("resumed solve failed: {e}"));
        assert_eq!(
            full_out.solution_fingerprint(),
            resumed_out.solution_fingerprint()
        );
        // The full fingerprint differs: the resumed report only covers the
        // tail iterations — exactly why solution_fingerprint exists.
        assert_ne!(full_out.fingerprint(), resumed_out.fingerprint());
    }

    #[test]
    fn station_execution_matches_batch_bitwise() {
        let jobs = spmv_jobs(3, 3);
        let fleet = Fleet::new(FleetConfig::default().with_workers(1));
        let batch = fleet.run(jobs.clone());
        let service = Fleet::new(FleetConfig::default());
        let mut station = service.station(0);
        for (i, spec) in jobs.iter().enumerate() {
            let rec = service.execute_on(&mut station, i, spec, Duration::ZERO);
            let (b_out, s_out) = match (&batch.jobs[i].result, &rec.result) {
                (Ok(b), Ok(s)) => (b, s),
                other => panic!("job {i} diverged: {other:?}"),
            };
            assert_eq!(b_out.fingerprint(), s_out.fingerprint());
        }
    }

    #[test]
    fn cpu_only_job_matches_device_solution() {
        // Host and device agree to rounding (the accumulation order
        // differs), and the cpu-only report shows no device activity.
        let jobs = spmv_jobs(1, 3);
        let device = Fleet::new(FleetConfig::default().with_workers(1)).run(jobs.clone());
        let cpu_jobs: Vec<JobSpec> = jobs.into_iter().map(|j| j.with_cpu_only(true)).collect();
        let cpu = Fleet::new(FleetConfig::default().with_workers(1)).run(cpu_jobs);
        let (d, c) = match (&device.jobs[0].result, &cpu.jobs[0].result) {
            (Ok(d), Ok(c)) => (d, c),
            other => panic!("diverged: {other:?}"),
        };
        assert!(alrescha_sparse::approx_eq(d.values(), c.values(), 1e-12));
        assert_eq!(c.report().cycles, 0);
        assert_eq!(c.report().faults.degraded, 0);
    }

    #[test]
    fn expired_deadline_fails_jobs_in_band() {
        let fleet = Fleet::new(
            FleetConfig::default()
                .with_workers(1)
                .with_deadline(Duration::ZERO),
        );
        let report = fleet.run(spmv_jobs(2, 2));
        assert_eq!(report.stats.failed, 2);
        for rec in &report.jobs {
            assert!(matches!(
                rec.result,
                Err(CoreError::Sim(SimError::DeadlineExceeded { .. }))
            ));
        }
    }

    #[test]
    fn preflight_rejection_fails_the_job_once() {
        let hook: PreflightHook = Arc::new(|prog, _config| {
            Err(format!("synthetic rejection of {:?}", prog.kernel()))
        });
        let fleet = Fleet::new(FleetConfig::default().with_workers(2)).with_preflight(hook);
        let report = fleet.run(spmv_jobs(3, 2));
        assert_eq!(report.stats.failed, 3);
        for rec in &report.jobs {
            assert!(matches!(rec.result, Err(CoreError::Preflight { .. })));
        }
        // Rejected programs are never cached.
        assert_eq!(fleet.cached_programs(), 0);
    }

    #[test]
    fn config_change_rebuilds_the_worker_engine() {
        let a = gen::stencil27(2);
        let x = vec![1.0; a.cols()];
        let jobs = vec![
            JobSpec::new(a.clone(), JobKernel::SpMv { x: x.clone() }),
            JobSpec::new(a.clone(), JobKernel::SpMv { x: x.clone() })
                .with_config(SimConfig::paper().with_omega(4)),
            JobSpec::new(a, JobKernel::SpMv { x }),
        ];
        let fleet = Fleet::new(FleetConfig::default().with_workers(1));
        let report = fleet.run(jobs);
        assert_eq!(report.stats.completed, 3);
        // ω=8, then ω=4, then ω=8 again: three rebuilds on one worker.
        assert_eq!(report.stats.engine_rebuilds, 3);
        assert_eq!(report.stats.engine_reuses, 0);
        // Distinct ω values convert separately.
        assert_eq!(report.stats.cache_misses, 2);
        assert_eq!(report.stats.cache_hits, 1);
    }

    #[test]
    fn fleet_report_json_is_balanced_and_stable() {
        let fleet = Fleet::new(FleetConfig::default().with_workers(1));
        let report = fleet.run(spmv_jobs(2, 2));
        let json = report.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        for key in [
            "\"stats\":",
            "\"jobs\":",
            "\"cache_hits\":",
            "\"fingerprint\":",
            "\"queue_wait_us\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains(",}"));
    }

    #[test]
    fn matrix_fingerprint_separates_value_bits() {
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 1.0);
        let mut b = Coo::new(2, 2);
        b.push(0, 0, -1.0);
        assert_ne!(matrix_fingerprint(&a), matrix_fingerprint(&b));
        assert_eq!(matrix_fingerprint(&a), matrix_fingerprint(&a.clone()));
    }
}
