//! The accelerator facade: program once, run kernels, read reports.
//!
//! Mirrors the paper's host/accelerator split (Figure 7): the host converts
//! a sparse kernel into dense data paths and writes the configuration table
//! through the *program interface* ([`Alrescha::program`]); runs then stream
//! data through the *data interface* and return an
//! [`alrescha_sim::ExecutionReport`].

use alrescha_sim::{
    BreakerStats, Engine, ExecBudget, ExecutionReport, FaultCounters, FaultPlan,
    InjectorSnapshot, PageRankConfig, RecoveryPolicy, SimConfig, SimError,
};
use alrescha_sparse::{Coo, Csr, MetaData};

use crate::breaker::{BackendChoice, BreakerConfig, BreakerState, CircuitBreaker};
use crate::convert::{convert, ConfigTable, KernelType};
use crate::{CoreError, Result};

/// A kernel programmed onto the accelerator: the reformatted matrix plus
/// its configuration table.
///
/// The payloads live behind [`std::sync::Arc`], so cloning a program —
/// e.g. handing a cached conversion to many concurrent jobs in the batch
/// runtime — is a reference-count bump, not a copy of the matrix.
#[derive(Debug, Clone)]
pub struct ProgrammedKernel {
    kernel: KernelType,
    alf: std::sync::Arc<alrescha_sparse::Alf>,
    table: std::sync::Arc<ConfigTable>,
    /// Out-degrees of the original adjacency (graph kernels only).
    out_degrees: Option<std::sync::Arc<Vec<usize>>>,
}

impl ProgrammedKernel {
    fn build(
        kernel: KernelType,
        alf: alrescha_sparse::Alf,
        table: ConfigTable,
        out_degrees: Option<Vec<usize>>,
    ) -> Self {
        ProgrammedKernel {
            kernel,
            alf: std::sync::Arc::new(alf),
            table: std::sync::Arc::new(table),
            out_degrees: out_degrees.map(std::sync::Arc::new),
        }
    }

    /// The kernel type this program encodes.
    pub fn kernel(&self) -> KernelType {
        self.kernel
    }

    /// The locally-dense matrix as the accelerator streams it.
    pub fn matrix(&self) -> &alrescha_sparse::Alf {
        &self.alf
    }

    /// The configuration table the host wrote.
    pub fn table(&self) -> &ConfigTable {
        &self.table
    }
}

/// The ALRESCHA accelerator.
///
/// # Example
///
/// ```
/// use alrescha::{Alrescha, KernelType};
/// use alrescha_sparse::gen;
///
/// let mut acc = Alrescha::with_paper_config();
/// let coo = gen::stencil27(2);
/// let prog = acc.program(KernelType::SpMv, &coo)?;
/// let (y, report) = acc.spmv(&prog, &vec![1.0; coo.cols()])?;
/// assert_eq!(y.len(), coo.rows());
/// assert!(report.bandwidth_utilization > 0.0);
/// # Ok::<(), alrescha::CoreError>(())
/// ```
#[derive(Debug)]
pub struct Alrescha {
    engine: Engine,
    breaker: Option<CircuitBreaker>,
    cpu_only: bool,
}

impl Alrescha {
    /// Creates an accelerator with a custom configuration.
    pub fn new(config: SimConfig) -> Self {
        Alrescha {
            engine: Engine::new(config),
            breaker: None,
            cpu_only: false,
        }
    }

    /// Creates an accelerator with the paper's Table 5 configuration.
    pub fn with_paper_config() -> Self {
        Alrescha::new(SimConfig::paper())
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        self.engine.config()
    }

    /// Returns the accelerator to its just-built state for the same
    /// configuration: the engine's lifetime state (configured data path,
    /// energy counters, cache contents, trace, fault plan, recovery policy,
    /// budget) is cleared and any circuit breaker is disarmed.
    ///
    /// After `reset()`, runs are bit-identical to those of a freshly
    /// constructed [`Alrescha`] with the same [`SimConfig`] — the batch
    /// runtime relies on this to reuse one accelerator per worker across
    /// jobs without cross-job contamination.
    pub fn reset(&mut self) {
        self.engine.reset();
        self.breaker = None;
        self.cpu_only = false;
    }

    /// Pins (or, with `false`, unpins) every guarded operation
    /// ([`Alrescha::spmv`], [`Alrescha::symgs`], [`Alrescha::symgs_forward`])
    /// to the host reference backend: no device cycles are simulated, no
    /// faults are injected, and the run is *not* counted as degraded — this
    /// is the planned CPU mode a persistent service enters while the device
    /// breaker is open, not a failure path. Cleared by [`Alrescha::reset`].
    pub fn set_cpu_only(&mut self, cpu_only: bool) {
        self.cpu_only = cpu_only;
    }

    /// Whether guarded operations are pinned to the host backend.
    pub fn cpu_only(&self) -> bool {
        self.cpu_only
    }

    /// Arms (or, with `None`, disarms) a deterministic fault-injection plan.
    ///
    /// With no plan armed the engine takes its historical code path and
    /// results are bit-identical to an un-instrumented accelerator.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.engine.set_fault_plan(plan);
    }

    /// Sets the policy applied when a detected fault survives in-run
    /// recovery: fail fast, retry from the block checkpoint, or degrade the
    /// whole kernel to the host reference implementation.
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.engine.set_recovery_policy(policy);
    }

    /// The active recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.engine.recovery_policy()
    }

    /// Arms (or, with `None`, disarms) a circuit breaker over the
    /// accelerator backend for [`Alrescha::spmv`], [`Alrescha::symgs`], and
    /// [`Alrescha::symgs_forward`].
    ///
    /// With a breaker armed, an unrecovered device fault is retried with
    /// exponential backoff (up to [`BreakerConfig::max_attempts`] attempts),
    /// then served by the host kernel; after
    /// [`BreakerConfig::failure_threshold`] consecutive failed operations
    /// the breaker opens and routes work straight to the CPU until a
    /// half-open probe succeeds. This supersedes the
    /// [`RecoveryPolicy::degrades_to_cpu`] fallback for the guarded
    /// operations. Wasted device work and backoff waits are charged to the
    /// report's recovery bucket; breaker transitions appear in
    /// [`ExecutionReport::breaker`](alrescha_sim::ExecutionReport).
    pub fn set_circuit_breaker(&mut self, config: Option<BreakerConfig>) {
        self.breaker = config.map(CircuitBreaker::new);
    }

    /// Current breaker state, when one is armed.
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.breaker.as_ref().map(CircuitBreaker::state)
    }

    /// Cumulative breaker statistics since the breaker was armed.
    pub fn breaker_stats(&self) -> BreakerStats {
        self.breaker
            .as_ref()
            .map(CircuitBreaker::stats)
            .unwrap_or_default()
    }

    /// Arms cycle/wall-clock limits and the progress-watchdog window for
    /// all subsequent device runs.
    pub fn set_budget(&mut self, budget: ExecBudget) {
        self.engine.set_budget(budget);
    }

    /// The active execution budget.
    pub fn budget(&self) -> ExecBudget {
        self.engine.budget()
    }

    /// Attaches (or, with `None`, detaches) an alobs telemetry sink: host
    /// spans around conversion, device timelines and metric deltas for
    /// every kernel run, and degraded/breaker accounting. With telemetry
    /// attached and enabled, results stay bit-identical — only observation
    /// is added.
    pub fn set_telemetry(&mut self, tele: Option<std::sync::Arc<alrescha_obs::Telemetry>>) {
        self.engine.set_telemetry(tele);
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&std::sync::Arc<alrescha_obs::Telemetry>> {
        self.engine.telemetry()
    }

    /// Records a solver checkpoint serialization (trace event + counters).
    /// Called by the PCG driver after encoding a checkpoint.
    pub fn note_checkpoint_write(&mut self, bytes: u64) {
        self.engine.note_checkpoint_write(bytes);
    }

    /// Publishes a guarded operation's breaker delta to the metrics
    /// registry (no-op without telemetry).
    fn note_breaker(&self, delta: &BreakerStats) {
        let Some(tele) = self.engine.telemetry() else {
            return;
        };
        let m = tele.metrics();
        m.counter(
            "alrescha_breaker_trips_total",
            true,
            "closed-to-open breaker transitions",
        )
        .add(delta.trips);
        m.counter(
            "alrescha_breaker_half_open_probes_total",
            true,
            "half-open probe attempts after cooldown",
        )
        .add(delta.half_open_probes);
        m.counter(
            "alrescha_breaker_cpu_fallback_runs_total",
            true,
            "operations served by the CPU backend",
        )
        .add(delta.cpu_fallback_runs);
    }

    /// Captures the fault injector's cursor for a solver checkpoint
    /// (`None` when no fault plan is armed).
    pub fn fault_snapshot(&self) -> Option<InjectorSnapshot> {
        self.engine.fault_snapshot()
    }

    /// Restores an injector cursor captured by [`Alrescha::fault_snapshot`];
    /// a no-op when no fault plan is armed.
    pub fn restore_fault_snapshot(&mut self, snap: &InjectorSnapshot) {
        self.engine.restore_fault_snapshot(snap);
    }

    /// Cumulative fault counters since the plan was armed (all zero when no
    /// plan is armed). Per-run deltas appear in each [`ExecutionReport`].
    pub fn fault_counters(&self) -> FaultCounters {
        self.engine
            .fault_injector()
            .map(alrescha_sim::FaultInjector::counters)
            .unwrap_or_default()
    }

    /// Whether a failed device run should fall back to the host kernel.
    fn degrades_to_cpu(&self) -> bool {
        self.engine.fault_injector().is_some() && self.engine.recovery_policy().degrades_to_cpu()
    }

    /// Builds the report for a run completed on the host after the device
    /// gave up: the fault accounting of the failed attempts (relative to
    /// `base`), the degradation marker, and the device cycles wasted on
    /// those attempts (plus backoff waits) charged to the recovery bucket.
    fn degraded_report(
        &self,
        kernel: &'static str,
        base: &FaultCounters,
        wasted_cycles: u64,
    ) -> ExecutionReport {
        if let Some(inj) = self.engine.fault_injector() {
            inj.note_degraded();
        }
        let faults = self
            .engine
            .fault_injector()
            .map(|inj| inj.counters().delta(base))
            .unwrap_or_default();
        let mut report = ExecutionReport {
            kernel,
            cycles: 0,
            seconds: 0.0,
            bytes_streamed: 0,
            bandwidth_utilization: 0.0,
            cache_time_fraction: 0.0,
            energy: alrescha_sim::EnergyCounters::new(),
            reconfig: alrescha_sim::rcu::ReconfigStats::default(),
            cache: alrescha_sim::report::CacheStats::default(),
            datapaths: alrescha_sim::report::DataPathCounts::default(),
            breakdown: alrescha_sim::report::CycleBreakdown::default(),
            faults,
            breaker: BreakerStats::default(),
        };
        report.charge_recovery(wasted_cycles, self.engine.config());
        if let Some(tele) = self.engine.telemetry() {
            tele.instant(format!("degraded:{kernel}"));
            tele.metrics()
                .counter(
                    "alrescha_degraded_runs_total",
                    true,
                    "kernel runs completed on the host after the device gave up",
                )
                .inc();
        }
        report
    }

    /// Report for an operation served by the host because the accelerator
    /// is pinned to CPU-only mode: zero device cycles and no fault,
    /// recovery, or breaker activity — a planned mode, not a degradation.
    fn cpu_only_report(&self, kernel: &'static str) -> ExecutionReport {
        if let Some(tele) = self.engine.telemetry() {
            tele.instant(format!("cpu-only:{kernel}"));
            tele.metrics()
                .counter(
                    "alrescha_cpu_only_runs_total",
                    true,
                    "kernel runs served by the host under a cpu-only pin",
                )
                .inc();
        }
        ExecutionReport {
            kernel,
            cycles: 0,
            seconds: 0.0,
            bytes_streamed: 0,
            bandwidth_utilization: 0.0,
            cache_time_fraction: 0.0,
            energy: alrescha_sim::EnergyCounters::new(),
            reconfig: alrescha_sim::rcu::ReconfigStats::default(),
            cache: alrescha_sim::report::CacheStats::default(),
            datapaths: alrescha_sim::report::DataPathCounts::default(),
            breakdown: alrescha_sim::report::CycleBreakdown::default(),
            faults: FaultCounters::default(),
            breaker: BreakerStats::default(),
        }
    }

    /// Programs a kernel: runs Algorithm 1 and loads the result (the
    /// one-time host-side preprocessing of §4).
    ///
    /// Graph kernels ([`KernelType::Bfs`], [`KernelType::Sssp`],
    /// [`KernelType::PageRank`]) are programmed on the *transposed*
    /// adjacency so each block row gathers a destination chunk's incoming
    /// edges, and the out-degree vector is captured for PageRank.
    ///
    /// # Errors
    ///
    /// Propagates conversion failures ([`CoreError::Sparse`]).
    pub fn program(&mut self, kernel: KernelType, a: &Coo) -> Result<ProgrammedKernel> {
        let tele = self.engine.telemetry().cloned();
        let _convert_span = alrescha_obs::span!(tele, format!("convert:{kernel:?}"));
        let prog = self.program_inner(kernel, a)?;
        if let Some(t) = &tele {
            let m = t.metrics();
            m.counter(
                "alrescha_convert_total",
                true,
                "format conversions (Algorithm 1)",
            )
            .inc();
            m.counter(
                "alrescha_convert_blocks_total",
                true,
                "locally-dense blocks produced by conversion",
            )
            .add(prog.matrix().blocks().len() as u64);
            m.counter(
                "alrescha_convert_rows_total",
                true,
                "matrix rows converted",
            )
            .add(prog.matrix().rows() as u64);
        }
        Ok(prog)
    }

    fn program_inner(&mut self, kernel: KernelType, a: &Coo) -> Result<ProgrammedKernel> {
        match kernel {
            KernelType::ConnectedComponents => {
                // Label propagation needs both edge directions: symmetrize,
                // then transpose like the other graph kernels.
                let mut sym = a.clone();
                for &(u, v, w) in a.entries() {
                    sym.push(v, u, w);
                }
                let (alf, table) =
                    convert(kernel, &sym.transpose().compress(), self.config().omega)?;
                Ok(ProgrammedKernel::build(kernel, alf, table, None))
            }
            KernelType::Bfs | KernelType::Sssp | KernelType::PageRank => {
                let csr = Csr::from_coo(a);
                let out_degrees = (0..csr.rows()).map(|u| csr.row_nnz(u)).collect();
                let (alf, table) = convert(kernel, &a.transpose(), self.config().omega)?;
                Ok(ProgrammedKernel::build(kernel, alf, table, Some(out_degrees)))
            }
            _ => {
                let (alf, table) = convert(kernel, a, self.config().omega)?;
                Ok(ProgrammedKernel::build(kernel, alf, table, None))
            }
        }
    }

    /// Runs SpMV: `y = A·x`.
    ///
    /// With a circuit breaker armed ([`Alrescha::set_circuit_breaker`]) the
    /// breaker governs failover. Otherwise, under a [`RecoveryPolicy`] that
    /// degrades to the CPU, an unrecovered fault falls back to the host
    /// reference kernel; the returned report then carries the wasted device
    /// cycles in its recovery bucket and `faults.degraded == 1`.
    ///
    /// # Errors
    ///
    /// [`CoreError::WrongKernel`] if `prog` was not programmed for SpMV;
    /// simulator errors otherwise.
    pub fn spmv(
        &mut self,
        prog: &ProgrammedKernel,
        x: &[f64],
    ) -> Result<(Vec<f64>, ExecutionReport)> {
        expect_kernel(prog, KernelType::SpMv)?;
        if self.cpu_only {
            let csr = Csr::from_coo(&prog.alf.to_coo());
            let y = alrescha_kernels::spmv::spmv(&csr, x);
            return Ok((y, self.cpu_only_report("spmv")));
        }
        if let Some(mut breaker) = self.breaker.take() {
            let out = self.spmv_with_breaker(&mut breaker, prog, x);
            self.breaker = Some(breaker);
            return out;
        }
        let base = self.fault_counters();
        match self.engine.run_spmv(&prog.alf, x) {
            Err(SimError::FaultDetected { cycle, .. }) if self.degrades_to_cpu() => {
                let csr = Csr::from_coo(&prog.alf.to_coo());
                let y = alrescha_kernels::spmv::spmv(&csr, x);
                Ok((y, self.degraded_report("spmv", &base, cycle)))
            }
            run => Ok(run?),
        }
    }

    fn spmv_with_breaker(
        &mut self,
        breaker: &mut CircuitBreaker,
        prog: &ProgrammedKernel,
        x: &[f64],
    ) -> Result<(Vec<f64>, ExecutionReport)> {
        let base = self.fault_counters();
        let stats_base = breaker.stats();
        let attempts = attempt_budget(breaker.gate());
        let mut wasted = 0u64;
        for attempt in 0..attempts {
            match self.engine.run_spmv(&prog.alf, x) {
                Ok((y, mut report)) => {
                    breaker.record_success();
                    report.charge_recovery(wasted, self.engine.config());
                    report.breaker = breaker_delta(breaker.stats(), stats_base);
                    self.note_breaker(&report.breaker);
                    return Ok((y, report));
                }
                Err(SimError::FaultDetected { cycle, .. }) => {
                    wasted = wasted.saturating_add(cycle);
                    if attempt + 1 < attempts {
                        wasted = wasted.saturating_add(breaker.backoff_cycles(attempt));
                    }
                }
                Err(other) => return Err(other.into()),
            }
        }
        if attempts > 0 {
            breaker.record_failure();
        }
        let csr = Csr::from_coo(&prog.alf.to_coo());
        let y = alrescha_kernels::spmv::spmv(&csr, x);
        let mut report = self.degraded_report("spmv", &base, wasted);
        report.breaker = breaker_delta(breaker.stats(), stats_base);
        self.note_breaker(&report.breaker);
        Ok((y, report))
    }

    /// Runs one symmetric Gauss-Seidel application, updating `x` in place.
    ///
    /// Under a [`RecoveryPolicy`] that degrades to the CPU, an unrecovered
    /// fault restores `x` to its pre-call state and reruns the sweep with
    /// the host reference kernel (report as in [`Alrescha::spmv`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::WrongKernel`] if `prog` was not programmed for SymGS;
    /// simulator errors otherwise.
    pub fn symgs(
        &mut self,
        prog: &ProgrammedKernel,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<ExecutionReport> {
        expect_kernel(prog, KernelType::SymGs)?;
        if self.cpu_only {
            let csr = Csr::from_coo(&prog.alf.to_coo());
            alrescha_kernels::symgs::symgs(&csr, b, x)?;
            return Ok(self.cpu_only_report("symgs"));
        }
        if let Some(mut breaker) = self.breaker.take() {
            let out = self.symgs_with_breaker(&mut breaker, prog, b, x, false);
            self.breaker = Some(breaker);
            return out;
        }
        let snapshot = self.degrades_to_cpu().then(|| x.to_vec());
        let base = self.fault_counters();
        match self.engine.run_symgs(&prog.alf, b, x) {
            Err(SimError::FaultDetected { cycle, .. }) if snapshot.is_some() => {
                if let Some(saved) = snapshot {
                    x.copy_from_slice(&saved);
                }
                let csr = Csr::from_coo(&prog.alf.to_coo());
                alrescha_kernels::symgs::symgs(&csr, b, x)?;
                Ok(self.degraded_report("symgs", &base, cycle))
            }
            run => Ok(run?),
        }
    }

    fn symgs_with_breaker(
        &mut self,
        breaker: &mut CircuitBreaker,
        prog: &ProgrammedKernel,
        b: &[f64],
        x: &mut [f64],
        forward: bool,
    ) -> Result<ExecutionReport> {
        let base = self.fault_counters();
        let stats_base = breaker.stats();
        let saved = x.to_vec();
        let attempts = attempt_budget(breaker.gate());
        let mut wasted = 0u64;
        for attempt in 0..attempts {
            let run = if forward {
                self.engine.run_symgs_forward(&prog.alf, b, x)
            } else {
                self.engine.run_symgs(&prog.alf, b, x)
            };
            match run {
                Ok(mut report) => {
                    breaker.record_success();
                    report.charge_recovery(wasted, self.engine.config());
                    report.breaker = breaker_delta(breaker.stats(), stats_base);
                    self.note_breaker(&report.breaker);
                    return Ok(report);
                }
                Err(SimError::FaultDetected { cycle, .. }) => {
                    x.copy_from_slice(&saved);
                    wasted = wasted.saturating_add(cycle);
                    if attempt + 1 < attempts {
                        wasted = wasted.saturating_add(breaker.backoff_cycles(attempt));
                    }
                }
                Err(other) => return Err(other.into()),
            }
        }
        if attempts > 0 {
            breaker.record_failure();
        }
        x.copy_from_slice(&saved);
        let csr = Csr::from_coo(&prog.alf.to_coo());
        if forward {
            alrescha_kernels::symgs::forward_sweep(&csr, b, x)?;
        } else {
            alrescha_kernels::symgs::symgs(&csr, b, x)?;
        }
        let mut report = self.degraded_report("symgs", &base, wasted);
        report.breaker = breaker_delta(breaker.stats(), stats_base);
        self.note_breaker(&report.breaker);
        Ok(report)
    }

    /// Runs one forward Gauss-Seidel sweep, updating `x` in place.
    ///
    /// # Errors
    ///
    /// Same as [`Alrescha::symgs`] (including the degraded fallback).
    pub fn symgs_forward(
        &mut self,
        prog: &ProgrammedKernel,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<ExecutionReport> {
        expect_kernel(prog, KernelType::SymGs)?;
        if self.cpu_only {
            let csr = Csr::from_coo(&prog.alf.to_coo());
            alrescha_kernels::symgs::forward_sweep(&csr, b, x)?;
            return Ok(self.cpu_only_report("symgs"));
        }
        if let Some(mut breaker) = self.breaker.take() {
            let out = self.symgs_with_breaker(&mut breaker, prog, b, x, true);
            self.breaker = Some(breaker);
            return out;
        }
        let snapshot = self.degrades_to_cpu().then(|| x.to_vec());
        let base = self.fault_counters();
        match self.engine.run_symgs_forward(&prog.alf, b, x) {
            Err(SimError::FaultDetected { cycle, .. }) if snapshot.is_some() => {
                if let Some(saved) = snapshot {
                    x.copy_from_slice(&saved);
                }
                let csr = Csr::from_coo(&prog.alf.to_coo());
                alrescha_kernels::symgs::forward_sweep(&csr, b, x)?;
                Ok(self.degraded_report("symgs", &base, cycle))
            }
            run => Ok(run?),
        }
    }

    /// Runs BFS from `source`; returns hop levels (∞ where unreachable).
    ///
    /// # Errors
    ///
    /// [`CoreError::WrongKernel`] if `prog` was not programmed for BFS;
    /// simulator errors otherwise.
    pub fn bfs(
        &mut self,
        prog: &ProgrammedKernel,
        source: usize,
    ) -> Result<(Vec<f64>, ExecutionReport)> {
        expect_kernel(prog, KernelType::Bfs)?;
        Ok(self.engine.run_bfs(&prog.alf, source)?)
    }

    /// Runs SSSP from `source`; returns distances (∞ where unreachable).
    ///
    /// # Errors
    ///
    /// [`CoreError::WrongKernel`] if `prog` was not programmed for SSSP;
    /// simulator errors otherwise.
    pub fn sssp(
        &mut self,
        prog: &ProgrammedKernel,
        source: usize,
    ) -> Result<(Vec<f64>, ExecutionReport)> {
        expect_kernel(prog, KernelType::Sssp)?;
        Ok(self.engine.run_sssp(&prog.alf, source)?)
    }

    /// Runs PageRank to convergence; returns `(ranks, report)`.
    ///
    /// # Errors
    ///
    /// [`CoreError::WrongKernel`] if `prog` was not programmed for
    /// PageRank; simulator errors (including non-convergence) otherwise.
    pub fn pagerank(
        &mut self,
        prog: &ProgrammedKernel,
        opts: &PageRankConfig,
    ) -> Result<(Vec<f64>, ExecutionReport)> {
        expect_kernel(prog, KernelType::PageRank)?;
        let out_degrees = prog.out_degrees.as_ref().ok_or(CoreError::InvalidProgram {
            reason: "pagerank program lacks out-degrees",
        })?;
        Ok(self.engine.run_pagerank(&prog.alf, out_degrees, opts)?)
    }
}

impl Alrescha {
    /// Runs one symmetric SOR application on the device (`omega_relax = 1`
    /// is [`Alrescha::symgs`]), updating `x` in place.
    ///
    /// # Errors
    ///
    /// [`CoreError::WrongKernel`] if `prog` was not programmed for SymGS;
    /// simulator errors (including an out-of-range relaxation factor)
    /// otherwise.
    pub fn ssor(
        &mut self,
        prog: &ProgrammedKernel,
        b: &[f64],
        x: &mut [f64],
        omega_relax: f64,
    ) -> Result<ExecutionReport> {
        expect_kernel(prog, KernelType::SymGs)?;
        Ok(self.engine.run_ssor(&prog.alf, b, x, omega_relax)?)
    }

    /// Runs connected components over the undirected structure of the
    /// programmed adjacency; returns per-vertex component labels.
    ///
    /// # Errors
    ///
    /// [`CoreError::WrongKernel`] if `prog` was not programmed for
    /// connected components; simulator errors otherwise.
    pub fn connected_components(
        &mut self,
        prog: &ProgrammedKernel,
    ) -> Result<(Vec<usize>, ExecutionReport)> {
        expect_kernel(prog, KernelType::ConnectedComponents)?;
        Ok(self.engine.run_connected_components(&prog.alf)?)
    }
}

/// Device attempts granted by a routing decision (0 ⇒ serve from the CPU).
fn attempt_budget(choice: BackendChoice) -> u32 {
    match choice {
        BackendChoice::Cpu => 0,
        BackendChoice::Probe => 1,
        BackendChoice::Device { attempts } => attempts.max(1),
    }
}

/// Breaker-transition counts accrued since `base` (for per-run reports).
fn breaker_delta(now: BreakerStats, base: BreakerStats) -> BreakerStats {
    BreakerStats {
        trips: now.trips - base.trips,
        half_open_probes: now.half_open_probes - base.half_open_probes,
        cpu_fallback_runs: now.cpu_fallback_runs - base.cpu_fallback_runs,
    }
}

fn expect_kernel(prog: &ProgrammedKernel, want: KernelType) -> Result<()> {
    if prog.kernel == want {
        Ok(())
    } else {
        Err(CoreError::WrongKernel {
            programmed: prog.kernel,
            requested: want,
        })
    }
}

/// Bytes of runtime meta-data the accelerator streams per non-zero: always
/// zero — the point of the locally-dense format. Provided for symmetry with
/// the [`MetaData`] accounting of the classic formats.
pub fn runtime_meta_bytes_per_nnz(prog: &ProgrammedKernel) -> f64 {
    let _ = prog.alf.nnz();
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use alrescha_sparse::gen;

    #[test]
    fn program_and_run_spmv() {
        let mut acc = Alrescha::with_paper_config();
        let coo = gen::stencil27(3);
        let prog = acc.program(KernelType::SpMv, &coo).unwrap();
        let x: Vec<f64> = (0..coo.cols()).map(|i| i as f64).collect();
        let (y, report) = acc.spmv(&prog, &x).unwrap();
        let expect = alrescha_kernels::spmv::spmv(&Csr::from_coo(&coo), &x);
        assert!(alrescha_sparse::approx_eq(&y, &expect, 1e-12));
        assert_eq!(report.kernel, "spmv");
    }

    #[test]
    fn wrong_kernel_is_rejected() {
        let mut acc = Alrescha::with_paper_config();
        let coo = gen::stencil27(2);
        let prog = acc.program(KernelType::SpMv, &coo).unwrap();
        let mut x = vec![0.0; coo.cols()];
        let b = vec![1.0; coo.rows()];
        let err = acc.symgs(&prog, &b, &mut x).unwrap_err();
        assert!(matches!(err, CoreError::WrongKernel { .. }));
    }

    #[test]
    fn symgs_runs_and_reports_switches() {
        let mut acc = Alrescha::with_paper_config();
        let coo = gen::stencil27(3);
        let prog = acc.program(KernelType::SymGs, &coo).unwrap();
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let report = acc.symgs(&prog, &b, &mut x).unwrap();
        assert!(report.reconfig.switches > 0);
        assert!(report.datapaths.dsymgs_blocks > 0);
    }

    #[test]
    fn graph_program_transposes_and_runs() {
        let mut acc = Alrescha::with_paper_config();
        let g = gen::road_grid(5);
        let prog = acc.program(KernelType::Bfs, &g).unwrap();
        let (levels, _) = acc.bfs(&prog, 0).unwrap();
        let expect = alrescha_kernels::graph::bfs(&Csr::from_coo(&g), 0).unwrap();
        assert_eq!(levels, expect);
    }

    #[test]
    fn pagerank_driver_uses_out_degrees() {
        let mut acc = Alrescha::with_paper_config();
        let g = gen::GraphClass::Kronecker.generate(64, 3);
        let prog = acc.program(KernelType::PageRank, &g).unwrap();
        let (ranks, _) = acc.pagerank(&prog, &PageRankConfig::default()).unwrap();
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unrecovered_spmv_fault_degrades_to_cpu() {
        use alrescha_sim::{FaultPlan, RecoveryPolicy};
        let mut acc = Alrescha::with_paper_config();
        let coo = gen::stencil27(3);
        let prog = acc.program(KernelType::SpMv, &coo).unwrap();
        // Stuck-at faults survive retries by construction, so the device
        // must give up and fall back to the host kernel.
        acc.set_fault_plan(Some(FaultPlan::inert(42).with_memory_stuck_rate(1.0)));
        acc.set_recovery_policy(RecoveryPolicy::DegradeToCpu {
            max_retries: 2,
            backoff_cycles: 8,
        });
        let x = vec![1.0; coo.cols()];
        let (y, report) = acc.spmv(&prog, &x).unwrap();
        let expect = alrescha_kernels::spmv::spmv(&Csr::from_coo(&coo), &x);
        assert!(alrescha_sparse::approx_eq(&y, &expect, 1e-12));
        assert_eq!(report.faults.degraded, 1);
        assert!(report.faults.injected > 0);
        assert!(report.faults.detected > 0);
        assert!(report.faults.retries > 0);
        assert!(
            report.cycles > 0,
            "wasted device attempts are charged to the degraded report"
        );
        assert_eq!(
            report.breakdown.recovery_cycles, report.cycles,
            "all degraded-run cycles are recovery cycles"
        );
        assert_eq!(report.breakdown.total(), report.cycles);
    }

    #[test]
    fn unrecovered_symgs_fault_degrades_and_restores_x() {
        use alrescha_sim::{FaultPlan, RecoveryPolicy};
        let mut acc = Alrescha::with_paper_config();
        let coo = gen::stencil27(3);
        let prog = acc.program(KernelType::SymGs, &coo).unwrap();
        acc.set_fault_plan(Some(FaultPlan::inert(7).with_memory_stuck_rate(1.0)));
        acc.set_recovery_policy(RecoveryPolicy::DegradeToCpu {
            max_retries: 1,
            backoff_cycles: 4,
        });
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let report = acc.symgs(&prog, &b, &mut x).unwrap();
        assert_eq!(report.faults.degraded, 1);
        let mut x_ref = vec![0.0; coo.cols()];
        alrescha_kernels::symgs::symgs(&Csr::from_coo(&coo), &b, &mut x_ref).unwrap();
        assert!(
            alrescha_sparse::approx_eq(&x, &x_ref, 1e-12),
            "fallback must run from the pre-call state"
        );
    }

    #[test]
    fn fail_fast_policy_surfaces_the_fault() {
        use alrescha_sim::{FaultPlan, SimError};
        let mut acc = Alrescha::with_paper_config();
        let coo = gen::stencil27(3);
        let prog = acc.program(KernelType::SpMv, &coo).unwrap();
        acc.set_fault_plan(Some(FaultPlan::inert(42).with_memory_stuck_rate(1.0)));
        // Default policy is FailFast.
        let err = acc.spmv(&prog, &vec![1.0; coo.cols()]).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::Sim(SimError::FaultDetected { .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn no_runtime_metadata() {
        let mut acc = Alrescha::with_paper_config();
        let prog = acc.program(KernelType::SpMv, &gen::stencil27(2)).unwrap();
        assert_eq!(runtime_meta_bytes_per_nnz(&prog), 0.0);
    }

    #[test]
    fn cpu_only_pin_serves_from_host_with_clean_report() {
        let mut acc = Alrescha::with_paper_config();
        let coo = gen::stencil27(3);
        let prog = acc.program(KernelType::SpMv, &coo).unwrap();
        acc.set_cpu_only(true);
        let x = vec![1.0; coo.cols()];
        let (y, report) = acc.spmv(&prog, &x).unwrap();
        // Same host kernel as the reference: identical bits.
        let expect = alrescha_kernels::spmv::spmv(&Csr::from_coo(&coo), &x);
        assert_eq!(y, expect);
        assert_eq!(report.cycles, 0);
        assert_eq!(report.faults.degraded, 0);
        assert_eq!(report.breaker, alrescha_sim::BreakerStats::default());
        acc.reset();
        assert!(!acc.cpu_only(), "reset clears the pin");
    }

    #[test]
    fn breaker_trips_to_cpu_and_reports_transitions() {
        use crate::breaker::{BreakerConfig, BreakerState};
        use alrescha_sim::FaultPlan;
        let mut acc = Alrescha::with_paper_config();
        let coo = gen::stencil27(3);
        let prog = acc.program(KernelType::SpMv, &coo).unwrap();
        // Stuck-at faults defeat every retry, so each device attempt fails.
        acc.set_fault_plan(Some(FaultPlan::inert(42).with_memory_stuck_rate(1.0)));
        acc.set_circuit_breaker(Some(BreakerConfig {
            failure_threshold: 2,
            cooldown_ops: 2,
            max_attempts: 2,
            ..BreakerConfig::default()
        }));
        let x = vec![1.0; coo.cols()];
        let expect = alrescha_kernels::spmv::spmv(&Csr::from_coo(&coo), &x);

        // Op 1: device attempts fail, served by CPU, breaker still closed.
        let (y, r1) = acc.spmv(&prog, &x).unwrap();
        assert!(alrescha_sparse::approx_eq(&y, &expect, 1e-12));
        assert_eq!(acc.breaker_state(), Some(BreakerState::Closed));
        assert_eq!(r1.faults.degraded, 1);
        assert!(
            r1.breakdown.recovery_cycles > 0,
            "wasted attempts and backoff must be charged"
        );

        // Op 2: second consecutive failure trips the breaker.
        let (_, r2) = acc.spmv(&prog, &x).unwrap();
        assert_eq!(acc.breaker_state(), Some(BreakerState::Open));
        assert_eq!(r2.breaker.trips, 1);

        // Ops 3-4: served by the CPU while open — no device cycles at all.
        for _ in 0..2 {
            let (y, r) = acc.spmv(&prog, &x).unwrap();
            assert!(alrescha_sparse::approx_eq(&y, &expect, 1e-12));
            assert_eq!(r.breaker.cpu_fallback_runs, 1);
            assert_eq!(r.breakdown.recovery_cycles, 0);
        }

        // Op 5: cooldown over — a half-open probe runs on the (still
        // faulty) device, fails, and re-opens the breaker.
        let (_, r5) = acc.spmv(&prog, &x).unwrap();
        assert_eq!(acc.breaker_state(), Some(BreakerState::Open));
        assert_eq!(r5.breaker.half_open_probes, 1);
        assert_eq!(r5.breaker.trips, 1);
        assert_eq!(acc.breaker_stats().trips, 2);
    }

    #[test]
    fn breaker_probe_heals_after_fault_plan_clears() {
        use crate::breaker::{BreakerConfig, BreakerState};
        use alrescha_sim::FaultPlan;
        let mut acc = Alrescha::with_paper_config();
        let coo = gen::stencil27(3);
        let prog = acc.program(KernelType::SpMv, &coo).unwrap();
        acc.set_fault_plan(Some(FaultPlan::inert(42).with_memory_stuck_rate(1.0)));
        acc.set_circuit_breaker(Some(BreakerConfig {
            failure_threshold: 1,
            cooldown_ops: 1,
            max_attempts: 1,
            ..BreakerConfig::default()
        }));
        let x = vec![1.0; coo.cols()];
        acc.spmv(&prog, &x).unwrap(); // trips (threshold 1)
        assert_eq!(acc.breaker_state(), Some(BreakerState::Open));
        acc.spmv(&prog, &x).unwrap(); // cooldown tick on the CPU

        // The "transient outage" ends: the probe succeeds and heals.
        acc.set_fault_plan(None);
        let (y, r) = acc.spmv(&prog, &x).unwrap();
        assert_eq!(acc.breaker_state(), Some(BreakerState::Closed));
        assert_eq!(r.breaker.half_open_probes, 1);
        assert!(r.cycles > 0, "probe ran on the device");
        assert_eq!(r.faults.degraded, 0);
        let expect = alrescha_kernels::spmv::spmv(&Csr::from_coo(&coo), &x);
        assert!(alrescha_sparse::approx_eq(&y, &expect, 1e-12));
    }

    #[test]
    fn breaker_guards_symgs_and_restores_x_before_fallback() {
        use crate::breaker::BreakerConfig;
        use alrescha_sim::FaultPlan;
        let mut acc = Alrescha::with_paper_config();
        let coo = gen::stencil27(3);
        let prog = acc.program(KernelType::SymGs, &coo).unwrap();
        acc.set_fault_plan(Some(FaultPlan::inert(7).with_memory_stuck_rate(1.0)));
        acc.set_circuit_breaker(Some(BreakerConfig::default()));
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let report = acc.symgs(&prog, &b, &mut x).unwrap();
        assert_eq!(report.faults.degraded, 1);
        let mut x_ref = vec![0.0; coo.cols()];
        alrescha_kernels::symgs::symgs(&Csr::from_coo(&coo), &b, &mut x_ref).unwrap();
        assert!(
            alrescha_sparse::approx_eq(&x, &x_ref, 1e-12),
            "fallback must run from the pre-call state"
        );
    }
}

impl Alrescha {
    /// Programs a kernel from a serialized [`crate::program::ProgramBinary`]
    /// — the full host flow of Figure 7: the binary crosses the program
    /// interface, is decoded into the configuration table, and is validated
    /// entry-by-entry against the reformatted matrix before execution.
    ///
    /// # Errors
    ///
    /// Decoding errors, conversion errors, or
    /// [`CoreError::DimensionMismatch`] when the binary does not describe
    /// this matrix (entry count or per-entry fields disagree).
    pub fn program_from_binary(
        &mut self,
        binary: &crate::program::ProgramBinary,
        a: &Coo,
    ) -> Result<ProgrammedKernel> {
        let decoded = binary.decode()?;
        let prog = self.program(binary.kernel(), a)?;
        if decoded.entries() != prog.table().entries() {
            return Err(CoreError::DimensionMismatch {
                expected: prog.table().entries().len(),
                found: decoded.entries().len(),
            });
        }
        Ok(prog)
    }
}

#[cfg(test)]
mod binary_flow_tests {
    use super::*;
    use crate::program::ProgramBinary;
    use alrescha_sparse::gen;

    #[test]
    fn end_to_end_binary_flow_runs_symgs() {
        let coo = gen::stencil27(3);
        let mut host_acc = Alrescha::with_paper_config();
        // Host side: convert and serialize.
        let prog = host_acc.program(KernelType::SymGs, &coo).unwrap();
        let binary = ProgramBinary::encode(
            KernelType::SymGs,
            prog.table(),
            coo.rows(),
            host_acc.config().omega,
        );

        // Device side: decode, validate, run.
        let mut device_acc = Alrescha::with_paper_config();
        let device_prog = device_acc.program_from_binary(&binary, &coo).unwrap();
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        device_acc.symgs(&device_prog, &b, &mut x).unwrap();

        let mut x_ref = vec![0.0; coo.cols()];
        alrescha_kernels::symgs::symgs(&Csr::from_coo(&coo), &b, &mut x_ref).unwrap();
        assert!(alrescha_sparse::approx_eq(&x, &x_ref, 1e-10));
    }

    #[test]
    fn binary_for_a_different_matrix_is_rejected() {
        let coo_a = gen::stencil27(3);
        let coo_b = gen::stencil27(4);
        let mut acc = Alrescha::with_paper_config();
        let prog = acc.program(KernelType::SpMv, &coo_a).unwrap();
        let binary = ProgramBinary::encode(KernelType::SpMv, prog.table(), coo_a.rows(), 8);
        assert!(acc.program_from_binary(&binary, &coo_b).is_err());
    }
}

#[cfg(test)]
mod cc_facade_tests {
    use super::*;
    use alrescha_sparse::gen;

    #[test]
    fn cc_through_the_facade_matches_reference() {
        let g = gen::GraphClass::Road.generate(100, 3);
        let mut acc = Alrescha::with_paper_config();
        let prog = acc.program(KernelType::ConnectedComponents, &g).unwrap();
        let (labels, report) = acc.connected_components(&prog).unwrap();
        let expect = alrescha_kernels::graph::connected_components(&Csr::from_coo(&g)).unwrap();
        assert_eq!(labels, expect);
        assert_eq!(report.kernel, "cc");
    }

    #[test]
    fn cc_program_rejects_other_kernels() {
        let g = gen::road_grid(4);
        let mut acc = Alrescha::with_paper_config();
        let prog = acc.program(KernelType::Bfs, &g).unwrap();
        assert!(acc.connected_components(&prog).is_err());
    }
}

#[cfg(test)]
mod ssor_facade_tests {
    use super::*;
    use alrescha_sparse::gen;

    #[test]
    fn ssor_through_the_facade() {
        let coo = gen::stencil27(3);
        let csr = Csr::from_coo(&coo);
        let mut acc = Alrescha::with_paper_config();
        let prog = acc.program(KernelType::SymGs, &coo).unwrap();
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        acc.ssor(&prog, &b, &mut x, 1.3).unwrap();
        let mut x_ref = vec![0.0; coo.cols()];
        alrescha_kernels::smoothers::ssor(&csr, &b, &mut x_ref, 1.3).unwrap();
        assert!(alrescha_sparse::approx_eq(&x, &x_ref, 1e-9));
    }
}
