//! Property tests for the fault-injection subsystem: the plan's seed fully
//! determines the fault stream (identical runs produce identical reports),
//! and disabled or inert plans leave the engine bit-identical to its
//! un-instrumented behaviour.

use proptest::prelude::*;

use alrescha_sim::{Engine, FaultPlan, RecoveryPolicy, SimConfig};
use alrescha_sparse::alf::AlfLayout;
use alrescha_sparse::{Alf, Coo};

/// Small diagonally dominant matrices (SymGS-safe, well conditioned).
fn arb_dd_matrix() -> impl Strategy<Value = Coo> {
    (2usize..24).prop_flat_map(|n| {
        let entry = (0..n, 0..n, 1i32..50);
        proptest::collection::vec(entry, 0..60).prop_map(move |entries| {
            let mut coo = Coo::new(n, n);
            let mut row_sum = vec![0.0; n];
            for (r, c, v) in entries {
                if r != c {
                    let v = -f64::from(v) / 60.0;
                    coo.push(r, c, v);
                    row_sum[r] += v.abs();
                }
            }
            for (i, s) in row_sum.iter().enumerate() {
                coo.push(i, i, s + 1.0);
            }
            coo.compress()
        })
    })
}

fn arb_transient_plan() -> impl Strategy<Value = FaultPlan> {
    (0u64..u64::MAX, 0.0f64..0.2, 0.0f64..0.2, 0.0f64..0.2).prop_map(
        |(seed, lane, tree, cache)| {
            FaultPlan::inert(seed)
                .with_fcu_lane_rate(lane)
                .with_fcu_tree_rate(tree)
                .with_cache_fault_rate(cache)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The same plan on the same input is exactly reproducible: results,
    /// timing, and every fault counter agree between two fresh engines.
    #[test]
    fn same_seed_gives_identical_reports(
        coo in arb_dd_matrix(),
        plan in arb_transient_plan(),
    ) {
        let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).expect("formats");
        let x: Vec<f64> = (0..coo.cols()).map(|i| (i as f64 * 0.3).cos()).collect();
        let policy = RecoveryPolicy::Retry { max_retries: 4, backoff_cycles: 8 };

        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut engine = Engine::new(SimConfig::paper());
            engine.set_fault_plan(Some(plan.clone()));
            engine.set_recovery_policy(policy);
            runs.push(engine.run_spmv(&a, &x));
        }
        let second = runs.pop().expect("two runs");
        let first = runs.pop().expect("two runs");
        match (first, second) {
            (Ok((y1, rep1)), Ok((y2, rep2))) => {
                prop_assert_eq!(y1, y2);
                prop_assert_eq!(rep1, rep2);
            }
            (Err(e1), Err(e2)) => prop_assert_eq!(e1.to_string(), e2.to_string()),
            (a, b) => prop_assert!(false, "runs disagree: {a:?} vs {b:?}"),
        }
    }

    /// A plan with every rate at zero exercises the checksum machinery but
    /// must leave results and timing bit-identical to no plan at all.
    #[test]
    fn inert_plan_is_bit_identical_to_uninstrumented(
        coo in arb_dd_matrix(),
        seed in 0u64..u64::MAX,
    ) {
        let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).expect("formats");
        let x: Vec<f64> = (0..coo.cols()).map(|i| (i as f64 * 0.7).sin()).collect();

        let mut plain = Engine::new(SimConfig::paper());
        let (y_plain, rep_plain) = plain.run_spmv(&a, &x).expect("runs");

        let mut armed = Engine::new(SimConfig::paper());
        armed.set_fault_plan(Some(FaultPlan::inert(seed)));
        let (y_armed, rep_armed) = armed.run_spmv(&a, &x).expect("runs");

        prop_assert_eq!(y_plain, y_armed);
        prop_assert_eq!(rep_plain, rep_armed);
    }

    /// Same for SymGS, whose link-stack and FIFO fill paths are also hooked.
    #[test]
    fn inert_plan_symgs_is_bit_identical(
        coo in arb_dd_matrix(),
        seed in 0u64..u64::MAX,
    ) {
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).expect("formats");
        let b = vec![1.0; coo.rows()];

        let mut plain = Engine::new(SimConfig::paper());
        let mut x_plain = vec![0.0; coo.cols()];
        let rep_plain = plain.run_symgs(&a, &b, &mut x_plain).expect("runs");

        let mut armed = Engine::new(SimConfig::paper());
        armed.set_fault_plan(Some(FaultPlan::inert(seed)));
        let mut x_armed = vec![0.0; coo.cols()];
        let rep_armed = armed.run_symgs(&a, &b, &mut x_armed).expect("runs");

        prop_assert_eq!(x_plain, x_armed);
        prop_assert_eq!(rep_plain, rep_armed);
    }

    /// Fault accounting is consistent on every surviving run, and a run in
    /// which nothing fired is bit-identical to the fault-free result. (A
    /// run with injections may legally differ: the single column-sum check
    /// per block cannot catch compensating multi-bit escapes, which is why
    /// the coverage target is ≥95%, not 100%.)
    #[test]
    fn recovered_runs_keep_counters_consistent(
        coo in arb_dd_matrix(),
        plan in arb_transient_plan(),
    ) {
        let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).expect("formats");
        let x: Vec<f64> = (0..coo.cols()).map(|i| 1.0 + (i % 3) as f64).collect();

        let mut plain = Engine::new(SimConfig::paper());
        let (y_ref, _) = plain.run_spmv(&a, &x).expect("runs");

        let mut armed = Engine::new(SimConfig::paper());
        armed.set_fault_plan(Some(plan));
        armed.set_recovery_policy(RecoveryPolicy::Retry { max_retries: 6, backoff_cycles: 4 });
        if let Ok((y, report)) = armed.run_spmv(&a, &x) {
            prop_assert!(report.faults.detected <= report.faults.injected);
            // On a surviving run everything the checksums caught was
            // recovered by a successful retry.
            prop_assert_eq!(report.faults.recovered, report.faults.detected);
            if report.faults.injected == 0 {
                prop_assert_eq!(y, y_ref);
            }
        }
    }
}
