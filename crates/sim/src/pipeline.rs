//! Cycle-by-cycle FCU pipeline model — the validation bench for the
//! analytic timing the engine charges.
//!
//! [`crate::engine::Engine`] uses closed-form per-block latencies
//! ([`crate::config::SimConfig::fcu_sum_latency`] and friends). This module
//! models the same hardware as an explicit stage pipeline — an ALU stage of
//! `alu_latency` cycles followed by `⌈log₂ω⌉` reduce stages of the reduce
//! latency each — and steps it cycle by cycle, so tests can confirm the
//! closed forms against a mechanical simulation (fill latency, one-result-
//! per-cycle steady-state throughput, and drain time).

use crate::config::SimConfig;
use crate::fcu::Reduce;

/// A token moving through the pipeline (the reduction of one ω-row).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Token {
    /// Identifier of the row that produced it.
    row_id: u64,
    /// Reduced value.
    value: f64,
    /// Cycles remaining in the current stage.
    remaining: u64,
    /// Stage index (0 = ALU, then reduce levels).
    stage: usize,
}

/// An explicit stage-by-stage model of the FCU pipeline.
#[derive(Debug, Clone)]
pub struct FcuPipeline {
    stage_latencies: Vec<u64>,
    /// One in-flight token per stage (the pipeline is fully pipelined: a
    /// stage holds at most one token per issue slot; tokens in distinct
    /// stages advance concurrently).
    in_flight: Vec<Option<Token>>,
    cycle: u64,
    issued: u64,
    completed: Vec<(u64, f64, u64)>, // (row_id, value, completion_cycle)
}

impl FcuPipeline {
    /// Builds the pipeline for a configuration and reduction operation.
    pub fn new(config: &SimConfig, reduce: Reduce) -> Self {
        let re = match reduce {
            Reduce::Sum => config.re_sum_latency,
            Reduce::Min => config.re_min_latency,
        };
        let mut stage_latencies = vec![config.alu_latency];
        stage_latencies.extend(std::iter::repeat_n(re, config.tree_depth() as usize));
        let stages = stage_latencies.len();
        FcuPipeline {
            stage_latencies,
            in_flight: vec![None; stages],
            cycle: 0,
            issued: 0,
            completed: Vec::new(),
        }
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Completed reductions as `(row_id, value, completion_cycle)`.
    pub fn completed(&self) -> &[(u64, f64, u64)] {
        &self.completed
    }

    /// True when no token is in flight.
    pub fn is_drained(&self) -> bool {
        self.in_flight.iter().all(Option::is_none)
    }

    /// Advances one cycle, optionally issuing a new row's reduced value
    /// into stage 0. Returns `false` if issue was refused (stage 0 blocked
    /// — cannot happen when every stage has equal latency and issue is one
    /// per cycle, but the model checks anyway).
    pub fn step(&mut self, issue: Option<f64>) -> bool {
        // Issue first so the new token spends this cycle in stage 0, then
        // advance stages from the back so tokens can move up this cycle.
        let accepted = match issue {
            Some(value) if self.in_flight[0].is_none() => {
                self.in_flight[0] = Some(Token {
                    row_id: self.issued,
                    value,
                    remaining: self.stage_latencies[0],
                    stage: 0,
                });
                self.issued += 1;
                true
            }
            Some(_) => false,
            None => true,
        };
        for stage in (0..self.in_flight.len()).rev() {
            let Some(mut token) = self.in_flight[stage] else {
                continue;
            };
            token.remaining -= 1;
            if token.remaining == 0 {
                if stage + 1 == self.in_flight.len() {
                    self.completed
                        .push((token.row_id, token.value, self.cycle + 1));
                    self.in_flight[stage] = None;
                } else if self.in_flight[stage + 1].is_none() {
                    token.stage = stage + 1;
                    token.remaining = self.stage_latencies[stage + 1];
                    self.in_flight[stage + 1] = Some(token);
                    self.in_flight[stage] = None;
                } else {
                    // Structural stall: hold at zero until the next stage
                    // frees (keep remaining at 1 so we retry next cycle).
                    token.remaining = 1;
                    self.in_flight[stage] = Some(token);
                }
            } else {
                self.in_flight[stage] = Some(token);
            }
        }
        self.cycle += 1;
        accepted
    }

    /// Runs until drained, returning the cycle at which the last token
    /// completed.
    pub fn drain(&mut self) -> u64 {
        while !self.is_drained() {
            self.step(None);
        }
        self.completed.last().map_or(self.cycle, |&(_, _, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_token_latency_matches_closed_form() {
        let config = SimConfig::paper();
        for (reduce, expect) in [
            (Reduce::Sum, config.fcu_sum_latency()),
            (Reduce::Min, config.fcu_min_latency()),
        ] {
            let mut pipe = FcuPipeline::new(&config, reduce);
            pipe.step(Some(1.0));
            let done = pipe.drain();
            assert_eq!(done, expect, "reduce {reduce:?}");
            assert_eq!(pipe.completed().len(), 1);
        }
    }

    #[test]
    fn back_to_back_issue_is_accepted_every_latency_window() {
        // With equal stage latencies L, a new token can enter every L
        // cycles; the engine's "one block row per cycle" steady state is
        // the L = 1 ideal the hardware reaches by replicating stage
        // registers. The explicit model shows the structural limit.
        let config = SimConfig::paper();
        let mut pipe = FcuPipeline::new(&config, Reduce::Sum);
        let mut accepted = 0u64;
        for k in 0..60 {
            if pipe.step(Some(f64::from(k))) {
                accepted += 1;
            }
        }
        pipe.drain();
        assert_eq!(accepted as usize, pipe.completed().len());
        // Steady state: one acceptance per ALU latency window.
        let expect = 60 / config.alu_latency;
        assert!(
            (accepted as i64 - expect as i64).abs() <= 1,
            "accepted {accepted}, expected about {expect}"
        );
    }

    #[test]
    fn completions_preserve_issue_order() {
        let config = SimConfig::paper();
        let mut pipe = FcuPipeline::new(&config, Reduce::Sum);
        for k in 0..30 {
            pipe.step(Some(f64::from(k)));
        }
        pipe.drain();
        let ids: Vec<u64> = pipe.completed().iter().map(|&(id, _, _)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "pipeline must be in-order");
    }

    #[test]
    fn values_pass_through_unchanged() {
        let config = SimConfig::paper();
        let mut pipe = FcuPipeline::new(&config, Reduce::Min);
        pipe.step(Some(42.5));
        pipe.drain();
        assert_eq!(pipe.completed()[0].1, 42.5);
    }

    #[test]
    fn drain_time_bounds_the_reconfiguration_window() {
        // §4.4: the RCU switch reprograms during the drain. The mechanical
        // drain of a full pipeline must be at least the switch-programming
        // time (cache latency), or reconfiguration would expose stalls.
        let config = SimConfig::paper();
        let mut pipe = FcuPipeline::new(&config, Reduce::Sum);
        pipe.step(Some(1.0));
        let drained_at = pipe.drain();
        assert!(drained_at >= config.cache_latency);
    }
}
