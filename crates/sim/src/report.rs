//! Execution reports: the simulator's measured output for one kernel run.

use crate::config::SimConfig;
use crate::energy::{EnergyCounters, EnergyModel};
use crate::fault::FaultCounters;
use crate::rcu::ReconfigStats;

/// Cache behaviour summary for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read hits.
    pub hits: u64,
    /// Read misses.
    pub misses: u64,
    /// Writes.
    pub writes: u64,
    /// Cycles spent on cache accesses (overlapped with compute; reported
    /// for the Figure 18 cache-time analysis, not added to `cycles`).
    pub busy_cycles: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.writes
    }
}

/// Where the cycles went, by data path (the device-side time breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Cycles in GEMV blocks (streaming-limited or ω-per-block compute).
    pub gemv_cycles: u64,
    /// Cycles in the sequential D-SymGS recurrence.
    pub dsymgs_cycles: u64,
    /// Cycles in graph data-path blocks (D-BFS / D-SSSP / D-PR).
    pub graph_cycles: u64,
    /// Pipeline fill/drain cycles, including data-path switches.
    pub drain_cycles: u64,
}

impl CycleBreakdown {
    /// Sum of all accounted cycles.
    pub fn total(&self) -> u64 {
        self.gemv_cycles + self.dsymgs_cycles + self.graph_cycles + self.drain_cycles
    }
}

/// Per-data-path execution counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataPathCounts {
    /// GEMV blocks executed.
    pub gemv_blocks: u64,
    /// D-SymGS diagonal blocks executed.
    pub dsymgs_blocks: u64,
    /// Graph data-path blocks executed (D-BFS / D-SSSP / D-PR).
    pub graph_blocks: u64,
    /// Algorithm-level iterations (sweeps, rounds) this report covers.
    pub iterations: u64,
    /// High-water mark of the GEMV→D-SymGS link stack (sizes the hardware
    /// buffer; 0 for kernels that never use it).
    pub link_stack_peak: u64,
}

/// Everything the simulator measured about one kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Kernel name (`"spmv"`, `"symgs"`, …).
    pub kernel: &'static str,
    /// Total cycles.
    pub cycles: u64,
    /// Wall-clock seconds at the configured clock.
    pub seconds: f64,
    /// Bytes moved over the memory interface.
    pub bytes_streamed: u64,
    /// Achieved fraction of peak memory bandwidth (Figure 15's lines).
    pub bandwidth_utilization: f64,
    /// Fraction of execution time attributable to cache accesses
    /// (Figure 18's lines). Can exceed utilization because cache work
    /// overlaps with streaming.
    pub cache_time_fraction: f64,
    /// Energy event counters.
    pub energy: EnergyCounters,
    /// Reconfiguration behaviour.
    pub reconfig: ReconfigStats,
    /// Cache statistics.
    pub cache: CacheStats,
    /// Data-path counts.
    pub datapaths: DataPathCounts,
    /// Cycle attribution by data path.
    pub breakdown: CycleBreakdown,
    /// Fault injection, detection, and recovery accounting (all zero when no
    /// fault plan is armed).
    pub faults: FaultCounters,
}

impl ExecutionReport {
    /// Total energy in joules under `model`.
    pub fn energy_joules(&self, model: &EnergyModel) -> f64 {
        self.energy.total_joules(model)
    }

    /// Effective throughput in GFLOP-equivalents/s given an operation count.
    pub fn gflops(&self, flops: u64) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            flops as f64 / self.seconds / 1e9
        }
    }

    /// Merges another report into this one (summing cycles, bytes, energy,
    /// counts) and recomputes the derived ratios with `config`.
    pub fn merge(&mut self, other: &ExecutionReport, config: &SimConfig) {
        self.cycles += other.cycles;
        self.bytes_streamed += other.bytes_streamed;
        self.energy.merge(&other.energy);
        self.reconfig.switches += other.reconfig.switches;
        self.reconfig.hidden_cycles += other.reconfig.hidden_cycles;
        self.reconfig.exposed_cycles += other.reconfig.exposed_cycles;
        self.cache.hits += other.cache.hits;
        self.cache.misses += other.cache.misses;
        self.cache.writes += other.cache.writes;
        self.cache.busy_cycles += other.cache.busy_cycles;
        self.datapaths.gemv_blocks += other.datapaths.gemv_blocks;
        self.datapaths.dsymgs_blocks += other.datapaths.dsymgs_blocks;
        self.datapaths.graph_blocks += other.datapaths.graph_blocks;
        self.datapaths.iterations += other.datapaths.iterations;
        self.datapaths.link_stack_peak = self
            .datapaths
            .link_stack_peak
            .max(other.datapaths.link_stack_peak);
        self.breakdown.gemv_cycles += other.breakdown.gemv_cycles;
        self.breakdown.dsymgs_cycles += other.breakdown.dsymgs_cycles;
        self.breakdown.graph_cycles += other.breakdown.graph_cycles;
        self.breakdown.drain_cycles += other.breakdown.drain_cycles;
        self.faults.merge(&other.faults);
        self.seconds = config.cycles_to_seconds(self.cycles);
        let peak = config.values_per_cycle() * 8.0 * self.cycles as f64;
        self.bandwidth_utilization = if peak > 0.0 {
            (self.bytes_streamed as f64 / peak).min(1.0)
        } else {
            0.0
        };
        self.cache_time_fraction = if self.cycles > 0 {
            (self.cache.busy_cycles as f64 / self.cycles as f64).min(1.0)
        } else {
            0.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(kernel: &'static str, cycles: u64, bytes: u64) -> ExecutionReport {
        ExecutionReport {
            kernel,
            cycles,
            seconds: 0.0,
            bytes_streamed: bytes,
            bandwidth_utilization: 0.0,
            cache_time_fraction: 0.0,
            energy: EnergyCounters::new(),
            reconfig: ReconfigStats::default(),
            cache: CacheStats::default(),
            datapaths: DataPathCounts::default(),
            breakdown: CycleBreakdown::default(),
            faults: FaultCounters::default(),
        }
    }

    #[test]
    fn merge_sums_and_recomputes() {
        let cfg = SimConfig::paper();
        let mut a = blank("spmv", 100, 1000);
        let b = blank("spmv", 300, 3000);
        a.merge(&b, &cfg);
        assert_eq!(a.cycles, 400);
        assert_eq!(a.bytes_streamed, 4000);
        assert!((a.seconds - 400.0 / 2.5e9).abs() < 1e-18);
        let peak = 14.4 * 8.0 * 400.0;
        assert!((a.bandwidth_utilization - 4000.0 / peak).abs() < 1e-12);
    }

    #[test]
    fn gflops_handles_zero_time() {
        let r = blank("spmv", 0, 0);
        assert_eq!(r.gflops(100), 0.0);
    }

    #[test]
    fn cache_accesses_total() {
        let c = CacheStats {
            hits: 3,
            misses: 2,
            writes: 5,
            busy_cycles: 0,
        };
        assert_eq!(c.accesses(), 10);
    }
}

impl std::fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} cycles ({:.3} us), {:.1}% of peak bandwidth",
            self.kernel,
            self.cycles,
            self.seconds * 1e6,
            100.0 * self.bandwidth_utilization
        )?;
        writeln!(
            f,
            "  data paths: {} gemv, {} d-symgs, {} graph blocks over {} iteration(s)",
            self.datapaths.gemv_blocks,
            self.datapaths.dsymgs_blocks,
            self.datapaths.graph_blocks,
            self.datapaths.iterations
        )?;
        writeln!(
            f,
            "  cycles: {} gemv / {} d-symgs / {} graph / {} drain",
            self.breakdown.gemv_cycles,
            self.breakdown.dsymgs_cycles,
            self.breakdown.graph_cycles,
            self.breakdown.drain_cycles
        )?;
        write!(
            f,
            "  {} reconfigurations ({} exposed cycles), cache {}/{} read hits, {} KiB streamed",
            self.reconfig.switches,
            self.reconfig.exposed_cycles,
            self.cache.hits,
            self.cache.hits + self.cache.misses,
            self.bytes_streamed / 1024
        )?;
        if self.faults.any() {
            write!(
                f,
                "\n  faults: {} injected, {} detected, {} recovered, {} retries, {} degraded run(s)",
                self.faults.injected,
                self.faults.detected,
                self.faults.recovered,
                self.faults.retries,
                self.faults.degraded
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_mentions_kernel() {
        let r = ExecutionReport {
            kernel: "spmv",
            cycles: 100,
            seconds: 4e-8,
            bytes_streamed: 2048,
            bandwidth_utilization: 0.5,
            cache_time_fraction: 0.1,
            energy: EnergyCounters::new(),
            reconfig: ReconfigStats::default(),
            cache: CacheStats::default(),
            datapaths: DataPathCounts::default(),
            breakdown: CycleBreakdown::default(),
            faults: FaultCounters::default(),
        };
        let text = r.to_string();
        assert!(text.contains("spmv"));
        assert!(text.contains("100 cycles"));
        assert!(text.contains("2 KiB"));
        assert!(!text.contains("faults:"));

        let mut faulty = r;
        faulty.faults.injected = 3;
        faulty.faults.detected = 3;
        faulty.faults.recovered = 2;
        let text = faulty.to_string();
        assert!(text.contains("faults: 3 injected, 3 detected, 2 recovered"));
    }
}
