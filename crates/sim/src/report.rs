//! Execution reports: the simulator's measured output for one kernel run.

use crate::config::SimConfig;
use crate::energy::{EnergyCounters, EnergyModel};
use crate::fault::FaultCounters;
use crate::rcu::ReconfigStats;

/// Cache behaviour summary for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read hits.
    pub hits: u64,
    /// Read misses.
    pub misses: u64,
    /// Writes.
    pub writes: u64,
    /// Cycles spent on cache accesses (overlapped with compute; reported
    /// for the Figure 18 cache-time analysis, not added to `cycles`).
    pub busy_cycles: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.writes
    }
}

/// Where the cycles went, by data path (the device-side time breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Cycles in GEMV blocks (streaming-limited or ω-per-block compute).
    pub gemv_cycles: u64,
    /// Cycles in the sequential D-SymGS recurrence.
    pub dsymgs_cycles: u64,
    /// Cycles in graph data-path blocks (D-BFS / D-SSSP / D-PR).
    pub graph_cycles: u64,
    /// Pipeline fill/drain cycles, including data-path switches.
    pub drain_cycles: u64,
    /// Cycles spent on fault recovery: block re-executions, retry backoff
    /// stalls, circuit-breaker backoff, and device work wasted by a run
    /// that ultimately degraded to the CPU. Zero on a fault-free run.
    pub recovery_cycles: u64,
}

impl CycleBreakdown {
    /// Sum of all accounted cycles.
    pub fn total(&self) -> u64 {
        self.gemv_cycles
            + self.dsymgs_cycles
            + self.graph_cycles
            + self.drain_cycles
            + self.recovery_cycles
    }
}

/// Circuit-breaker activity over the runs this report covers (all zero when
/// no breaker guards the backend).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Closed→Open transitions (the accelerator was benched).
    pub trips: u64,
    /// Half-open probe attempts after a cooldown.
    pub half_open_probes: u64,
    /// Operations served by the CPU backend while the breaker was open.
    pub cpu_fallback_runs: u64,
}

impl BreakerStats {
    /// True when any counter is non-zero.
    pub fn any(&self) -> bool {
        self.trips != 0 || self.half_open_probes != 0 || self.cpu_fallback_runs != 0
    }

    /// Accumulates `other` into `self` (used when merging reports).
    pub fn merge(&mut self, other: &BreakerStats) {
        self.trips += other.trips;
        self.half_open_probes += other.half_open_probes;
        self.cpu_fallback_runs += other.cpu_fallback_runs;
    }
}

/// Per-data-path execution counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataPathCounts {
    /// GEMV blocks executed.
    pub gemv_blocks: u64,
    /// D-SymGS diagonal blocks executed.
    pub dsymgs_blocks: u64,
    /// Graph data-path blocks executed (D-BFS / D-SSSP / D-PR).
    pub graph_blocks: u64,
    /// Algorithm-level iterations (sweeps, rounds) this report covers.
    pub iterations: u64,
    /// High-water mark of the GEMV→D-SymGS link stack (sizes the hardware
    /// buffer; 0 for kernels that never use it).
    pub link_stack_peak: u64,
    /// High-water mark of the RCU operand FIFOs (`b` / extracted diagonal),
    /// in values; 0 for kernels that never run the D-SymGS path. The
    /// alprove AL402 static bound must dominate this.
    pub operand_fifo_peak: u64,
}

/// Everything the simulator measured about one kernel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Kernel name (`"spmv"`, `"symgs"`, …).
    pub kernel: &'static str,
    /// Total cycles.
    pub cycles: u64,
    /// Wall-clock seconds at the configured clock.
    pub seconds: f64,
    /// Bytes moved over the memory interface.
    pub bytes_streamed: u64,
    /// Achieved fraction of peak memory bandwidth (Figure 15's lines).
    pub bandwidth_utilization: f64,
    /// Fraction of execution time attributable to cache accesses
    /// (Figure 18's lines). Can exceed utilization because cache work
    /// overlaps with streaming.
    pub cache_time_fraction: f64,
    /// Energy event counters.
    pub energy: EnergyCounters,
    /// Reconfiguration behaviour.
    pub reconfig: ReconfigStats,
    /// Cache statistics.
    pub cache: CacheStats,
    /// Data-path counts.
    pub datapaths: DataPathCounts,
    /// Cycle attribution by data path.
    pub breakdown: CycleBreakdown,
    /// Fault injection, detection, and recovery accounting (all zero when no
    /// fault plan is armed).
    pub faults: FaultCounters,
    /// Circuit-breaker transitions and fallback activity (all zero when no
    /// breaker guards the backend).
    pub breaker: BreakerStats,
}

/// Formats an `f64` as a JSON number: shortest round-trip form, with
/// non-finite values (never produced by a well-formed report, but the
/// encoder must not emit invalid JSON) mapped to `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

impl ExecutionReport {
    /// Serializes the report as a single-line JSON object with a stable
    /// field order (struct declaration order). This is the wire schema the
    /// golden-report snapshot tests pin down: adding, removing, renaming,
    /// or reordering report fields changes this output and must be an
    /// intentional, fixture-updating change — downstream consumers (the
    /// `figures` tooling, batch-report aggregation) parse it.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"kernel\":{kernel:?},\"cycles\":{cycles},\"seconds\":{seconds},",
                "\"bytes_streamed\":{bytes},\"bandwidth_utilization\":{bw},",
                "\"cache_time_fraction\":{ctf},",
                "\"energy\":{{\"alu_ops\":{alu},\"re_ops\":{re},\"pe_ops\":{pe},",
                "\"cache_accesses\":{ca},\"buffer_ops\":{bo},\"dram_bytes\":{db},",
                "\"reconfigs\":{rcfg}}},",
                "\"reconfig\":{{\"switches\":{sw},\"hidden_cycles\":{hid},",
                "\"exposed_cycles\":{exp}}},",
                "\"cache\":{{\"hits\":{hits},\"misses\":{misses},\"writes\":{writes},",
                "\"busy_cycles\":{busy}}},",
                "\"datapaths\":{{\"gemv_blocks\":{gb},\"dsymgs_blocks\":{db2},",
                "\"graph_blocks\":{grb},\"iterations\":{it},\"link_stack_peak\":{lsp},",
                "\"operand_fifo_peak\":{ofp}}},",
                "\"breakdown\":{{\"gemv_cycles\":{gc},\"dsymgs_cycles\":{dc},",
                "\"graph_cycles\":{grc},\"drain_cycles\":{drc},\"recovery_cycles\":{rc}}},",
                "\"faults\":{{\"injected\":{fi},\"detected\":{fd},\"recovered\":{fr},",
                "\"retries\":{frt},\"degraded\":{fdg}}},",
                "\"breaker\":{{\"trips\":{bt},\"half_open_probes\":{bp},",
                "\"cpu_fallback_runs\":{bf}}}}}"
            ),
            kernel = self.kernel,
            cycles = self.cycles,
            seconds = json_f64(self.seconds),
            bytes = self.bytes_streamed,
            bw = json_f64(self.bandwidth_utilization),
            ctf = json_f64(self.cache_time_fraction),
            alu = self.energy.alu_ops,
            re = self.energy.re_ops,
            pe = self.energy.pe_ops,
            ca = self.energy.cache_accesses,
            bo = self.energy.buffer_ops,
            db = self.energy.dram_bytes,
            rcfg = self.energy.reconfigs,
            sw = self.reconfig.switches,
            hid = self.reconfig.hidden_cycles,
            exp = self.reconfig.exposed_cycles,
            hits = self.cache.hits,
            misses = self.cache.misses,
            writes = self.cache.writes,
            busy = self.cache.busy_cycles,
            gb = self.datapaths.gemv_blocks,
            db2 = self.datapaths.dsymgs_blocks,
            grb = self.datapaths.graph_blocks,
            it = self.datapaths.iterations,
            lsp = self.datapaths.link_stack_peak,
            ofp = self.datapaths.operand_fifo_peak,
            gc = self.breakdown.gemv_cycles,
            dc = self.breakdown.dsymgs_cycles,
            grc = self.breakdown.graph_cycles,
            drc = self.breakdown.drain_cycles,
            rc = self.breakdown.recovery_cycles,
            fi = self.faults.injected,
            fd = self.faults.detected,
            fr = self.faults.recovered,
            frt = self.faults.retries,
            fdg = self.faults.degraded,
            bt = self.breaker.trips,
            bp = self.breaker.half_open_probes,
            bf = self.breaker.cpu_fallback_runs,
        )
    }

    /// Total energy in joules under `model`.
    pub fn energy_joules(&self, model: &EnergyModel) -> f64 {
        self.energy.total_joules(model)
    }

    /// Effective throughput in GFLOP-equivalents/s given an operation count.
    pub fn gflops(&self, flops: u64) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            flops as f64 / self.seconds / 1e9
        }
    }

    /// Merges another report into this one (summing cycles, bytes, energy,
    /// counts) and recomputes the derived ratios with `config`.
    pub fn merge(&mut self, other: &ExecutionReport, config: &SimConfig) {
        self.cycles += other.cycles;
        self.bytes_streamed += other.bytes_streamed;
        self.energy.merge(&other.energy);
        self.reconfig.switches += other.reconfig.switches;
        self.reconfig.hidden_cycles += other.reconfig.hidden_cycles;
        self.reconfig.exposed_cycles += other.reconfig.exposed_cycles;
        self.cache.hits += other.cache.hits;
        self.cache.misses += other.cache.misses;
        self.cache.writes += other.cache.writes;
        self.cache.busy_cycles += other.cache.busy_cycles;
        self.datapaths.gemv_blocks += other.datapaths.gemv_blocks;
        self.datapaths.dsymgs_blocks += other.datapaths.dsymgs_blocks;
        self.datapaths.graph_blocks += other.datapaths.graph_blocks;
        self.datapaths.iterations += other.datapaths.iterations;
        self.datapaths.link_stack_peak = self
            .datapaths
            .link_stack_peak
            .max(other.datapaths.link_stack_peak);
        self.datapaths.operand_fifo_peak = self
            .datapaths
            .operand_fifo_peak
            .max(other.datapaths.operand_fifo_peak);
        self.breakdown.gemv_cycles += other.breakdown.gemv_cycles;
        self.breakdown.dsymgs_cycles += other.breakdown.dsymgs_cycles;
        self.breakdown.graph_cycles += other.breakdown.graph_cycles;
        self.breakdown.drain_cycles += other.breakdown.drain_cycles;
        self.breakdown.recovery_cycles += other.breakdown.recovery_cycles;
        self.faults.merge(&other.faults);
        self.breaker.merge(&other.breaker);
        self.recompute_derived(config);
    }

    /// Adds `cycles` of recovery overhead (retry backoff, breaker backoff,
    /// device work wasted before a degradation) to the total and the
    /// recovery bucket, keeping the `breakdown.total() == cycles` invariant
    /// and the derived ratios consistent.
    pub fn charge_recovery(&mut self, cycles: u64, config: &SimConfig) {
        if cycles == 0 {
            return;
        }
        self.cycles += cycles;
        self.breakdown.recovery_cycles += cycles;
        self.recompute_derived(config);
    }

    fn recompute_derived(&mut self, config: &SimConfig) {
        self.seconds = config.cycles_to_seconds(self.cycles);
        let peak = config.values_per_cycle() * 8.0 * self.cycles as f64;
        self.bandwidth_utilization = if peak > 0.0 {
            (self.bytes_streamed as f64 / peak).min(1.0)
        } else {
            0.0
        };
        self.cache_time_fraction = if self.cycles > 0 {
            (self.cache.busy_cycles as f64 / self.cycles as f64).min(1.0)
        } else {
            0.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank(kernel: &'static str, cycles: u64, bytes: u64) -> ExecutionReport {
        ExecutionReport {
            kernel,
            cycles,
            seconds: 0.0,
            bytes_streamed: bytes,
            bandwidth_utilization: 0.0,
            cache_time_fraction: 0.0,
            energy: EnergyCounters::new(),
            reconfig: ReconfigStats::default(),
            cache: CacheStats::default(),
            datapaths: DataPathCounts::default(),
            breakdown: CycleBreakdown::default(),
            faults: FaultCounters::default(),
            breaker: BreakerStats::default(),
        }
    }

    #[test]
    fn merge_sums_and_recomputes() {
        let cfg = SimConfig::paper();
        let mut a = blank("spmv", 100, 1000);
        let b = blank("spmv", 300, 3000);
        a.merge(&b, &cfg);
        assert_eq!(a.cycles, 400);
        assert_eq!(a.bytes_streamed, 4000);
        assert!((a.seconds - 400.0 / 2.5e9).abs() < 1e-18);
        let peak = 14.4 * 8.0 * 400.0;
        assert!((a.bandwidth_utilization - 4000.0 / peak).abs() < 1e-12);
    }

    #[test]
    fn gflops_handles_zero_time() {
        let r = blank("spmv", 0, 0);
        assert_eq!(r.gflops(100), 0.0);
    }

    /// A report with every summed, maxed, and recomputed field non-zero, so
    /// the associativity test below cannot pass by a field being ignored.
    fn populated(tag: u64) -> ExecutionReport {
        let mut r = blank("symgs", 100 + tag, 1000 + 7 * tag);
        r.energy.alu_ops = 11 + tag;
        r.energy.re_ops = 5 + tag;
        r.energy.pe_ops = 3 + tag;
        r.energy.cache_accesses = 17 + tag;
        r.energy.buffer_ops = 9 + tag;
        r.energy.dram_bytes = 900 + tag;
        r.energy.reconfigs = 2 + tag;
        r.reconfig.switches = 2 + tag;
        r.reconfig.hidden_cycles = 20 + tag;
        r.reconfig.exposed_cycles = 1 + tag;
        r.cache.hits = 40 + tag;
        r.cache.misses = 8 + tag;
        r.cache.writes = 12 + tag;
        r.cache.busy_cycles = 30 + tag;
        r.datapaths.gemv_blocks = 6 + tag;
        r.datapaths.dsymgs_blocks = 4 + tag;
        r.datapaths.graph_blocks = 2 + tag;
        r.datapaths.iterations = 1 + tag;
        r.datapaths.link_stack_peak = 8 * (tag + 1);
        r.breakdown.gemv_cycles = 50 + tag;
        r.breakdown.dsymgs_cycles = 30 + tag;
        r.breakdown.graph_cycles = 10 + tag;
        r.breakdown.drain_cycles = 7 + tag;
        r.breakdown.recovery_cycles = 3 + tag;
        r.faults.injected = 5 + tag;
        r.faults.detected = 4 + tag;
        r.faults.recovered = 3 + tag;
        r.faults.retries = 2 + tag;
        r.faults.degraded = tag;
        r.breaker.trips = 1 + tag;
        r.breaker.half_open_probes = 2 + tag;
        r.breaker.cpu_fallback_runs = tag;
        r
    }

    #[test]
    fn merge_is_associative_across_all_fields() {
        let cfg = SimConfig::paper();
        let (a, b, c) = (populated(1), populated(2), populated(3));

        let mut left = a.clone();
        left.merge(&b, &cfg);
        left.merge(&c, &cfg);

        let mut bc = b.clone();
        bc.merge(&c, &cfg);
        let mut right = a.clone();
        right.merge(&bc, &cfg);

        assert_eq!(left, right);
        // The derived ratios are recomputed from the sums, not averaged —
        // spot-check against a from-scratch computation.
        assert!((left.seconds - cfg.cycles_to_seconds(left.cycles)).abs() < 1e-18);
        let expect_ctf = left.cache.busy_cycles as f64 / left.cycles as f64;
        assert!((left.cache_time_fraction - expect_ctf.min(1.0)).abs() < 1e-12);
        assert_eq!(
            left.datapaths.link_stack_peak,
            32,
            "peak is a max, not a sum"
        );
    }

    #[test]
    fn charge_recovery_keeps_breakdown_invariant() {
        let cfg = SimConfig::paper();
        let mut r = populated(0);
        let before_total = r.breakdown.total();
        assert_eq!(before_total, r.cycles, "populated() must start consistent");
        r.charge_recovery(250, &cfg);
        assert_eq!(r.cycles, before_total + 250);
        assert_eq!(r.breakdown.total(), r.cycles);
        assert_eq!(r.breakdown.recovery_cycles, 3 + 250);
        assert!((r.seconds - cfg.cycles_to_seconds(r.cycles)).abs() < 1e-18);
        // Zero is a no-op.
        let snap = r.clone();
        r.charge_recovery(0, &cfg);
        assert_eq!(r, snap);
    }

    #[test]
    fn to_json_is_valid_and_covers_every_field() {
        let r = populated(1);
        let json = r.to_json();
        // Structural sanity without a JSON parser in the tree: balanced
        // braces, no trailing commas, every top-level key present.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(!json.contains(",}"), "{json}");
        for key in [
            "\"kernel\"",
            "\"cycles\"",
            "\"seconds\"",
            "\"bytes_streamed\"",
            "\"bandwidth_utilization\"",
            "\"cache_time_fraction\"",
            "\"energy\"",
            "\"reconfig\"",
            "\"cache\"",
            "\"datapaths\"",
            "\"breakdown\"",
            "\"faults\"",
            "\"breaker\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"kernel\":\"symgs\""));
        // Non-finite floats must not leak invalid JSON tokens.
        let mut broken = r;
        broken.seconds = f64::NAN;
        let json = broken.to_json();
        assert!(json.contains("\"seconds\":null"), "{json}");
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn cache_accesses_total() {
        let c = CacheStats {
            hits: 3,
            misses: 2,
            writes: 5,
            busy_cycles: 0,
        };
        assert_eq!(c.accesses(), 10);
    }
}

impl std::fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}: {} cycles ({:.3} us), {:.1}% of peak bandwidth",
            self.kernel,
            self.cycles,
            self.seconds * 1e6,
            100.0 * self.bandwidth_utilization
        )?;
        writeln!(
            f,
            "  data paths: {} gemv, {} d-symgs, {} graph blocks over {} iteration(s)",
            self.datapaths.gemv_blocks,
            self.datapaths.dsymgs_blocks,
            self.datapaths.graph_blocks,
            self.datapaths.iterations
        )?;
        writeln!(
            f,
            "  cycles: {} gemv / {} d-symgs / {} graph / {} drain / {} recovery",
            self.breakdown.gemv_cycles,
            self.breakdown.dsymgs_cycles,
            self.breakdown.graph_cycles,
            self.breakdown.drain_cycles,
            self.breakdown.recovery_cycles
        )?;
        write!(
            f,
            "  {} reconfigurations ({} exposed cycles), cache {}/{} read hits, {} KiB streamed",
            self.reconfig.switches,
            self.reconfig.exposed_cycles,
            self.cache.hits,
            self.cache.hits + self.cache.misses,
            self.bytes_streamed / 1024
        )?;
        if self.faults.any() {
            write!(
                f,
                "\n  faults: {} injected, {} detected, {} recovered, {} retries, {} degraded run(s)",
                self.faults.injected,
                self.faults.detected,
                self.faults.recovered,
                self.faults.retries,
                self.faults.degraded
            )?;
        }
        if self.breaker.any() {
            write!(
                f,
                "\n  breaker: {} trip(s), {} half-open probe(s), {} CPU fallback run(s)",
                self.breaker.trips,
                self.breaker.half_open_probes,
                self.breaker.cpu_fallback_runs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_mentions_kernel() {
        let r = ExecutionReport {
            kernel: "spmv",
            cycles: 100,
            seconds: 4e-8,
            bytes_streamed: 2048,
            bandwidth_utilization: 0.5,
            cache_time_fraction: 0.1,
            energy: EnergyCounters::new(),
            reconfig: ReconfigStats::default(),
            cache: CacheStats::default(),
            datapaths: DataPathCounts::default(),
            breakdown: CycleBreakdown::default(),
            faults: FaultCounters::default(),
            breaker: BreakerStats::default(),
        };
        let text = r.to_string();
        assert!(text.contains("spmv"));
        assert!(text.contains("100 cycles"));
        assert!(text.contains("2 KiB"));
        assert!(!text.contains("faults:"));
        assert!(!text.contains("breaker:"));

        let mut faulty = r;
        faulty.faults.injected = 3;
        faulty.faults.detected = 3;
        faulty.faults.recovered = 2;
        faulty.breaker.trips = 1;
        faulty.breaker.cpu_fallback_runs = 2;
        let text = faulty.to_string();
        assert!(text.contains("faults: 3 injected, 3 detected, 2 recovered"));
        assert!(text.contains("breaker: 1 trip(s), 0 half-open probe(s), 2 CPU fallback run(s)"));
    }
}
