//! Block-granular discrete-event co-simulation.
//!
//! The analytic engine serializes each block's cost as
//! `max(memory, compute)` (§engine docs). Real hardware double-buffers:
//! while the FCU computes block *k*, the memory interface already streams
//! block *k+1*. This module simulates that overlap explicitly with
//! per-resource availability times and exposes both bounds:
//!
//! * the **DES time** (double-buffered, the optimistic end of the design
//!   space), and
//! * the resource busy times, whose maximum is the absolute lower bound.
//!
//! Tests assert the sandwich `max(busy) ≤ DES ≤ analytic`, validating that
//! the engine's analytic timing is a sound, conservative model of the same
//! machine.

use alrescha_sparse::{alf::AlfLayout, Alf};

use crate::config::SimConfig;
use crate::error::{Result, SimError};

/// Timing summary of one discrete-event run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesReport {
    /// End-to-end cycles with full memory/compute overlap.
    pub cycles: u64,
    /// Cycles the memory interface was busy.
    pub memory_busy: u64,
    /// Cycles the FCU was busy.
    pub fcu_busy: u64,
    /// Blocks processed.
    pub blocks: u64,
}

impl DesReport {
    /// The larger of the two resource busy times — no schedule can finish
    /// faster than its busiest resource.
    pub fn resource_bound(&self) -> u64 {
        self.memory_busy.max(self.fcu_busy)
    }
}

/// Simulates one SpMV pass over `a` with double-buffered streaming.
///
/// # Errors
///
/// * [`SimError::LayoutMismatch`] for a SymGS-layout matrix.
/// * [`SimError::BlockWidthMismatch`] when the block width differs from ω.
pub fn simulate_spmv(a: &Alf, config: &SimConfig) -> Result<DesReport> {
    if a.layout() != AlfLayout::Streaming {
        return Err(SimError::LayoutMismatch {
            expected: "streaming",
            found: "symgs",
        });
    }
    if a.omega() != config.omega {
        return Err(SimError::BlockWidthMismatch {
            engine: config.omega,
            matrix: a.omega(),
        });
    }
    let omega = config.omega;
    let fill = config.fcu_sum_latency();

    // Per-resource availability clocks.
    let mut mem_free = 0u64;
    let mut fcu_free = fill; // the pipeline fills before the first result
    let mut mem_busy = 0u64;
    let mut fcu_busy = 0u64;

    for _block in a.blocks() {
        // Memory streams the next block as soon as the channel frees.
        let stream = config.stream_cycles(omega * omega);
        let mem_done = mem_free + stream;
        mem_free = mem_done;
        mem_busy += stream;

        // The FCU starts this block when both its previous block is done
        // and the payload has arrived.
        let compute = omega as u64;
        let start = fcu_free.max(mem_done);
        fcu_free = start + compute;
        fcu_busy += compute;
    }

    let drain = config.fcu_sum_latency();
    Ok(DesReport {
        cycles: fcu_free + drain,
        memory_busy: mem_busy,
        fcu_busy,
        blocks: a.blocks().len() as u64,
    })
}

/// Analytic-engine SpMV cycles for the same matrix, for comparison (runs
/// the functional engine on a unit vector).
///
/// # Errors
///
/// Propagates engine errors.
pub fn analytic_spmv_cycles(a: &Alf, config: &SimConfig) -> Result<u64> {
    let mut engine = crate::engine::Engine::new(config.clone());
    let x = vec![1.0; a.cols()];
    let (_, report) = engine.run_spmv(a, &x)?;
    Ok(report.cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alrescha_sparse::gen;

    fn alf(coo: &alrescha_sparse::Coo) -> Alf {
        Alf::from_coo(coo, 8, AlfLayout::Streaming).unwrap()
    }

    #[test]
    fn des_is_sandwiched_between_bounds() {
        let config = SimConfig::paper();
        for class in gen::ScienceClass::ALL {
            let coo = class.generate(400, 7);
            let a = alf(&coo);
            let des = simulate_spmv(&a, &config).unwrap();
            let analytic = analytic_spmv_cycles(&a, &config).unwrap();
            assert!(
                des.resource_bound() <= des.cycles,
                "{}: bound {} des {}",
                class.name(),
                des.resource_bound(),
                des.cycles
            );
            assert!(
                des.cycles <= analytic,
                "{}: des {} analytic {}",
                class.name(),
                des.cycles,
                analytic
            );
            // The analytic model must not be grossly pessimistic either:
            // within 2x of the overlapped schedule.
            assert!(
                analytic <= 2 * des.cycles,
                "{}: analytic {} des {}",
                class.name(),
                analytic,
                des.cycles
            );
        }
    }

    #[test]
    fn compute_bound_at_paper_balance() {
        // At ω = 8 with 14.4 values/cycle, each 64-value block streams in 5
        // cycles but computes in 8: the FCU is the bottleneck and the DES
        // time approaches fcu_busy.
        let coo = gen::stencil27(6);
        let a = alf(&coo);
        let des = simulate_spmv(&a, &SimConfig::paper()).unwrap();
        assert_eq!(des.fcu_busy, des.blocks * 8);
        let slack = des.cycles - des.fcu_busy;
        assert!(slack < 40, "slack {slack}"); // fill + drain + first-block wait
    }

    #[test]
    fn memory_bound_when_bandwidth_is_scarce() {
        let mut config = SimConfig::paper();
        config.mem_bandwidth_gbps = 72.0; // 3.6 values/cycle < 8
        let coo = gen::stencil27(5);
        let a = alf(&coo);
        let des = simulate_spmv(&a, &config).unwrap();
        assert!(des.memory_busy > des.fcu_busy);
        // Under memory-boundedness, DES time ~ memory busy time.
        assert!(des.cycles < des.memory_busy + 100);
    }

    #[test]
    fn layout_and_width_validation() {
        let coo = gen::stencil27(2);
        let config = SimConfig::paper();
        let symgs = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        assert!(simulate_spmv(&symgs, &config).is_err());
        let wrong = Alf::from_coo(&coo, 4, AlfLayout::Streaming).unwrap();
        assert!(simulate_spmv(&wrong, &config).is_err());
    }
}

/// Simulates one forward SymGS sweep with double-buffered GEMV streaming:
/// within a block row the GEMVs overlap memory and compute, the D-SymGS
/// recurrence waits for all of them (it consumes their link-stack results),
/// and the next block row's streaming proceeds under the recurrence.
///
/// # Errors
///
/// * [`SimError::LayoutMismatch`] unless `a` uses the SymGS layout.
/// * [`SimError::BlockWidthMismatch`] when the block width differs from ω.
pub fn simulate_symgs_forward(a: &Alf, config: &SimConfig) -> Result<DesReport> {
    if a.layout() != AlfLayout::SymGs {
        return Err(SimError::LayoutMismatch {
            expected: "symgs",
            found: "streaming",
        });
    }
    if a.omega() != config.omega {
        return Err(SimError::BlockWidthMismatch {
            engine: config.omega,
            matrix: a.omega(),
        });
    }
    let omega = config.omega;
    let mut mem_free = 0u64;
    let mut fcu_free = config.fcu_sum_latency();
    let mut mem_busy = 0u64;
    let mut fcu_busy = 0u64;
    let mut blocks = 0u64;

    let block_rows = a.block_rows();
    let mut per_row: Vec<Vec<&alrescha_sparse::AlfBlock>> = vec![Vec::new(); block_rows];
    for block in a.blocks() {
        per_row[block.block_row()].push(block);
    }

    for (br, row_blocks) in per_row.iter().enumerate() {
        let valid_rows = omega.min(a.rows().saturating_sub(br * omega)) as u64;
        let mut row_gemv_done = fcu_free;
        let mut has_diag = false;
        for block in row_blocks {
            blocks += 1;
            let stream = config.stream_cycles(omega * omega);
            let mem_done = mem_free + stream;
            mem_free = mem_done;
            mem_busy += stream;
            if block.kind() == alrescha_sparse::BlockKind::Diagonal {
                has_diag = true;
                continue; // handled after the GEMVs, per the reordering
            }
            let start = fcu_free.max(mem_done);
            fcu_free = start + omega as u64;
            fcu_busy += omega as u64;
            row_gemv_done = fcu_free;
        }
        if has_diag {
            // D-SymGS waits for this row's GEMV results plus the drain,
            // then runs its serial recurrence (padding rows do no steps).
            let drain = config.fcu_sum_latency();
            let recurrence = valid_rows * config.dsymgs_step_latency();
            let start = row_gemv_done.max(fcu_free) + drain;
            fcu_free = start + recurrence;
            fcu_busy += recurrence;
        }
    }

    Ok(DesReport {
        cycles: fcu_free + config.fcu_sum_latency(),
        memory_busy: mem_busy,
        fcu_busy,
        blocks,
    })
}

#[cfg(test)]
mod symgs_des_tests {
    use super::*;
    use alrescha_sparse::gen;

    #[test]
    fn symgs_des_is_bounded_by_the_analytic_engine() {
        let config = SimConfig::paper();
        for class in gen::ScienceClass::ALL {
            let coo = class.generate(300, 5);
            let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
            let des = simulate_symgs_forward(&a, &config).unwrap();

            let mut engine = crate::engine::Engine::new(config.clone());
            let b = vec![1.0; coo.rows()];
            let mut x = vec![0.0; coo.cols()];
            let analytic = engine.run_symgs_forward(&a, &b, &mut x).unwrap().cycles;

            assert!(
                des.cycles <= analytic + des.blocks, // per-block rounding slack
                "{}: des {} analytic {}",
                class.name(),
                des.cycles,
                analytic
            );
            assert!(
                analytic <= 2 * des.cycles,
                "{}: analytic {} des {}",
                class.name(),
                analytic,
                des.cycles
            );
        }
    }

    #[test]
    fn recurrence_dominates_on_banded_structure() {
        let coo = gen::banded(400, 3, 1);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let des = simulate_symgs_forward(&a, &SimConfig::paper()).unwrap();
        // The D-SymGS recurrence serializes: FCU busy time dominated by
        // 15-cycle steps, and memory is mostly idle relative to it.
        assert!(des.fcu_busy > des.memory_busy);
    }
}
