//! Per-event energy model (28 nm-class constants).
//!
//! The paper measures energy by modeling every microarchitectural component
//! in a TSMC 28 nm standard-cell + SRAM library (§5.2). We reproduce the
//! methodology with per-event energy constants of the same technology class
//! (double-precision FPU, small SRAM, GDDR5 interface). Figure 19 is
//! normalized, so only the *ratios* between compute, SRAM, and DRAM energy
//! matter — and those ratios (DRAM ≫ FPU ≫ SRAM access) are what the
//! constants encode.

/// Per-event energies in picojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// One double-precision multiply in an FCU ALU.
    pub alu_op_pj: f64,
    /// One reduce-engine operation (add or min) in the tree.
    pub re_op_pj: f64,
    /// One RCU processing-element operation (LUT-based mul/div/add/sub).
    pub pe_op_pj: f64,
    /// One local-cache access (1 KB SRAM, per 64-bit word).
    pub cache_access_pj: f64,
    /// One FIFO/stack buffer push or pop (small register-file class).
    pub buffer_op_pj: f64,
    /// One byte moved over the memory interface (GDDR5-class ~14 pJ/bit
    /// system energy ⇒ ~112 pJ/B; we charge the device+interface share).
    pub dram_byte_pj: f64,
    /// One configuration-switch event (rewriting the RCU switch from the
    /// configuration table).
    pub reconfig_pj: f64,
}

impl EnergyModel {
    /// 28 nm-class defaults.
    pub fn tsmc28() -> Self {
        EnergyModel {
            alu_op_pj: 20.0,
            re_op_pj: 8.0,
            pe_op_pj: 10.0,
            cache_access_pj: 1.2,
            buffer_op_pj: 0.6,
            dram_byte_pj: 60.0,
            reconfig_pj: 25.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::tsmc28()
    }
}

/// Event counters accumulated by the simulator, convertible to joules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnergyCounters {
    /// FCU ALU operations.
    pub alu_ops: u64,
    /// Reduce-engine operations.
    pub re_ops: u64,
    /// RCU PE operations.
    pub pe_ops: u64,
    /// Local-cache word accesses (reads + writes).
    pub cache_accesses: u64,
    /// FIFO/stack operations.
    pub buffer_ops: u64,
    /// Bytes streamed from or to memory.
    pub dram_bytes: u64,
    /// RCU reconfiguration events.
    pub reconfigs: u64,
}

impl EnergyCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &EnergyCounters) {
        self.alu_ops += other.alu_ops;
        self.re_ops += other.re_ops;
        self.pe_ops += other.pe_ops;
        self.cache_accesses += other.cache_accesses;
        self.buffer_ops += other.buffer_ops;
        self.dram_bytes += other.dram_bytes;
        self.reconfigs += other.reconfigs;
    }

    /// Total energy in joules under `model`.
    pub fn total_joules(&self, model: &EnergyModel) -> f64 {
        self.breakdown_joules(model).iter().map(|(_, j)| j).sum()
    }

    /// Per-component energy in joules: `(component, joules)` pairs.
    pub fn breakdown_joules(&self, model: &EnergyModel) -> Vec<(&'static str, f64)> {
        let pj = 1e-12;
        vec![
            ("alu", self.alu_ops as f64 * model.alu_op_pj * pj),
            ("reduce", self.re_ops as f64 * model.re_op_pj * pj),
            ("pe", self.pe_ops as f64 * model.pe_op_pj * pj),
            (
                "cache",
                self.cache_accesses as f64 * model.cache_access_pj * pj,
            ),
            ("buffer", self.buffer_ops as f64 * model.buffer_op_pj * pj),
            ("dram", self.dram_bytes as f64 * model.dram_byte_pj * pj),
            ("reconfig", self.reconfigs as f64 * model.reconfig_pj * pj),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_dominates_compute_per_value() {
        let m = EnergyModel::tsmc28();
        // Moving one 8-byte value costs more than computing with it.
        assert!(8.0 * m.dram_byte_pj > m.alu_op_pj + m.re_op_pj);
        // SRAM access is far cheaper than DRAM per value.
        assert!(m.cache_access_pj * 20.0 < 8.0 * m.dram_byte_pj);
    }

    #[test]
    fn totals_accumulate() {
        let m = EnergyModel::tsmc28();
        let c = EnergyCounters {
            alu_ops: 1000,
            dram_bytes: 64,
            ..Default::default()
        };
        let expect = (1000.0 * 20.0 + 64.0 * 60.0) * 1e-12;
        assert!((c.total_joules(&m) - expect).abs() < 1e-18);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = EnergyCounters {
            alu_ops: 1,
            re_ops: 2,
            ..Default::default()
        };
        let b = EnergyCounters {
            alu_ops: 10,
            cache_accesses: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.alu_ops, 11);
        assert_eq!(a.re_ops, 2);
        assert_eq!(a.cache_accesses, 5);
    }

    #[test]
    fn breakdown_has_all_components() {
        let c = EnergyCounters::new();
        let parts = c.breakdown_joules(&EnergyModel::tsmc28());
        assert_eq!(parts.len(), 7);
        assert!(parts.iter().all(|(_, j)| *j == 0.0));
    }
}
