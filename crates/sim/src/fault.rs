//! Deterministic fault injection for the ALRESCHA simulator.
//!
//! This module models transient and permanent hardware faults in the
//! accelerator datapath so that the detection and recovery machinery layered
//! on top (ABFT checksums, buffer-occupancy checks, retry/degrade policies)
//! can be exercised and measured:
//!
//! * **FCU lane faults** — a bit flip in one ALU lane's product before the
//!   reduction tree ([`FaultSite::FcuLane`]).
//! * **FCU tree faults** — a bit flip in the reduction-tree output
//!   ([`FaultSite::FcuTree`]).
//! * **RCU LIFO / FIFO drops** — an enqueue into the link stack or an
//!   operand FIFO is silently lost ([`FaultSite::RcuLifo`],
//!   [`FaultSite::RcuFifo`]).
//! * **Cache-line corruption** — a parity error on a hit line; the access is
//!   transparently converted into a miss and refetched
//!   ([`FaultSite::Cache`]).
//! * **Stuck-at memory faults** — a permanent corruption keyed by block
//!   address, so every stream of the same block re-corrupts the same word
//!   and retries cannot mask it ([`FaultSite::Memory`]).
//!
//! All randomness comes from a private SplitMix64 generator seeded by
//! [`FaultPlan::seed`]: identical plans driving identical workloads produce
//! identical fault streams, detection counts, and reports. An engine with no
//! injector attached pays nothing — every hook is behind an
//! `Option<FaultInjector>` that short-circuits to the pre-existing code path.

use std::fmt;
use std::sync::{Arc, Mutex};

/// Location classes where a fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultSite {
    /// A single ALU lane product inside the FCU.
    FcuLane,
    /// The output of the FCU's pipelined reduction tree.
    FcuTree,
    /// The RCU link stack (LIFO) connecting GEMV to D-SymGS.
    RcuLifo,
    /// An RCU operand FIFO (right-hand-side or diagonal stream).
    RcuFifo,
    /// A cache line whose parity check fails on read.
    Cache,
    /// A DRAM word with a permanent stuck-at bit.
    Memory,
    /// The D-SymGS block scheduler (a control fault: it stops issuing
    /// diagonal blocks, so the engine idles until the watchdog fires).
    Scheduler,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultSite::FcuLane => "FCU lane",
            FaultSite::FcuTree => "FCU reduction tree",
            FaultSite::RcuLifo => "RCU link stack",
            FaultSite::RcuFifo => "RCU operand FIFO",
            FaultSite::Cache => "cache line",
            FaultSite::Memory => "memory (stuck-at)",
            FaultSite::Scheduler => "D-SymGS block scheduler",
        };
        f.write_str(name)
    }
}

/// Per-run fault accounting, surfaced through
/// [`ExecutionReport`](crate::report::ExecutionReport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Faults injected into the datapath.
    pub injected: u64,
    /// Injected faults caught by a checksum, occupancy, or parity check.
    pub detected: u64,
    /// Detected faults masked by a successful refetch or retry.
    pub recovered: u64,
    /// Block-level retries spent on recovery.
    pub retries: u64,
    /// Kernel invocations that fell back to the reference CPU implementation.
    pub degraded: u64,
}

impl FaultCounters {
    /// True when any counter is non-zero.
    pub fn any(&self) -> bool {
        self.injected != 0
            || self.detected != 0
            || self.recovered != 0
            || self.retries != 0
            || self.degraded != 0
    }

    /// Accumulates `other` into `self` (used when merging reports).
    pub fn merge(&mut self, other: &FaultCounters) {
        self.injected += other.injected;
        self.detected += other.detected;
        self.recovered += other.recovered;
        self.retries += other.retries;
        self.degraded += other.degraded;
    }

    /// Component-wise difference `self - base` (per-run deltas against a
    /// snapshot taken at run start).
    pub fn delta(&self, base: &FaultCounters) -> FaultCounters {
        FaultCounters {
            injected: self.injected - base.injected,
            detected: self.detected - base.detected,
            recovered: self.recovered - base.recovered,
            retries: self.retries - base.retries,
            degraded: self.degraded - base.degraded,
        }
    }
}

/// What the engine does when a fault is detected and cannot be ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Abort the run with [`SimError::FaultDetected`](crate::SimError) on the
    /// first detection.
    #[default]
    FailFast,
    /// Re-execute the failing block from its checkpointed inputs up to
    /// `max_retries` times, charging `backoff_cycles` per attempt, then fail.
    Retry {
        /// Bounded number of re-executions per block.
        max_retries: u32,
        /// Stall cycles charged before each re-execution.
        backoff_cycles: u64,
    },
    /// Behave like [`RecoveryPolicy::Retry`]; when retries are exhausted the
    /// error escapes to the accelerator facade, which re-runs the kernel on
    /// the reference CPU implementation and records the degradation.
    DegradeToCpu {
        /// Bounded number of re-executions per block before degrading.
        max_retries: u32,
        /// Stall cycles charged before each re-execution.
        backoff_cycles: u64,
    },
}

impl RecoveryPolicy {
    /// Retries the engine may spend per block before giving up.
    pub fn max_retries(&self) -> u32 {
        match self {
            RecoveryPolicy::FailFast => 0,
            RecoveryPolicy::Retry { max_retries, .. }
            | RecoveryPolicy::DegradeToCpu { max_retries, .. } => *max_retries,
        }
    }

    /// Stall cycles charged before each re-execution.
    pub fn backoff_cycles(&self) -> u64 {
        match self {
            RecoveryPolicy::FailFast => 0,
            RecoveryPolicy::Retry { backoff_cycles, .. }
            | RecoveryPolicy::DegradeToCpu { backoff_cycles, .. } => *backoff_cycles,
        }
    }

    /// True when exhausted retries should fall back to the CPU kernel.
    pub fn degrades_to_cpu(&self) -> bool {
        matches!(self, RecoveryPolicy::DegradeToCpu { .. })
    }
}

/// A seed-driven description of which faults to inject, at what rates, and
/// when.
///
/// Rates are per-opportunity probabilities: `fcu_lane_rate` is drawn once per
/// `mac_row` on the protected GEMV datapath, drop rates once per buffer push,
/// `cache_fault_rate` once per cache hit, and `memory_stuck_rate` decides —
/// deterministically per block address — whether that block has a permanent
/// stuck-at bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault stream. Identical seeds (with identical workloads)
    /// reproduce identical faults.
    pub seed: u64,
    /// Probability per protected `mac_row` of flipping one lane product.
    pub fcu_lane_rate: f64,
    /// Probability per protected `mac_row` of flipping the reduced sum.
    pub fcu_tree_rate: f64,
    /// Probability per link-stack push of dropping the entry.
    pub lifo_drop_rate: f64,
    /// Probability per operand-FIFO push of dropping the entry.
    pub fifo_drop_rate: f64,
    /// Probability per cache hit of a parity error on the line.
    pub cache_fault_rate: f64,
    /// Probability per ω×ω block address of a permanent stuck-at bit.
    pub memory_stuck_rate: f64,
    /// Inclusive range of bit positions eligible for flips. The default
    /// `(48, 62)` keeps injected errors large enough (≥ 2⁻⁴ relative) for
    /// checksum detection while still spanning mantissa and exponent bits.
    pub bit_range: (u32, u32),
    /// Optional inclusive cycle window outside which transient faults are
    /// suppressed. Stuck-at faults are permanent and ignore the window.
    pub window: Option<(u64, u64)>,
    /// Permanent control fault: the D-SymGS block scheduler stops issuing
    /// diagonal blocks after this many have executed. The wedged engine
    /// makes no further progress, so the run terminates via the progress
    /// watchdog ([`SimError::Stalled`](crate::SimError::Stalled)) rather
    /// than a data check.
    pub dsymgs_stall_after: Option<u64>,
}

impl FaultPlan {
    /// A plan with every rate zero — attachable for instrumentation without
    /// perturbing results.
    pub fn inert(seed: u64) -> Self {
        FaultPlan {
            seed,
            fcu_lane_rate: 0.0,
            fcu_tree_rate: 0.0,
            lifo_drop_rate: 0.0,
            fifo_drop_rate: 0.0,
            cache_fault_rate: 0.0,
            memory_stuck_rate: 0.0,
            bit_range: (48, 62),
            window: None,
            dsymgs_stall_after: None,
        }
    }

    /// Sets the FCU lane-flip rate.
    pub fn with_fcu_lane_rate(mut self, rate: f64) -> Self {
        self.fcu_lane_rate = rate;
        self
    }

    /// Sets the FCU reduction-tree flip rate.
    pub fn with_fcu_tree_rate(mut self, rate: f64) -> Self {
        self.fcu_tree_rate = rate;
        self
    }

    /// Sets the link-stack drop rate.
    pub fn with_lifo_drop_rate(mut self, rate: f64) -> Self {
        self.lifo_drop_rate = rate;
        self
    }

    /// Sets the operand-FIFO drop rate.
    pub fn with_fifo_drop_rate(mut self, rate: f64) -> Self {
        self.fifo_drop_rate = rate;
        self
    }

    /// Sets the cache parity-error rate.
    pub fn with_cache_fault_rate(mut self, rate: f64) -> Self {
        self.cache_fault_rate = rate;
        self
    }

    /// Sets the per-block stuck-at probability.
    pub fn with_memory_stuck_rate(mut self, rate: f64) -> Self {
        self.memory_stuck_rate = rate;
        self
    }

    /// Restricts flips to bit positions `lo..=hi` (clamped to 0..=62).
    pub fn with_bit_range(mut self, lo: u32, hi: u32) -> Self {
        let hi = hi.min(62);
        let lo = lo.min(hi);
        self.bit_range = (lo, hi);
        self
    }

    /// Restricts transient faults to the inclusive cycle window.
    pub fn with_window(mut self, start: u64, end: u64) -> Self {
        self.window = Some((start, end));
        self
    }

    /// Wedges the D-SymGS block scheduler after `blocks` diagonal blocks.
    pub fn with_dsymgs_stall_after(mut self, blocks: u64) -> Self {
        self.dsymgs_stall_after = Some(blocks);
        self
    }

    /// True when no fault can ever fire under this plan.
    pub fn is_inert(&self) -> bool {
        self.fcu_lane_rate == 0.0
            && self.fcu_tree_rate == 0.0
            && self.lifo_drop_rate == 0.0
            && self.fifo_drop_rate == 0.0
            && self.cache_fault_rate == 0.0
            && self.memory_stuck_rate == 0.0
            && self.dsymgs_stall_after.is_none()
    }
}

/// Flips `bit` of `value`'s IEEE-754 representation.
///
/// Flipping a low mantissa bit of `0.0` would yield a denormal on the order
/// of 10⁻³⁰⁸ — numerically invisible and undetectable by any realistic
/// checksum tolerance. A fault striking a zero word is therefore modeled as
/// an exponent-bit upset, which is both physically plausible and observable.
pub fn flip_bit(value: f64, bit: u32) -> f64 {
    let bit = bit.min(62);
    if value == 0.0 {
        f64::from_bits((1u64 << 62) ^ (1u64 << bit))
    } else {
        f64::from_bits(value.to_bits() ^ (1u64 << bit))
    }
}

#[derive(Debug)]
struct InjectorCore {
    plan: FaultPlan,
    rng_state: u64,
    cycle: u64,
    /// FCU faults only fire while the engine has armed the injector, i.e. on
    /// the checksum-protected sum-reduction (GEMV) datapath. The D-SymGS
    /// recurrence and the min-reduce graph paths carry no ABFT protection,
    /// so injecting there would silently corrupt results.
    fcu_armed: bool,
    /// Faults injected in the current verification scope (one ω×ω block)
    /// that no check has confirmed yet.
    pending: u64,
    counters: FaultCounters,
}

impl InjectorCore {
    fn next_u64(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn in_window(&self) -> bool {
        match self.plan.window {
            Some((start, end)) => self.cycle >= start && self.cycle <= end,
            None => true,
        }
    }

    /// Draws against `rate`, avoiding any RNG consumption when the rate is
    /// zero so inert plans leave the fault stream untouched.
    fn fires(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.in_window() && self.unit() < rate
    }

    fn pick_bit(&mut self) -> u32 {
        let (lo, hi) = self.plan.bit_range;
        lo + (self.next_u64() % u64::from(hi - lo + 1)) as u32
    }
}

/// The mutable part of an injector's state, captured for checkpointing.
///
/// A solver checkpoint that embeds this snapshot can resume a faulted run
/// bit-identically: restoring `rng_state` replays the transient fault
/// stream from exactly where the checkpoint was taken, and restoring the
/// counters keeps the cumulative accounting consistent. The plan itself is
/// not part of the snapshot — the resuming caller re-arms the same plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectorSnapshot {
    /// SplitMix64 state of the transient fault stream.
    pub rng_state: u64,
    /// Last cycle published to the injector.
    pub cycle: u64,
    /// Cumulative fault counters at snapshot time.
    pub counters: FaultCounters,
}

/// Cloneable handle distributing one shared fault state across the engine
/// and its components (FCU, RCU, cache, memory stream).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    core: Arc<Mutex<InjectorCore>>,
}

impl FaultInjector {
    /// Creates an injector executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let seed = plan.seed;
        FaultInjector {
            core: Arc::new(Mutex::new(InjectorCore {
                plan,
                rng_state: seed,
                cycle: 0,
                fcu_armed: false,
                pending: 0,
                counters: FaultCounters::default(),
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorCore> {
        // A poisoned mutex means another thread panicked mid-injection; the
        // fault state is plain counters and PRNG words, all still valid.
        match self.core.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Publishes the engine's current cycle for window gating and error
    /// reporting.
    pub fn set_cycle(&self, cycle: u64) {
        self.lock().cycle = cycle;
    }

    /// Cycle most recently published via [`FaultInjector::set_cycle`].
    pub fn cycle(&self) -> u64 {
        self.lock().cycle
    }

    /// Arms or disarms FCU injection. The engine arms the injector only
    /// around checksum-protected GEMV blocks.
    pub fn set_fcu_armed(&self, armed: bool) {
        self.lock().fcu_armed = armed;
    }

    /// Opens a verification scope (one ω×ω block): faults injected from here
    /// on are attributed to the next checksum/occupancy check.
    pub fn begin_scope(&self) {
        self.lock().pending = 0;
    }

    /// Marks every pending fault in the current scope as detected and
    /// returns how many there were.
    pub fn confirm_detected(&self) -> u64 {
        let mut core = self.lock();
        let pending = core.pending;
        core.pending = 0;
        core.counters.detected += pending;
        pending
    }

    /// Records `count` previously detected faults as masked by a successful
    /// retry or refetch.
    pub fn note_recovered(&self, count: u64) {
        self.lock().counters.recovered += count;
    }

    /// Records one block-level retry.
    pub fn note_retry(&self) {
        self.lock().counters.retries += 1;
    }

    /// Records one kernel-level degradation to the CPU reference path.
    pub fn note_degraded(&self) {
        self.lock().counters.degraded += 1;
    }

    /// Possibly injects an FCU lane fault: returns the lane index and bit to
    /// flip in that lane's product. Fires only while armed.
    pub fn lane_fault(&self, omega: usize) -> Option<(usize, u32)> {
        let mut core = self.lock();
        if !core.fcu_armed || omega == 0 {
            return None;
        }
        let rate = core.plan.fcu_lane_rate;
        if !core.fires(rate) {
            return None;
        }
        let lane = (core.next_u64() % omega as u64) as usize;
        let bit = core.pick_bit();
        core.counters.injected += 1;
        core.pending += 1;
        Some((lane, bit))
    }

    /// Possibly injects a reduction-tree fault: returns the bit to flip in
    /// the reduced sum. Fires only while armed.
    pub fn tree_fault(&self) -> Option<u32> {
        let mut core = self.lock();
        if !core.fcu_armed {
            return None;
        }
        let rate = core.plan.fcu_tree_rate;
        if !core.fires(rate) {
            return None;
        }
        let bit = core.pick_bit();
        core.counters.injected += 1;
        core.pending += 1;
        Some(bit)
    }

    /// Returns true when a link-stack push should be dropped.
    pub fn lifo_drop(&self) -> bool {
        let mut core = self.lock();
        let rate = core.plan.lifo_drop_rate;
        if core.fires(rate) {
            core.counters.injected += 1;
            core.pending += 1;
            true
        } else {
            false
        }
    }

    /// Returns true when an operand-FIFO push should be dropped.
    pub fn fifo_drop(&self) -> bool {
        let mut core = self.lock();
        let rate = core.plan.fifo_drop_rate;
        if core.fires(rate) {
            core.counters.injected += 1;
            core.pending += 1;
            true
        } else {
            false
        }
    }

    /// Possibly injects a parity error on a cache hit. Parity detection and
    /// the refetch are transparent, so the fault is counted as injected,
    /// detected, and recovered in one step; the caller only pays miss
    /// timing.
    pub fn cache_parity_on_hit(&self) -> bool {
        let mut core = self.lock();
        let rate = core.plan.cache_fault_rate;
        if core.fires(rate) {
            core.counters.injected += 1;
            core.counters.detected += 1;
            core.counters.recovered += 1;
            true
        } else {
            false
        }
    }

    /// Records that a stuck-at corruption was applied to a streamed payload
    /// (once per execution attempt over the afflicted block).
    pub fn note_stuck_applied(&self) {
        let mut core = self.lock();
        core.counters.injected += 1;
        core.pending += 1;
    }

    /// Queries the permanent stuck-at fault map for the block at
    /// `(block_row, block_col)` with `words` payload words. The decision and
    /// the afflicted word/bit derive from a hash of the address and the plan
    /// seed — not from the transient stream — so the same block faults
    /// identically on every stream and every retry. This is a pure query;
    /// callers record application via
    /// [`FaultInjector::note_stuck_applied`].
    pub fn memory_stuck(&self, block_row: usize, block_col: usize, words: usize) -> Option<(usize, u32)> {
        let core = self.lock();
        let rate = core.plan.memory_stuck_rate;
        if rate <= 0.0 || words == 0 {
            return None;
        }
        let mut h = core
            .plan
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((block_row as u64).wrapping_mul(0xD134_2543_DE82_EF95))
            .wrapping_add((block_col as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if unit >= rate {
            return None;
        }
        let word = (h.wrapping_mul(0xFF51_AFD7_ED55_8CCD) % words as u64) as usize;
        let (lo, hi) = core.plan.bit_range;
        let bit = lo + (h.wrapping_mul(0xC4CE_B9FE_1A85_EC53) % u64::from(hi - lo + 1)) as u32;
        Some((word, bit))
    }

    /// True when the plan wedges the D-SymGS scheduler at or before
    /// `blocks_done` diagonal blocks. A pure query — no RNG consumption,
    /// no counter movement (see [`FaultInjector::note_scheduler_wedge`]).
    pub fn scheduler_wedged(&self, blocks_done: u64) -> bool {
        self.lock()
            .plan
            .dsymgs_stall_after
            .is_some_and(|limit| blocks_done >= limit)
    }

    /// Records the scheduler wedge as one injected fault caught by the
    /// progress watchdog (control faults have no retry path: the engine
    /// surfaces [`SimError::Stalled`](crate::SimError::Stalled) directly).
    pub fn note_scheduler_wedge(&self) {
        let mut core = self.lock();
        core.counters.injected += 1;
        core.counters.detected += 1;
    }

    /// Captures the injector's mutable state for a checkpoint.
    pub fn snapshot(&self) -> InjectorSnapshot {
        let core = self.lock();
        InjectorSnapshot {
            rng_state: core.rng_state,
            cycle: core.cycle,
            counters: core.counters,
        }
    }

    /// Restores state previously captured by [`FaultInjector::snapshot`].
    pub fn restore(&self, snap: &InjectorSnapshot) {
        let mut core = self.lock();
        core.rng_state = snap.rng_state;
        core.cycle = snap.cycle;
        core.counters = snap.counters;
        core.pending = 0;
        core.fcu_armed = false;
    }

    /// Snapshot of the cumulative counters.
    pub fn counters(&self) -> FaultCounters {
        self.lock().counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::inert(7));
        inj.set_fcu_armed(true);
        for _ in 0..1000 {
            assert!(inj.lane_fault(8).is_none());
            assert!(inj.tree_fault().is_none());
            assert!(!inj.lifo_drop());
            assert!(!inj.fifo_drop());
            assert!(!inj.cache_parity_on_hit());
            assert!(inj.memory_stuck(3, 4, 64).is_none());
        }
        assert_eq!(inj.counters(), FaultCounters::default());
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let plan = FaultPlan::inert(99)
            .with_fcu_lane_rate(0.3)
            .with_fcu_tree_rate(0.2)
            .with_lifo_drop_rate(0.1);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        a.set_fcu_armed(true);
        b.set_fcu_armed(true);
        for _ in 0..500 {
            assert_eq!(a.lane_fault(8), b.lane_fault(8));
            assert_eq!(a.tree_fault(), b.tree_fault());
            assert_eq!(a.lifo_drop(), b.lifo_drop());
        }
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn disarmed_fcu_never_fires_and_consumes_no_randomness() {
        let plan = FaultPlan::inert(5).with_fcu_lane_rate(1.0).with_lifo_drop_rate(0.5);
        let armed = FaultInjector::new(plan.clone());
        let disarmed = FaultInjector::new(plan);
        armed.set_fcu_armed(true);
        for _ in 0..100 {
            assert!(armed.lane_fault(4).is_some());
            assert!(disarmed.lane_fault(4).is_none());
        }
        // The disarmed injector's transient stream is unperturbed: its drop
        // decisions match a fresh injector's.
        let fresh = FaultInjector::new(FaultPlan::inert(5).with_lifo_drop_rate(0.5));
        for _ in 0..100 {
            assert_eq!(disarmed.lifo_drop(), fresh.lifo_drop());
        }
    }

    #[test]
    fn window_gates_transient_faults() {
        let plan = FaultPlan::inert(11).with_fcu_tree_rate(1.0).with_window(100, 200);
        let inj = FaultInjector::new(plan);
        inj.set_fcu_armed(true);
        inj.set_cycle(50);
        assert!(inj.tree_fault().is_none());
        inj.set_cycle(150);
        assert!(inj.tree_fault().is_some());
        inj.set_cycle(201);
        assert!(inj.tree_fault().is_none());
    }

    #[test]
    fn memory_stuck_is_persistent_per_address() {
        let plan = FaultPlan::inert(13).with_memory_stuck_rate(0.5);
        let inj = FaultInjector::new(plan);
        let mut afflicted = 0;
        for br in 0..32 {
            for bc in 0..32 {
                let first = inj.memory_stuck(br, bc, 64);
                // Every re-query (a retry, a later iteration) sees the same
                // fault at the same word and bit.
                assert_eq!(first, inj.memory_stuck(br, bc, 64));
                if first.is_some() {
                    afflicted += 1;
                }
            }
        }
        assert!(afflicted > 0, "rate 0.5 over 1024 blocks must afflict some");
        assert!(afflicted < 1024, "rate 0.5 must leave some blocks clean");
    }

    #[test]
    fn scope_accounting_tracks_detection_and_recovery() {
        let plan = FaultPlan::inert(17).with_fcu_tree_rate(1.0);
        let inj = FaultInjector::new(plan);
        inj.set_fcu_armed(true);
        inj.begin_scope();
        assert!(inj.tree_fault().is_some());
        assert!(inj.tree_fault().is_some());
        let caught = inj.confirm_detected();
        assert_eq!(caught, 2);
        inj.note_recovered(caught);
        inj.note_retry();
        let c = inj.counters();
        assert_eq!(c.injected, 2);
        assert_eq!(c.detected, 2);
        assert_eq!(c.recovered, 2);
        assert_eq!(c.retries, 1);
    }

    #[test]
    fn scheduler_wedge_fires_at_threshold() {
        let inj = FaultInjector::new(FaultPlan::inert(3).with_dsymgs_stall_after(5));
        assert!(!inj.scheduler_wedged(4));
        assert!(inj.scheduler_wedged(5));
        assert!(inj.scheduler_wedged(100));
        let clean = FaultInjector::new(FaultPlan::inert(3));
        assert!(!clean.scheduler_wedged(u64::MAX));
        assert!(!FaultPlan::inert(3).with_dsymgs_stall_after(0).is_inert());
    }

    #[test]
    fn snapshot_restore_replays_identical_fault_stream() {
        let plan = FaultPlan::inert(21).with_fcu_tree_rate(0.4);
        let inj = FaultInjector::new(plan);
        inj.set_fcu_armed(true);
        for _ in 0..37 {
            let _ = inj.tree_fault();
        }
        let snap = inj.snapshot();
        let tail: Vec<Option<u32>> = (0..50).map(|_| {
            inj.set_fcu_armed(true);
            inj.tree_fault()
        }).collect();
        let counters_after = inj.counters();
        inj.restore(&snap);
        let replay: Vec<Option<u32>> = (0..50).map(|_| {
            inj.set_fcu_armed(true);
            inj.tree_fault()
        }).collect();
        assert_eq!(tail, replay);
        assert_eq!(inj.counters(), counters_after);
    }

    #[test]
    fn flip_bit_is_involutive_and_handles_zero() {
        let v = 3.375_f64;
        assert_eq!(flip_bit(flip_bit(v, 52), 52), v);
        assert_ne!(flip_bit(v, 48), v);
        // Zero becomes a large, detectable value rather than a denormal.
        assert!(flip_bit(0.0, 48).abs() > 1.0);
    }

    #[test]
    fn counters_merge_and_delta() {
        let a = FaultCounters { injected: 3, detected: 2, recovered: 1, retries: 4, degraded: 0 };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.injected, 6);
        assert_eq!(b.delta(&a), a);
        assert!(a.any());
        assert!(!FaultCounters::default().any());
    }
}
