//! The reconfigurable compute unit (RCU): processing elements, the
//! configurable switch, and the real-time reconfiguration machinery
//! (§4.3–§4.4, Figures 9 and 11).
//!
//! Only the RCU is reconfigured between data paths; its switch rewires the
//! connections between the local cache, the FIFOs, the link stack, and the
//! PEs. Reconfiguration happens while the FCU's reduction tree drains, so
//! its latency is hidden whenever the drain is at least as long as the
//! switch-programming time.

use crate::config::SimConfig;
use crate::energy::EnergyCounters;
use crate::fault::FaultInjector;

/// The data-path personality the RCU switch is currently wired for
/// (Figure 9 b/c/d show D-SymGS, GEMV, and D-PR).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataPathKind {
    /// General matrix-vector multiply on a locally-dense block.
    Gemv,
    /// Data-dependent dense SymGS recurrence.
    DSymGs,
    /// Dense PageRank step (divide + gather).
    DPr,
    /// Dense BFS step (min-plus with unit weights).
    DBfs,
    /// Dense SSSP step (min-plus with edge weights).
    DSssp,
}

/// Statistics about reconfiguration behaviour over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconfigStats {
    /// Number of data-path switches performed.
    pub switches: u64,
    /// Cycles of switch latency hidden under reduction-tree drains.
    pub hidden_cycles: u64,
    /// Cycles of switch latency that could not be hidden (exposed stall).
    pub exposed_cycles: u64,
}

/// The reconfigurable compute unit.
#[derive(Debug, Clone)]
pub struct Rcu {
    pe_latency: u64,
    /// Cycles to rewrite the configurable switch from the configuration
    /// table. Small by design — the unit is "lightweight" precisely so this
    /// fits under the drain window.
    switch_program_cycles: u64,
    current: Option<DataPathKind>,
    stats: ReconfigStats,
    counters: EnergyCounters,
    faults: Option<FaultInjector>,
}

impl Rcu {
    /// Builds the RCU from a configuration. The switch-programming time is
    /// modeled at the cache access latency (the configuration table is a
    /// small local SRAM).
    pub fn new(config: &SimConfig) -> Self {
        Rcu {
            pe_latency: config.pe_latency,
            switch_program_cycles: config.cache_latency,
            current: None,
            stats: ReconfigStats::default(),
            counters: EnergyCounters::new(),
            faults: None,
        }
    }

    /// Attaches (or detaches) a fault injector for buffer-drop modeling.
    pub fn attach_injector(&mut self, injector: Option<FaultInjector>) {
        self.faults = injector;
    }

    /// Returns the unit to its just-built state: switch unwired, lifetime
    /// statistics and energy counters zeroed, injector detached. A recycled
    /// RCU is indistinguishable from [`Rcu::new`] — the first `configure`
    /// after a reset counts a switch again, exactly like a fresh unit.
    pub fn reset(&mut self) {
        self.current = None;
        self.stats = ReconfigStats::default();
        self.counters = EnergyCounters::new();
        self.faults = None;
    }

    /// Currently configured data path, if any.
    pub fn current(&self) -> Option<DataPathKind> {
        self.current
    }

    /// Switches the RCU to `kind`, overlapping with a reduction-tree drain
    /// of `drain_cycles`. Returns the *exposed* stall cycles (0 whenever the
    /// drain is long enough, which it is under the paper configuration).
    pub fn configure(&mut self, kind: DataPathKind, drain_cycles: u64) -> u64 {
        if self.current == Some(kind) {
            return 0;
        }
        self.current = Some(kind);
        self.stats.switches += 1;
        self.counters.reconfigs += 1;
        let hidden = self.switch_program_cycles.min(drain_cycles);
        let exposed = self.switch_program_cycles - hidden;
        self.stats.hidden_cycles += hidden;
        self.stats.exposed_cycles += exposed;
        exposed
    }

    /// One PE operation (LUT-based multiply/divide/add/subtract). Returns
    /// its latency in cycles and counts the event.
    pub fn pe_op(&mut self) -> u64 {
        self.counters.pe_ops += 1;
        self.pe_latency
    }

    /// Records a buffer (FIFO/stack) event for energy accounting.
    pub fn buffer_event(&mut self) {
        self.counters.buffer_ops += 1;
    }

    /// Records a link-stack (LIFO) push; returns true when the injector
    /// drops the entry in flight.
    pub fn link_push_event(&mut self) -> bool {
        self.counters.buffer_ops += 1;
        self.faults.as_ref().is_some_and(FaultInjector::lifo_drop)
    }

    /// Records an operand-FIFO push; returns true when the injector drops
    /// the entry in flight.
    pub fn fifo_push_event(&mut self) -> bool {
        self.counters.buffer_ops += 1;
        self.faults.as_ref().is_some_and(FaultInjector::fifo_drop)
    }

    /// Reconfiguration statistics so far.
    pub fn stats(&self) -> ReconfigStats {
        self.stats
    }

    /// Energy-event counters accumulated so far.
    pub fn counters(&self) -> &EnergyCounters {
        &self.counters
    }

    /// Takes and resets the counters (stats are preserved).
    pub fn take_counters(&mut self) -> EnergyCounters {
        std::mem::take(&mut self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rcu() -> Rcu {
        Rcu::new(&SimConfig::paper())
    }

    #[test]
    fn first_configure_counts_as_switch() {
        let mut r = rcu();
        let exposed = r.configure(DataPathKind::Gemv, 12);
        assert_eq!(exposed, 0);
        assert_eq!(r.stats().switches, 1);
        assert_eq!(r.current(), Some(DataPathKind::Gemv));
    }

    #[test]
    fn same_kind_is_free() {
        let mut r = rcu();
        r.configure(DataPathKind::Gemv, 12);
        let exposed = r.configure(DataPathKind::Gemv, 12);
        assert_eq!(exposed, 0);
        assert_eq!(r.stats().switches, 1);
    }

    #[test]
    fn switch_latency_hides_under_drain() {
        let mut r = rcu();
        r.configure(DataPathKind::Gemv, 12);
        let exposed = r.configure(DataPathKind::DSymGs, 12);
        assert_eq!(exposed, 0);
        assert_eq!(r.stats().hidden_cycles, 8); // 4 + 4 across two switches
        assert_eq!(r.stats().exposed_cycles, 0);
    }

    #[test]
    fn short_drain_exposes_stall() {
        let mut r = rcu();
        r.configure(DataPathKind::Gemv, 1);
        assert_eq!(r.stats().hidden_cycles, 1);
        assert_eq!(r.stats().exposed_cycles, 3);
        let exposed = r.configure(DataPathKind::DSymGs, 0);
        assert_eq!(exposed, 4);
    }

    #[test]
    fn pe_op_counts_and_returns_latency() {
        let mut r = rcu();
        assert_eq!(r.pe_op(), 3);
        assert_eq!(r.counters().pe_ops, 1);
    }

    #[test]
    fn reconfig_events_feed_energy() {
        let mut r = rcu();
        r.configure(DataPathKind::Gemv, 12);
        r.configure(DataPathKind::DSymGs, 12);
        assert_eq!(r.counters().reconfigs, 2);
        let taken = r.take_counters();
        assert_eq!(taken.reconfigs, 2);
        assert_eq!(r.counters().reconfigs, 0);
        assert_eq!(r.stats().switches, 2, "stats survive counter reset");
    }
}
