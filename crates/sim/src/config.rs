//! Simulator configuration — Table 5 of the paper.

/// Microarchitecture and memory parameters of the simulated accelerator.
///
/// [`SimConfig::paper`] reproduces Table 5 exactly; the fields are public so
/// ablation benches can sweep them (block width ω in §5.2, cache geometry,
/// bandwidth).
///
/// # Example
///
/// ```
/// use alrescha_sim::SimConfig;
///
/// let cfg = SimConfig::paper();
/// assert_eq!(cfg.omega, 8);
/// // 288 GB/s at 2.5 GHz moves 14.4 eight-byte values per cycle.
/// assert!((cfg.values_per_cycle() - 14.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Core clock in GHz (Table 5: 2.5 GHz, chosen so the compute logic
    /// follows the memory streaming rate).
    pub clock_ghz: f64,
    /// Block width ω = number of parallel ALU lanes (§5.2 picks 8).
    pub omega: usize,
    /// ALU (multiplier) latency in cycles (Table 5: 3).
    pub alu_latency: u64,
    /// Reduce-engine latency for `sum` in cycles (Table 5: 3).
    pub re_sum_latency: u64,
    /// Reduce-engine latency for `min` in cycles (Table 5: 1).
    pub re_min_latency: u64,
    /// RCU processing-element latency in cycles (LUT-based mul/div/add/sub;
    /// modeled at the ALU latency).
    pub pe_latency: u64,
    /// Local cache capacity in bytes (Table 5: 1 KB).
    pub cache_bytes: usize,
    /// Cache line size in bytes (Table 5: 64 B).
    pub cache_line_bytes: usize,
    /// Cache access latency in cycles (Table 5: 4).
    pub cache_latency: u64,
    /// Cache associativity in ways (1 = direct-mapped; the paper's 1 KB
    /// cache is small enough that this is a design-space knob, exercised
    /// by the cache-geometry ablation).
    pub cache_ways: usize,
    /// Off-chip memory bandwidth in GB/s (Table 5: 288 GB/s GDDR5).
    pub mem_bandwidth_gbps: f64,
    /// Latency of a demand miss to memory, in cycles (GDDR5-class ~100 ns
    /// at 2.5 GHz is ~250 cycles; streaming traffic hides it, only demand
    /// fetches of vector operands pay it).
    pub mem_latency_cycles: u64,
    /// Ablation knob: when true, the reduction-tree drain at a data-path
    /// switch overlaps with the next data path's first block (an
    /// aggressive-forwarding design the paper's drain-hidden
    /// reconfiguration suggests as the limit case). The paper
    /// configuration leaves this off.
    pub overlap_drain: bool,
}

impl SimConfig {
    /// The exact Table 5 configuration.
    pub fn paper() -> Self {
        SimConfig {
            clock_ghz: 2.5,
            omega: 8,
            alu_latency: 3,
            re_sum_latency: 3,
            re_min_latency: 1,
            pe_latency: 3,
            cache_bytes: 1024,
            cache_line_bytes: 64,
            cache_latency: 4,
            cache_ways: 1,
            mem_bandwidth_gbps: 288.0,
            mem_latency_cycles: 250,
            overlap_drain: false,
        }
    }

    /// Same configuration with a different block width (the §5.2 ablation).
    #[must_use]
    pub fn with_omega(mut self, omega: usize) -> Self {
        self.omega = omega;
        self
    }

    /// Same configuration with drain overlap toggled (the drain ablation).
    #[must_use]
    pub fn with_overlap_drain(mut self, overlap: bool) -> Self {
        self.overlap_drain = overlap;
        self
    }

    /// Same configuration with a different cache associativity.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds the number of lines.
    #[must_use]
    pub fn with_cache_ways(mut self, ways: usize) -> Self {
        assert!(
            ways >= 1 && ways <= self.cache_lines(),
            "invalid associativity"
        );
        self.cache_ways = ways;
        self
    }

    /// Payload values (8-byte doubles) the memory can deliver per core cycle.
    pub fn values_per_cycle(&self) -> f64 {
        self.mem_bandwidth_gbps / (self.clock_ghz * 8.0)
    }

    /// Cycles needed to stream `values` doubles at full bandwidth, at least 1.
    pub fn stream_cycles(&self, values: usize) -> u64 {
        if values == 0 {
            return 0;
        }
        (values as f64 / self.values_per_cycle()).ceil().max(1.0) as u64
    }

    /// Depth of the FCU reduction tree: ⌈log₂ ω⌉ reduce stages.
    pub fn tree_depth(&self) -> u32 {
        self.omega.next_power_of_two().trailing_zeros().max(1)
    }

    /// Pipeline latency of one FCU pass with a `sum` reduction: the ALU
    /// stage plus the full reduction tree. This is also the drain time that
    /// hides RCU reconfiguration (§4.4).
    pub fn fcu_sum_latency(&self) -> u64 {
        self.alu_latency + u64::from(self.tree_depth()) * self.re_sum_latency
    }

    /// Pipeline latency of one FCU pass with a `min` reduction.
    pub fn fcu_min_latency(&self) -> u64 {
        self.alu_latency + u64::from(self.tree_depth()) * self.re_min_latency
    }

    /// Latency of one D-SymGS recurrence step: the newly produced `xⱼ` must
    /// traverse a multiplier, the reduction tree, and the RCU PE (subtract/
    /// divide) before `xⱼ₊₁`'s combine can complete (Figure 10).
    pub fn dsymgs_step_latency(&self) -> u64 {
        self.fcu_sum_latency() + self.pe_latency
    }

    /// Wall-clock seconds for a cycle count at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Number of cache lines.
    pub fn cache_lines(&self) -> usize {
        (self.cache_bytes / self.cache_line_bytes).max(1)
    }

    /// Values (doubles) per cache line.
    pub fn values_per_line(&self) -> usize {
        (self.cache_line_bytes / 8).max(1)
    }

    /// Capacity of the RCU link stack (LIFO) in `(lane, value)` entries.
    ///
    /// The LIFO buffers every GEMV partial result of one block row until the
    /// successive D-SymGS pops them (Figure 11), so it is provisioned with
    /// the same SRAM budget as the local cache: one 8-byte value per cache
    /// byte of tag+data overhead, i.e. `cache_bytes / 8` entries. A static
    /// schedule whose densest block row needs more than this spills the
    /// stack and stalls the pipeline — the `alverify` AL202 rule flags it.
    pub fn link_stack_capacity(&self) -> usize {
        (self.cache_bytes / 8).max(self.omega)
    }

    /// Capacity of each RCU operand FIFO (`b` and the extracted diagonal)
    /// in values: one ω-chunk, refilled per block row (§4.3's deterministic
    /// access order makes deeper buffering pointless).
    pub fn operand_fifo_capacity(&self) -> usize {
        self.omega
    }

    /// Cache capacity in values (doubles) — the per-block-row working-set
    /// budget the AL301 resource rule checks against.
    pub fn cache_values(&self) -> usize {
        self.cache_lines() * self.values_per_line()
    }

    /// Exposed (non-overlapped) cycles of one RCU switch reprogramming when
    /// `drain` cycles of FCU drain are available to hide it behind (§4.3:
    /// the switch loads its program from the local cache, `cache_latency`
    /// cycles, while the FCU drains). This is the same arithmetic
    /// `Rcu::configure` charges — exported so the alprove AL404 static
    /// cycle bound uses the engine's own constant instead of copying it.
    pub fn exposed_switch_cycles(&self, drain: u64) -> u64 {
        self.cache_latency.saturating_sub(drain)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table5() {
        let c = SimConfig::paper();
        assert_eq!(c.clock_ghz, 2.5);
        assert_eq!(c.alu_latency, 3);
        assert_eq!(c.re_sum_latency, 3);
        assert_eq!(c.re_min_latency, 1);
        assert_eq!(c.cache_bytes, 1024);
        assert_eq!(c.cache_line_bytes, 64);
        assert_eq!(c.cache_latency, 4);
        assert_eq!(c.mem_bandwidth_gbps, 288.0);
    }

    #[test]
    #[allow(clippy::identity_op)] // spelled as alu + depth·re to mirror the formula
    fn derived_quantities() {
        let c = SimConfig::paper();
        assert_eq!(c.tree_depth(), 3);
        assert_eq!(c.fcu_sum_latency(), 3 + 3 * 3);
        assert_eq!(c.fcu_min_latency(), 3 + 3 * 1);
        assert_eq!(c.dsymgs_step_latency(), 12 + 3);
        assert_eq!(c.cache_lines(), 16);
        assert_eq!(c.values_per_line(), 8);
    }

    #[test]
    fn stream_cycles_rounds_up() {
        let c = SimConfig::paper();
        assert_eq!(c.stream_cycles(0), 0);
        assert_eq!(c.stream_cycles(14), 1);
        assert_eq!(c.stream_cycles(15), 2);
        assert_eq!(c.stream_cycles(144), 10);
    }

    #[test]
    fn with_omega_changes_tree_depth() {
        let c = SimConfig::paper().with_omega(32);
        assert_eq!(c.omega, 32);
        assert_eq!(c.tree_depth(), 5);
    }

    #[test]
    fn rcu_buffer_bounds_derive_from_table5() {
        let c = SimConfig::paper();
        // 1 KB SRAM budget at 8 bytes/entry.
        assert_eq!(c.link_stack_capacity(), 128);
        // One ω-chunk per operand FIFO.
        assert_eq!(c.operand_fifo_capacity(), 8);
        assert_eq!(c.cache_values(), 128);
        // A degenerate tiny cache still holds one chunk of link entries.
        let mut tiny = SimConfig::paper();
        tiny.cache_bytes = 8;
        assert_eq!(tiny.link_stack_capacity(), tiny.omega);
    }

    #[test]
    fn cycles_to_seconds() {
        let c = SimConfig::paper();
        assert!((c.cycles_to_seconds(2_500_000_000) - 1.0).abs() < 1e-12);
    }
}
