//! The D-SymGS operand shift register (Figure 10).
//!
//! "We insert the new variables by shifting the old one to the right": the
//! multiplier inputs of the D-SymGS data path hold the ω vector operands;
//! at each recurrence step the freshly computed `xⱼᵗ` is pushed into the
//! first multiplier while the older operands shift one lane right, evicting
//! the stalest `xᵗ⁻¹` value. Combined with the storage format's reversed
//! upper-triangle order, this keeps every multiplier fed without any
//! addressable access.

/// The ω-lane operand shift register feeding the D-SymGS multipliers.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftRegister {
    lanes: Vec<f64>,
    shifts: u64,
}

impl ShiftRegister {
    /// Initializes the lanes with the `xᵗ⁻¹` chunk (lane 0 holds the
    /// element the first recurrence step consumes first).
    pub fn load(initial: &[f64]) -> Self {
        ShiftRegister {
            lanes: initial.to_vec(),
            shifts: 0,
        }
    }

    /// Lane width ω.
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// Current lane contents (lane 0 first).
    pub fn lanes(&self) -> &[f64] {
        &self.lanes
    }

    /// One recurrence step: pushes the new `xⱼᵗ` into lane 0, shifting
    /// every older operand one lane right and returning the evicted value.
    ///
    /// # Panics
    ///
    /// Panics on an empty register.
    pub fn push(&mut self, new_x: f64) -> f64 {
        assert!(!self.lanes.is_empty(), "shift register has no lanes");
        self.lanes.rotate_right(1);
        let evicted = std::mem::replace(&mut self.lanes[0], new_x);
        self.shifts += 1;
        evicted
    }

    /// Number of shifts performed (one per recurrence step).
    pub fn shifts(&self) -> u64 {
        self.shifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_right_and_evicts_the_stalest() {
        // Figure 10's example: lanes hold x1..x3 from iteration t-1; the
        // newly computed x0^t enters at lane 0 and x3^{t-1} falls off.
        let mut reg = ShiftRegister::load(&[1.0, 2.0, 3.0]);
        let evicted = reg.push(10.0);
        assert_eq!(evicted, 3.0);
        assert_eq!(reg.lanes(), &[10.0, 1.0, 2.0]);
        let evicted = reg.push(20.0);
        assert_eq!(evicted, 2.0);
        assert_eq!(reg.lanes(), &[20.0, 10.0, 1.0]);
        assert_eq!(reg.shifts(), 2);
    }

    #[test]
    fn after_width_steps_only_current_iteration_values_remain() {
        let mut reg = ShiftRegister::load(&[1.0; 4]);
        for k in 0..4 {
            reg.push(100.0 + f64::from(k));
        }
        assert_eq!(reg.lanes(), &[103.0, 102.0, 101.0, 100.0]);
    }

    #[test]
    fn rotation_matches_the_reversed_storage_order() {
        // The recurrence for row j multiplies lane k by the value at
        // logical column (j - 1 - k) mod window for the x^t part — the
        // reversed (r2l) order the format stores upper-triangle rows in.
        // This test demonstrates the correspondence on a 3-step window:
        // after step j, lane k holds x^t[j - k].
        let mut reg = ShiftRegister::load(&[-1.0, -2.0, -3.0]); // x^{t-1}
        let xt = [7.0, 8.0, 9.0];
        for &v in &xt {
            reg.push(v);
        }
        for (k, lane) in reg.lanes().iter().enumerate() {
            assert_eq!(*lane, xt[xt.len() - 1 - k]);
        }
    }
}
