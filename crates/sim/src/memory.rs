//! Streaming memory model.
//!
//! The locally-dense format lets the accelerator use "the whole available
//! memory bandwidth only for streaming payload" (§4.5): there is no runtime
//! meta-data traffic. The model therefore charges streaming at the full
//! configured bandwidth and tracks bytes so the engine can report bandwidth
//! utilization (the secondary axis of Figure 15).

use crate::config::SimConfig;
use crate::fault::FaultInjector;

/// Bandwidth-accounting memory stream.
#[derive(Debug, Clone)]
pub struct MemoryStream {
    values_per_cycle: f64,
    bytes_streamed: u64,
    busy_cycles: u64,
    faults: Option<FaultInjector>,
}

impl MemoryStream {
    /// Builds the stream model from a configuration.
    pub fn new(config: &SimConfig) -> Self {
        MemoryStream {
            values_per_cycle: config.values_per_cycle(),
            bytes_streamed: 0,
            busy_cycles: 0,
            faults: None,
        }
    }

    /// Attaches (or detaches) a fault injector for stuck-at modeling.
    pub fn attach_injector(&mut self, injector: Option<FaultInjector>) {
        self.faults = injector;
    }

    /// Streams one ω×ω block payload (`values` doubles) addressed by its
    /// block coordinates. Returns the transfer cycles plus any permanent
    /// stuck-at fault afflicting the payload, as `(word_index, bit)` — the
    /// same block address yields the same fault on every stream, so retries
    /// cannot mask it.
    pub fn stream_block(
        &mut self,
        block_row: usize,
        block_col: usize,
        values: usize,
    ) -> (u64, Option<(usize, u32)>) {
        let cycles = self.stream_values(values);
        let stuck = self
            .faults
            .as_ref()
            .and_then(|inj| inj.memory_stuck(block_row, block_col, values));
        (cycles, stuck)
    }

    /// Streams `values` doubles; returns the cycles the transfer occupies
    /// the memory interface.
    pub fn stream_values(&mut self, values: usize) -> u64 {
        if values == 0 {
            return 0;
        }
        let cycles = (values as f64 / self.values_per_cycle).ceil().max(1.0) as u64;
        self.bytes_streamed += values as u64 * 8;
        self.busy_cycles += cycles;
        cycles
    }

    /// Records a demand transfer of raw bytes (vector spills, result
    /// write-backs) without a cycle charge — callers charge latency
    /// explicitly when it is not hidden by streaming.
    pub fn record_bytes(&mut self, bytes: u64) {
        self.bytes_streamed += bytes;
    }

    /// Total bytes moved.
    pub fn bytes_streamed(&self) -> u64 {
        self.bytes_streamed
    }

    /// Cycles the interface spent busy streaming.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Achieved / peak bandwidth over an execution of `total_cycles`.
    ///
    /// Returns 0.0 for an empty execution; the ratio is capped at 1.0.
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        let peak_bytes = self.values_per_cycle * 8.0 * total_cycles as f64;
        (self.bytes_streamed as f64 / peak_bytes).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_charges_bandwidth_limited_cycles() {
        let mut m = MemoryStream::new(&SimConfig::paper());
        // 144 values at 14.4 values/cycle = 10 cycles.
        assert_eq!(m.stream_values(144), 10);
        assert_eq!(m.bytes_streamed(), 144 * 8);
        assert_eq!(m.busy_cycles(), 10);
    }

    #[test]
    fn utilization_is_one_when_streaming_back_to_back() {
        let mut m = MemoryStream::new(&SimConfig::paper());
        let cycles = m.stream_values(1440);
        assert!((m.utilization(cycles) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_halves_with_idle_time() {
        let mut m = MemoryStream::new(&SimConfig::paper());
        let cycles = m.stream_values(1440);
        let util = m.utilization(cycles * 2);
        assert!((util - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_cases() {
        let mut m = MemoryStream::new(&SimConfig::paper());
        assert_eq!(m.stream_values(0), 0);
        assert_eq!(m.utilization(0), 0.0);
        m.record_bytes(64);
        assert_eq!(m.bytes_streamed(), 64);
        assert_eq!(m.busy_cycles(), 0);
    }
}
