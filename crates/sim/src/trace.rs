//! Execution tracing: an optional event log of what the engine did, in
//! order.
//!
//! Enable with [`crate::engine::Engine::enable_tracing`]; retrieve with
//! [`crate::engine::Engine::take_trace`]. The trace is the ground truth for
//! ordering invariants (all GEMVs of a block row precede its D-SymGS;
//! reconfigurations happen exactly at data-path boundaries) and a
//! debugging aid for new data paths.

use crate::fault::FaultSite;
use crate::rcu::DataPathKind;

/// One logged engine event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A kernel run started.
    KernelBegin {
        /// Kernel name.
        kernel: &'static str,
    },
    /// The RCU switch was rewired.
    Reconfigure {
        /// New data-path personality.
        to: DataPathKind,
        /// Stall cycles not hidden by the drain (0 under Table 5).
        exposed: u64,
    },
    /// A locally-dense block began executing.
    BlockBegin {
        /// Block-row coordinate.
        block_row: usize,
        /// Block-column coordinate.
        block_col: usize,
        /// Data path executing it.
        kind: DataPathKind,
    },
    /// A locally-dense block finished executing. Pairs with the closest
    /// preceding [`TraceEvent::BlockBegin`]; carries the cycles charged to
    /// the block (memory stream + compute, excluding recovery redo).
    BlockEnd {
        /// Cycles the block cost.
        cycles: u64,
    },
    /// The fault injector fired and the ABFT check (or a structural guard)
    /// caught it — emitted at the detection point, before any retry.
    FaultInjected {
        /// Hardware site the fault hit.
        site: FaultSite,
    },
    /// A recovery sequence (checksum-triggered retry loop) started.
    RecoveryBegin {
        /// Site whose fault triggered the recovery.
        site: FaultSite,
    },
    /// The recovery sequence finished.
    RecoveryEnd {
        /// Whether the retry converged to a clean result (`false` means
        /// the error escalated — fail-fast or degrade-to-CPU).
        recovered: bool,
        /// Redo cycles charged to recovery while it ran.
        cycles: u64,
    },
    /// A solver checkpoint was serialized while the engine was programmed —
    /// recorded between kernel runs by the host solver loop.
    CheckpointWrite {
        /// Encoded checkpoint size.
        bytes: u64,
    },
    /// A kernel run finished.
    KernelEnd {
        /// Total cycles of the run.
        cycles: u64,
    },
}

/// An event log. Wraps a `Vec` so the engine can cheaply no-op when
/// tracing is disabled.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Takes the events, leaving the trace empty but still enabled.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drops every event at index `len` and beyond — used by the telemetry
    /// capture to consume exactly one run's worth of events.
    pub fn truncate(&mut self, len: usize) {
        self.events.truncate(len);
    }
}

/// Reconstructs cycle positions for one run's trace events by a cumulative
/// walk: [`TraceEvent::BlockEnd`], [`TraceEvent::RecoveryEnd`], and the
/// exposed portion of [`TraceEvent::Reconfigure`] advance the cycle cursor
/// (matching how the engine charges them), everything else is a point at
/// the current cursor. The result feeds [`alrescha_obs::DeviceTimeline`],
/// whose exporter scales cycle positions into the run's host-time window.
pub fn to_device_events(events: &[TraceEvent]) -> Vec<alrescha_obs::DeviceEvent> {
    use alrescha_obs::{ArgValue, DeviceEvent};
    let mut out = Vec::new();
    let mut cum = 0u64;
    let mut open_block: Option<(String, u64)> = None;
    let mut open_recovery: Option<(FaultSite, u64)> = None;
    for event in events {
        match *event {
            TraceEvent::KernelBegin { .. } | TraceEvent::KernelEnd { .. } => {}
            TraceEvent::Reconfigure { to, exposed } => {
                out.push(DeviceEvent::Point {
                    name: format!("reconfigure \u{2192} {to:?}"),
                    cycle: cum,
                    args: vec![("exposed_cycles".to_owned(), ArgValue::Int(exposed))],
                });
                cum += exposed;
            }
            TraceEvent::BlockBegin {
                block_row,
                block_col,
                kind,
            } => {
                open_block = Some((format!("block {block_row},{block_col} ({kind:?})"), cum));
            }
            TraceEvent::BlockEnd { cycles } => {
                let (name, start) = open_block
                    .take()
                    .unwrap_or_else(|| ("block".to_owned(), cum));
                cum += cycles;
                out.push(DeviceEvent::Span {
                    name,
                    start_cycle: start,
                    end_cycle: cum,
                    args: vec![("cycles".to_owned(), ArgValue::Int(cycles))],
                });
            }
            TraceEvent::FaultInjected { site } => {
                out.push(DeviceEvent::Point {
                    name: format!("fault: {site}"),
                    cycle: cum,
                    args: Vec::new(),
                });
            }
            TraceEvent::RecoveryBegin { site } => {
                open_recovery = Some((site, cum));
            }
            TraceEvent::RecoveryEnd { recovered, cycles } => {
                let (site, start) = open_recovery.take().unwrap_or((FaultSite::Memory, cum));
                cum += cycles;
                out.push(DeviceEvent::Span {
                    name: format!("recovery: {site}"),
                    start_cycle: start,
                    end_cycle: cum,
                    args: vec![(
                        "recovered".to_owned(),
                        ArgValue::Text(if recovered { "yes" } else { "no" }.to_owned()),
                    )],
                });
            }
            TraceEvent::CheckpointWrite { bytes } => {
                out.push(DeviceEvent::Point {
                    name: "checkpoint write".to_owned(),
                    cycle: cum,
                    args: vec![("bytes".to_owned(), ArgValue::Int(bytes))],
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(TraceEvent::KernelBegin { kernel: "spmv" });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new();
        t.enable();
        t.record(TraceEvent::KernelBegin { kernel: "spmv" });
        t.record(TraceEvent::KernelEnd { cycles: 10 });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0], TraceEvent::KernelBegin { kernel: "spmv" });
    }

    #[test]
    fn runtime_events_record_and_truncate() {
        let mut t = Trace::new();
        t.enable();
        t.record(TraceEvent::FaultInjected {
            site: FaultSite::FcuLane,
        });
        t.record(TraceEvent::RecoveryBegin {
            site: FaultSite::FcuLane,
        });
        t.record(TraceEvent::RecoveryEnd {
            recovered: true,
            cycles: 12,
        });
        t.record(TraceEvent::CheckpointWrite { bytes: 256 });
        t.record(TraceEvent::BlockEnd { cycles: 9 });
        assert_eq!(t.events().len(), 5);
        t.truncate(2);
        assert_eq!(
            t.events(),
            [
                TraceEvent::FaultInjected {
                    site: FaultSite::FcuLane
                },
                TraceEvent::RecoveryBegin {
                    site: FaultSite::FcuLane
                },
            ]
        );
        assert!(t.is_enabled());
    }

    #[test]
    fn take_drains_but_stays_enabled() {
        let mut t = Trace::new();
        t.enable();
        t.record(TraceEvent::KernelEnd { cycles: 1 });
        let events = t.take();
        assert_eq!(events.len(), 1);
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
    }
}
