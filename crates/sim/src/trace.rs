//! Execution tracing: an optional event log of what the engine did, in
//! order.
//!
//! Enable with [`crate::engine::Engine::enable_tracing`]; retrieve with
//! [`crate::engine::Engine::take_trace`]. The trace is the ground truth for
//! ordering invariants (all GEMVs of a block row precede its D-SymGS;
//! reconfigurations happen exactly at data-path boundaries) and a
//! debugging aid for new data paths.

use crate::rcu::DataPathKind;

/// One logged engine event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A kernel run started.
    KernelBegin {
        /// Kernel name.
        kernel: &'static str,
    },
    /// The RCU switch was rewired.
    Reconfigure {
        /// New data-path personality.
        to: DataPathKind,
        /// Stall cycles not hidden by the drain (0 under Table 5).
        exposed: u64,
    },
    /// A locally-dense block began executing.
    BlockBegin {
        /// Block-row coordinate.
        block_row: usize,
        /// Block-column coordinate.
        block_col: usize,
        /// Data path executing it.
        kind: DataPathKind,
    },
    /// A kernel run finished.
    KernelEnd {
        /// Total cycles of the run.
        cycles: u64,
    },
}

/// An event log. Wraps a `Vec` so the engine can cheaply no-op when
/// tracing is disabled.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Takes the events, leaving the trace empty but still enabled.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(TraceEvent::KernelBegin { kernel: "spmv" });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new();
        t.enable();
        t.record(TraceEvent::KernelBegin { kernel: "spmv" });
        t.record(TraceEvent::KernelEnd { cycles: 10 });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0], TraceEvent::KernelBegin { kernel: "spmv" });
    }

    #[test]
    fn take_drains_but_stays_enabled() {
        let mut t = Trace::new();
        t.enable();
        t.record(TraceEvent::KernelEnd { cycles: 1 });
        let events = t.take();
        assert_eq!(events.len(), 1);
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
    }
}
