//! Cycle-level simulator of the ALRESCHA accelerator microarchitecture
//! (HPCA 2020, §4.3–§4.4).
//!
//! The simulator models every component of Figure 9 with the latencies of
//! Table 5:
//!
//! * [`fcu::Fcu`] — the fixed compute unit: an ω-wide ALU array feeding a
//!   pipelined reduction tree (sum or min reduce engines).
//! * [`rcu::Rcu`] — the reconfigurable compute unit: PEs and the
//!   configurable switch whose reprogramming hides under the tree drain.
//! * [`cache::LocalCache`] — the 1 KB / 64 B-line / 4-cycle local cache for
//!   the addressable vector operands.
//! * [`buffers`] — FIFOs and the GEMV→D-SymGS link stack.
//! * [`memory::MemoryStream`] — 288 GB/s payload-only streaming and
//!   bandwidth-utilization accounting.
//! * [`energy`] — 28 nm-class per-event energy accounting.
//!
//! [`engine::Engine`] drives these components through a locally-dense
//! ([`alrescha_sparse::Alf`]) matrix, executing SpMV, SymGS sweeps, BFS,
//! SSSP, and PageRank both *functionally* (results are bit-compatible with
//! the reference kernels up to floating-point reassociation) and in
//! *timing* (cycles, bandwidth, energy, reconfiguration statistics).
//!
//! # Example
//!
//! ```
//! use alrescha_sim::{Engine, SimConfig};
//! use alrescha_sparse::{alf::AlfLayout, gen, Alf};
//!
//! let coo = gen::stencil27(2);
//! let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs)?;
//! let b = vec![1.0; a.rows()];
//! let mut x = vec![0.0; a.cols()];
//! let mut engine = Engine::new(SimConfig::paper());
//! let report = engine.run_symgs(&a, &b, &mut x)?;
//! assert!(report.reconfig.switches > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod buffers;
pub mod cache;
pub mod config;
pub mod des;
pub mod energy;
pub mod engine;
pub mod error;
pub mod fault;
pub mod fcu;
pub mod memory;
pub mod pipeline;
pub mod rcu;
pub mod report;
pub mod runtime;
pub mod shift;
pub mod trace;

pub use config::SimConfig;
pub use energy::{EnergyCounters, EnergyModel};
pub use engine::{Engine, PageRankConfig, UNREACHED};
pub use error::{Result, SimError};
pub use fault::{
    FaultCounters, FaultInjector, FaultPlan, FaultSite, InjectorSnapshot, RecoveryPolicy,
};
pub use rcu::DataPathKind;
pub use report::{BreakerStats, ExecutionReport};
pub use runtime::ExecBudget;
