//! Execution budgets for deadline-guarded runs.
//!
//! Long jobs on the simulated accelerator need three protections that the
//! bare engine does not provide: a **cycle budget** (the analytic clock may
//! legitimately run long on a huge matrix, but a caller with an SLA wants a
//! typed error instead of an open-ended run), a **wall-clock budget** (the
//! host simulation itself must not spin forever), and a **progress
//! watchdog** (a wedged block scheduler advances neither clock, so budgets
//! alone would never fire). [`ExecBudget`] bundles all three;
//! [`Engine::set_budget`](crate::Engine::set_budget) arms them for every
//! subsequent run.
//!
//! The default budget is fully open: no limits, watchdog at
//! [`DEFAULT_WATCHDOG_CYCLES`]. Budget checks are pure comparisons on the
//! run's cycle counter — an unarmed budget costs two `Option` tests per
//! block.

use std::time::Duration;

/// Cycles of zero forward progress after which the watchdog declares a
/// stall when no explicit window is configured. Sized at 2¹⁶ cycles —
/// ~26 µs of device time at the paper's 2.5 GHz clock, three orders of
/// magnitude above the longest legitimate gap between scheduled blocks
/// (a full ω×ω D-SymGS recurrence plus a drain is a few hundred cycles).
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 1 << 16;

/// Cycle / wall-clock limits and watchdog window for one engine run.
///
/// # Example
///
/// ```
/// use alrescha_sim::ExecBudget;
/// use std::time::Duration;
///
/// let budget = ExecBudget::cycles(1_000_000)
///     .with_wall(Duration::from_secs(30))
///     .with_watchdog(4096);
/// assert_eq!(budget.max_cycles, Some(1_000_000));
/// assert_eq!(budget.effective_watchdog(), 4096);
/// assert!(!budget.is_unlimited());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecBudget {
    /// Hard ceiling on simulated device cycles; exceeding it returns
    /// [`SimError::DeadlineExceeded`](crate::SimError::DeadlineExceeded)
    /// with `budget = "cycle"`.
    pub max_cycles: Option<u64>,
    /// Hard ceiling on host wall-clock time for the run; exceeding it
    /// returns [`SimError::DeadlineExceeded`](crate::SimError::DeadlineExceeded)
    /// with `budget = "wall-clock"`.
    pub max_wall: Option<Duration>,
    /// Cycles of zero forward progress before the watchdog declares a
    /// stall. `None` uses [`DEFAULT_WATCHDOG_CYCLES`].
    pub watchdog_cycles: Option<u64>,
}

impl ExecBudget {
    /// A fully open budget: no limits, default watchdog window.
    pub fn none() -> Self {
        ExecBudget::default()
    }

    /// A budget limited to `max` device cycles.
    pub fn cycles(max: u64) -> Self {
        ExecBudget {
            max_cycles: Some(max),
            ..ExecBudget::default()
        }
    }

    /// Adds a wall-clock limit.
    #[must_use]
    pub fn with_wall(mut self, max: Duration) -> Self {
        self.max_wall = Some(max);
        self
    }

    /// Overrides the watchdog window (cycles of zero progress tolerated
    /// before [`SimError::Stalled`](crate::SimError::Stalled) fires).
    #[must_use]
    pub fn with_watchdog(mut self, cycles: u64) -> Self {
        self.watchdog_cycles = Some(cycles);
        self
    }

    /// The watchdog window in effect (configured or default).
    pub fn effective_watchdog(&self) -> u64 {
        self.watchdog_cycles.unwrap_or(DEFAULT_WATCHDOG_CYCLES)
    }

    /// True when neither a cycle nor a wall-clock limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_cycles.is_none() && self.max_wall.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_open() {
        let b = ExecBudget::none();
        assert!(b.is_unlimited());
        assert_eq!(b.effective_watchdog(), DEFAULT_WATCHDOG_CYCLES);
    }

    #[test]
    fn builders_compose() {
        let b = ExecBudget::cycles(500)
            .with_wall(Duration::from_millis(10))
            .with_watchdog(64);
        assert_eq!(b.max_cycles, Some(500));
        assert_eq!(b.max_wall, Some(Duration::from_millis(10)));
        assert_eq!(b.effective_watchdog(), 64);
        assert!(!b.is_unlimited());
    }

    #[test]
    fn wall_only_budget_is_limited() {
        let b = ExecBudget::none().with_wall(Duration::from_secs(1));
        assert!(!b.is_unlimited());
        assert_eq!(b.max_cycles, None);
    }
}
