//! Simulator error types.

use std::fmt;

/// Convenience alias for simulator results.
pub type Result<T> = std::result::Result<T, SimError>;

/// Errors raised by the accelerator engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The matrix was formatted with the wrong [`alrescha_sparse::alf::AlfLayout`]
    /// for the requested kernel.
    LayoutMismatch {
        /// Layout the kernel needs.
        expected: &'static str,
        /// Layout it was handed.
        found: &'static str,
    },
    /// Operand shapes do not agree.
    DimensionMismatch {
        /// Expected length/shape.
        expected: usize,
        /// Provided length/shape.
        found: usize,
    },
    /// The matrix block width does not match the engine's ω lanes.
    BlockWidthMismatch {
        /// Engine lanes.
        engine: usize,
        /// Matrix block width.
        matrix: usize,
    },
    /// A structural requirement is violated (e.g. zero diagonal in SymGS).
    Structure(alrescha_sparse::Error),
    /// An iterative driver exhausted its iteration budget.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
    },
    /// An injected fault was detected and could not be recovered within the
    /// active [`RecoveryPolicy`](crate::fault::RecoveryPolicy).
    FaultDetected {
        /// Where the fault struck.
        site: crate::fault::FaultSite,
        /// Engine cycle at which detection gave up.
        cycle: u64,
    },
    /// Computation produced a non-finite value from finite inputs (or was
    /// handed non-finite inputs) — not recoverable by retrying.
    NumericalBreakdown {
        /// Which check tripped (e.g. `"gemv checksum"`).
        context: &'static str,
        /// Engine cycle at the point of detection.
        cycle: u64,
    },
    /// The run exceeded its [`ExecBudget`](crate::runtime::ExecBudget)
    /// before completing.
    DeadlineExceeded {
        /// Which limit tripped: `"cycle"` or `"wall-clock"`.
        budget: &'static str,
        /// Engine cycle at which the budget expired.
        cycle: u64,
    },
    /// The progress watchdog observed no forward progress for a full
    /// watchdog window (e.g. a wedged D-SymGS block scheduler).
    Stalled {
        /// Which scheduler or queue stopped advancing.
        site: &'static str,
        /// Engine cycle at which the watchdog fired.
        cycle: u64,
        /// Consecutive cycles without progress when it fired.
        idle_cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::LayoutMismatch { expected, found } => {
                write!(
                    f,
                    "matrix layout mismatch: kernel needs {expected}, found {found}"
                )
            }
            SimError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "operand length mismatch: expected {expected}, found {found}"
                )
            }
            SimError::BlockWidthMismatch { engine, matrix } => write!(
                f,
                "block width mismatch: engine has {engine} lanes, matrix uses {matrix}"
            ),
            SimError::Structure(e) => write!(f, "matrix structure: {e}"),
            SimError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            SimError::FaultDetected { site, cycle } => {
                write!(f, "unrecovered fault at {site} (cycle {cycle})")
            }
            SimError::NumericalBreakdown { context, cycle } => {
                write!(f, "numerical breakdown in {context} (cycle {cycle})")
            }
            SimError::DeadlineExceeded { budget, cycle } => {
                write!(f, "{budget} budget exceeded at cycle {cycle}")
            }
            SimError::Stalled {
                site,
                cycle,
                idle_cycles,
            } => {
                write!(
                    f,
                    "stalled: {site} made no progress for {idle_cycles} cycles (watchdog fired at cycle {cycle})"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Structure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<alrescha_sparse::Error> for SimError {
    fn from(e: alrescha_sparse::Error) -> Self {
        SimError::Structure(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::LayoutMismatch {
            expected: "symgs",
            found: "streaming",
        };
        assert_eq!(
            e.to_string(),
            "matrix layout mismatch: kernel needs symgs, found streaming"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn fault_variants_display_site_and_cycle() {
        let e = SimError::FaultDetected {
            site: crate::fault::FaultSite::FcuTree,
            cycle: 42,
        };
        assert_eq!(
            e.to_string(),
            "unrecovered fault at FCU reduction tree (cycle 42)"
        );
        let e = SimError::NumericalBreakdown {
            context: "gemv checksum",
            cycle: 7,
        };
        assert_eq!(e.to_string(), "numerical breakdown in gemv checksum (cycle 7)");
    }

    #[test]
    fn runtime_variants_display_budget_and_site() {
        let e = SimError::DeadlineExceeded {
            budget: "cycle",
            cycle: 1000,
        };
        assert_eq!(e.to_string(), "cycle budget exceeded at cycle 1000");
        let e = SimError::Stalled {
            site: "d-symgs block scheduler",
            cycle: 65736,
            idle_cycles: 65536,
        };
        assert_eq!(
            e.to_string(),
            "stalled: d-symgs block scheduler made no progress for 65536 cycles (watchdog fired at cycle 65736)"
        );
    }

    #[test]
    fn structure_error_has_source() {
        use std::error::Error as _;
        let e = SimError::Structure(alrescha_sparse::Error::MissingDiagonal { row: 3 });
        assert!(e.source().is_some());
    }
}
