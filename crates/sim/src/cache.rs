//! The RCU's local cache (Table 5: 1 KB, 64-byte lines, 4-cycle access).
//!
//! The cache holds the addressable vector operands — `xᵗ⁻¹`, `xᵗ`, `b`, and
//! for SymGS the extracted diagonal of `A` (§4.3). The paper's key cache
//! claim is *locality by construction*: the locally-dense format consumes a
//! whole ω-element chunk of the vector per block, so the values of one cache
//! line are used in succeeding cycles and each element of the vector operand
//! is fetched only once per `n/ω` pass (§4.2).

use crate::config::SimConfig;
use crate::fault::FaultInjector;

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the word was resident.
    pub hit: bool,
    /// Cycles charged for this access (hit latency, plus the memory round
    /// trip on a miss).
    pub cycles: u64,
}

/// A set-associative local cache over 64-bit words, addressed by word
/// index (direct-mapped when `cache_ways` is 1, the paper configuration).
///
/// Word addresses are an abstract vector-element space managed by the
/// caller; the cache maps them onto lines of `values_per_line` words.
/// Replacement within a set is LRU.
#[derive(Debug, Clone)]
pub struct LocalCache {
    values_per_line: usize,
    num_sets: usize,
    ways: usize,
    hit_latency: u64,
    miss_latency: u64,
    /// `num_sets × ways` tags (`usize::MAX` = invalid), LRU-ordered within
    /// each set: position 0 is most recent.
    tags: Vec<usize>,
    hits: u64,
    misses: u64,
    writes: u64,
    faults: Option<FaultInjector>,
}

impl LocalCache {
    /// Builds the cache from a simulator configuration.
    pub fn new(config: &SimConfig) -> Self {
        let lines = config.cache_lines();
        let ways = config.cache_ways.clamp(1, lines);
        LocalCache {
            values_per_line: config.values_per_line(),
            num_sets: (lines / ways).max(1),
            ways,
            hit_latency: config.cache_latency,
            miss_latency: config.cache_latency + config.mem_latency_cycles,
            tags: vec![usize::MAX; lines],
            hits: 0,
            misses: 0,
            writes: 0,
            faults: None,
        }
    }

    /// Attaches (or detaches) a fault injector for parity-error modeling.
    pub fn attach_injector(&mut self, injector: Option<FaultInjector>) {
        self.faults = injector;
    }

    /// Probes a line address; returns hit/miss and makes the line resident
    /// and most-recently-used.
    fn touch(&mut self, line_addr: usize) -> bool {
        let set = line_addr % self.num_sets;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(pos) = slots.iter().position(|&t| t == line_addr) {
            slots[..=pos].rotate_right(1);
            true
        } else {
            slots.rotate_right(1);
            slots[0] = line_addr;
            false
        }
    }

    /// Reads one word; fills the line on a miss.
    ///
    /// With a fault injector attached, a hit line may suffer a parity error:
    /// detection is transparent and the line is refetched, so the access is
    /// accounted (and billed) as a miss.
    pub fn read(&mut self, word_addr: usize) -> CacheAccess {
        let hit = self.touch(word_addr / self.values_per_line);
        if hit {
            if let Some(inj) = &self.faults {
                if inj.cache_parity_on_hit() {
                    self.misses += 1;
                    return CacheAccess {
                        hit: false,
                        cycles: self.miss_latency,
                    };
                }
            }
            self.hits += 1;
            CacheAccess {
                hit: true,
                cycles: self.hit_latency,
            }
        } else {
            self.misses += 1;
            CacheAccess {
                hit: false,
                cycles: self.miss_latency,
            }
        }
    }

    /// Writes one word (write-allocate: the line becomes resident).
    pub fn write(&mut self, word_addr: usize) -> CacheAccess {
        let hit = self.touch(word_addr / self.values_per_line);
        self.writes += 1;
        CacheAccess {
            hit,
            cycles: self.hit_latency,
        }
    }

    /// Invalidates every line (e.g. between kernels).
    pub fn flush(&mut self) {
        self.tags.fill(usize::MAX);
    }

    /// Returns the cache to its just-built state: contents flushed, hit and
    /// miss counters zeroed, injector detached. Keeps the tag storage
    /// allocation (geometry is config-derived and unchanged).
    pub fn reset(&mut self) {
        self.flush();
        self.hits = 0;
        self.misses = 0;
        self.writes = 0;
        self.faults = None;
    }

    /// Read hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Read misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Writes so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses + self.writes
    }

    /// Read hit rate in `[0, 1]` (1.0 when no reads happened).
    pub fn hit_rate(&self) -> f64 {
        let reads = self.hits + self.misses;
        if reads == 0 {
            1.0
        } else {
            self.hits as f64 / reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> LocalCache {
        LocalCache::new(&SimConfig::paper())
    }

    #[test]
    fn first_access_misses_then_line_hits() {
        let mut c = cache();
        let miss = c.read(0);
        assert!(!miss.hit);
        assert_eq!(miss.cycles, 4 + 250);
        // Remaining 7 words of the 64-byte line are resident.
        for w in 1..8 {
            let a = c.read(w);
            assert!(a.hit, "word {w}");
            assert_eq!(a.cycles, 4);
        }
        assert_eq!(c.hits(), 7);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = cache();
        // 16 lines x 8 words = 128 words; word 0 and word 1024 share set 0 (1024/8=128, 128%16=0).
        assert!(!c.read(0).hit);
        assert!(!c.read(1024).hit);
        assert!(!c.read(0).hit, "line must have been evicted");
    }

    #[test]
    fn sequential_chunk_reads_have_high_hit_rate() {
        let mut c = cache();
        for w in 0..128 {
            c.read(w);
        }
        // 16 misses (one per line), 112 hits.
        assert_eq!(c.misses(), 16);
        assert!((c.hit_rate() - 112.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn write_allocates() {
        let mut c = cache();
        c.write(8);
        assert!(c.read(8).hit);
        assert_eq!(c.writes(), 1);
        assert_eq!(c.accesses(), 2);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = cache();
        c.read(0);
        c.flush();
        assert!(!c.read(0).hit);
    }

    #[test]
    fn empty_cache_hit_rate_is_one() {
        assert_eq!(cache().hit_rate(), 1.0);
    }

    #[test]
    fn parity_fault_converts_hit_into_recovered_miss() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut c = cache();
        let inj = FaultInjector::new(FaultPlan::inert(1).with_cache_fault_rate(1.0));
        c.attach_injector(Some(inj.clone()));
        assert!(!c.read(0).hit, "cold miss");
        let again = c.read(0);
        assert!(!again.hit, "parity error forces a refetch");
        assert_eq!(again.cycles, 4 + 250);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 0);
        let counters = inj.counters();
        assert_eq!(counters.injected, 1);
        assert_eq!(counters.detected, 1);
        assert_eq!(counters.recovered, 1);
    }
}

#[cfg(test)]
mod associativity_tests {
    use super::*;

    #[test]
    fn two_way_survives_the_direct_mapped_conflict() {
        let config = SimConfig::paper().with_cache_ways(2);
        let mut c = LocalCache::new(&config);
        // Words 0 and 1024 conflict in the direct-mapped layout; with two
        // ways both stay resident.
        assert!(!c.read(0).hit);
        assert!(!c.read(1024).hit);
        assert!(c.read(0).hit);
        assert!(c.read(1024).hit);
    }

    #[test]
    fn lru_evicts_the_oldest_way() {
        let config = SimConfig::paper().with_cache_ways(2);
        let mut c = LocalCache::new(&config);
        // Three lines mapping to one set (8 sets at 2 ways): line addresses
        // 0, 8, 16 all hit set 0.
        c.read(0); // line 0
        c.read(64); // line 8
        c.read(128); // line 16 -> evicts line 0 (LRU)
        assert!(!c.read(0).hit, "line 0 must have been evicted");
        assert!(c.read(128).hit, "line 16 must survive");
    }

    #[test]
    fn fully_associative_uses_whole_capacity() {
        let config = SimConfig::paper().with_cache_ways(16);
        let mut c = LocalCache::new(&config);
        for line in 0..16 {
            c.read(line * 8);
        }
        for line in 0..16 {
            assert!(c.read(line * 8).hit, "line {line}");
        }
        // The 17th distinct line evicts exactly one resident line.
        c.read(16 * 8);
        let resident = (0..17)
            .filter(|&l| {
                let mut probe = c.clone();
                probe.read(l * 8).hit
            })
            .count();
        assert_eq!(resident, 16);
    }

    #[test]
    #[should_panic(expected = "invalid associativity")]
    fn zero_ways_rejected() {
        let _ = SimConfig::paper().with_cache_ways(0);
    }
}
