//! The fixed compute unit (FCU): an ω-wide ALU array feeding a pipelined
//! reduction tree of reduce engines (§4.3, Figure 9).
//!
//! The FCU's interconnect never changes between data paths — only what the
//! tree reduces with (`sum` for GEMV/D-SymGS/D-PR, `min` for D-BFS/D-SSSP)
//! and where its inputs come from (the RCU). It is fully pipelined: one
//! ω-element row enters per cycle, so throughput tracks the memory stream
//! and only the first row of a data path pays the fill latency.

use crate::config::SimConfig;
use crate::energy::EnergyCounters;
use crate::fault::{self, FaultInjector};

/// Reduction operation performed by the reduce engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reduce {
    /// Tree of adders (GEMV, D-SymGS, D-PR).
    Sum,
    /// Tree of comparators (D-BFS, D-SSSP).
    Min,
}

/// The fixed compute unit.
#[derive(Debug, Clone)]
pub struct Fcu {
    omega: usize,
    alu_latency: u64,
    re_sum_latency: u64,
    re_min_latency: u64,
    tree_depth: u32,
    counters: EnergyCounters,
    faults: Option<FaultInjector>,
}

impl Fcu {
    /// Builds the FCU from a configuration.
    pub fn new(config: &SimConfig) -> Self {
        Fcu {
            omega: config.omega,
            alu_latency: config.alu_latency,
            re_sum_latency: config.re_sum_latency,
            re_min_latency: config.re_min_latency,
            tree_depth: config.tree_depth(),
            counters: EnergyCounters::new(),
            faults: None,
        }
    }

    /// Attaches (or detaches) a fault injector. Lane and tree faults fire
    /// only while the injector is armed for the FCU, which the engine does
    /// around checksum-protected GEMV blocks.
    pub fn attach_injector(&mut self, injector: Option<FaultInjector>) {
        self.faults = injector;
    }

    /// Returns the unit to its just-built state: energy counters zeroed and
    /// injector detached (the interconnect itself is fixed by design, so
    /// there is no wiring to reset).
    pub fn reset(&mut self) {
        self.counters = EnergyCounters::new();
        self.faults = None;
    }

    /// Number of parallel lanes (ω).
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// Pipeline fill latency for a given reduction.
    pub fn fill_latency(&self, reduce: Reduce) -> u64 {
        let re = match reduce {
            Reduce::Sum => self.re_sum_latency,
            Reduce::Min => self.re_min_latency,
        };
        self.alu_latency + u64::from(self.tree_depth) * re
    }

    /// One pipelined pass: multiplies `row` by `operand` element-wise and
    /// reduces with `Sum`. Counts ω ALU ops and ω−1 reduce ops.
    ///
    /// # Panics
    ///
    /// Panics if the slices are not ω long.
    pub fn mac_row(&mut self, row: &[f64], operand: &[f64]) -> f64 {
        assert_eq!(row.len(), self.omega, "row width must be omega");
        assert_eq!(operand.len(), self.omega, "operand width must be omega");
        self.counters.alu_ops += self.omega as u64;
        self.counters.re_ops += (self.omega - 1) as u64;
        let mut sum: f64 = row.iter().zip(operand).map(|(a, b)| a * b).sum();
        if let Some(inj) = &self.faults {
            if let Some((lane, bit)) = inj.lane_fault(self.omega) {
                // A single lane product is upset before it enters the tree.
                let clean = row[lane] * operand[lane];
                sum = sum - clean + fault::flip_bit(clean, bit);
            }
            if let Some(bit) = inj.tree_fault() {
                sum = fault::flip_bit(sum, bit);
            }
        }
        sum
    }

    /// One pipelined pass with an element-wise `op` and a `min` reduction
    /// (the D-BFS/D-SSSP shape of Table 1: operation `sum`, reduce `min`).
    /// Lanes whose matrix value is exactly zero carry no edge and are
    /// excluded from the reduction.
    ///
    /// Returns `f64::INFINITY` when every lane is inactive.
    ///
    /// # Panics
    ///
    /// Panics if the slices are not ω long.
    pub fn min_reduce_row(
        &mut self,
        row: &[f64],
        operand: &[f64],
        op: impl Fn(f64, f64) -> f64,
    ) -> f64 {
        assert_eq!(row.len(), self.omega, "row width must be omega");
        assert_eq!(operand.len(), self.omega, "operand width must be omega");
        self.counters.alu_ops += self.omega as u64;
        self.counters.re_ops += (self.omega - 1) as u64;
        row.iter()
            .zip(operand)
            .filter(|(a, _)| **a != 0.0)
            .map(|(a, b)| op(*a, *b))
            .fold(f64::INFINITY, f64::min)
    }

    /// Drains the pipeline — the window during which the RCU switch is
    /// reconfigured for the next data path (§4.4). Returns the drain cycles.
    pub fn drain(&self, reduce: Reduce) -> u64 {
        self.fill_latency(reduce)
    }

    /// Energy-event counters accumulated so far.
    pub fn counters(&self) -> &EnergyCounters {
        &self.counters
    }

    /// Takes and resets the counters.
    pub fn take_counters(&mut self) -> EnergyCounters {
        std::mem::take(&mut self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fcu() -> Fcu {
        Fcu::new(&SimConfig::paper())
    }

    #[test]
    fn mac_row_computes_dot_product() {
        let mut f = fcu();
        let row = [1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let x = [1.0; 8];
        assert_eq!(f.mac_row(&row, &x), 6.0);
        assert_eq!(f.counters().alu_ops, 8);
        assert_eq!(f.counters().re_ops, 7);
    }

    #[test]
    fn min_reduce_ignores_structural_zeros() {
        let mut f = fcu();
        let weights = [0.0, 2.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0];
        let dist = [0.0, 1.0, 0.0, 0.5, 0.0, 0.0, 0.0, 0.0];
        // Active lanes: 2.0+1.0 = 3.0 and 5.0+0.5 = 5.5 -> min 3.0.
        let got = f.min_reduce_row(&weights, &dist, |w, d| w + d);
        assert_eq!(got, 3.0);
    }

    #[test]
    fn min_reduce_of_empty_row_is_infinite() {
        let mut f = fcu();
        let got = f.min_reduce_row(&[0.0; 8], &[1.0; 8], |w, d| w + d);
        assert_eq!(got, f64::INFINITY);
    }

    #[test]
    fn fill_latency_matches_table5() {
        let f = fcu();
        assert_eq!(f.fill_latency(Reduce::Sum), 12);
        assert_eq!(f.fill_latency(Reduce::Min), 6);
        assert_eq!(f.drain(Reduce::Sum), 12);
    }

    #[test]
    #[should_panic(expected = "row width must be omega")]
    fn wrong_width_panics() {
        fcu().mac_row(&[1.0; 4], &[1.0; 4]);
    }

    #[test]
    fn armed_injector_perturbs_mac_row() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut f = fcu();
        let row = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let x = [1.0; 8];
        let clean = f.mac_row(&row, &x);
        let inj = FaultInjector::new(FaultPlan::inert(3).with_fcu_tree_rate(1.0));
        f.attach_injector(Some(inj.clone()));
        // Disarmed: identical result.
        assert_eq!(f.mac_row(&row, &x).to_bits(), clean.to_bits());
        inj.set_fcu_armed(true);
        assert_ne!(f.mac_row(&row, &x).to_bits(), clean.to_bits());
        assert_eq!(inj.counters().injected, 1);
    }

    #[test]
    fn take_counters_resets() {
        let mut f = fcu();
        f.mac_row(&[0.0; 8], &[0.0; 8]);
        let c = f.take_counters();
        assert_eq!(c.alu_ops, 8);
        assert_eq!(f.counters().alu_ops, 0);
    }
}
