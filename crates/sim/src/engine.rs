//! The execution engine: drives the FCU/RCU/cache/memory models through a
//! locally-dense matrix, producing both the functional result and a
//! cycle-accurate [`ExecutionReport`].
//!
//! # Timing model
//!
//! The engine charges, per locally-dense block, the maximum of the memory
//! cycles (payload streaming plus any vector-chunk fills) and the compute
//! cycles of the active data path:
//!
//! * **GEMV / D-BFS / D-SSSP / D-PR** — fully pipelined: one ω-element block
//!   row enters the FCU per cycle, so a block costs ω compute cycles.
//! * **D-SymGS** — the recurrence of Figure 10: each of the ω steps waits
//!   for the previous `xⱼ` to traverse multiplier → reduction tree → PE,
//!   i.e. [`SimConfig::dsymgs_step_latency`] cycles per step.
//!
//! Switching data paths drains the reduction tree; the RCU switch is
//! reprogrammed inside that drain window (§4.4), so only the drain itself
//! (and any exposed remainder) appears on the critical path.
//!
//! Vector-operand chunks are prefetched into the local cache under the
//! guidance of the configuration table (`Inx_in` is known ahead of time), so
//! a chunk miss consumes memory bandwidth but no exposed latency; cache
//! access time is tracked separately for the Figure 18 analysis.

use alrescha_sparse::{alf::AlfLayout, Alf, BlockKind};

use crate::buffers::{Fifo, LinkStack};
use crate::cache::LocalCache;
use crate::config::SimConfig;
use crate::energy::EnergyCounters;
use crate::error::{Result, SimError};
use crate::fault::{
    self, FaultCounters, FaultInjector, FaultPlan, FaultSite, InjectorSnapshot, RecoveryPolicy,
};
use crate::fcu::{Fcu, Reduce};
use crate::memory::MemoryStream;
use crate::rcu::{DataPathKind, Rcu};
use crate::report::{CacheStats, DataPathCounts, ExecutionReport};
use crate::runtime::ExecBudget;

/// Distance value marking an unreached vertex in graph kernels.
pub const UNREACHED: f64 = f64::INFINITY;

/// Options for the simulated PageRank driver.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor.
    pub damping: f64,
    /// L1 convergence threshold.
    pub tol: f64,
    /// Iteration budget.
    pub max_iters: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tol: 1e-10,
            max_iters: 200,
        }
    }
}

/// Cycle-level accelerator engine.
///
/// # Example
///
/// ```
/// use alrescha_sim::{Engine, SimConfig};
/// use alrescha_sparse::{alf::AlfLayout, gen, Alf};
///
/// let coo = gen::stencil27(2);
/// let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming)?;
/// let x = vec![1.0; a.cols()];
/// let mut engine = Engine::new(SimConfig::paper());
/// let (y, report) = engine.run_spmv(&a, &x)?;
/// assert_eq!(y.len(), a.rows());
/// assert!(report.cycles > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Engine {
    config: SimConfig,
    fcu: Fcu,
    rcu: Rcu,
    cache: LocalCache,
    trace: crate::trace::Trace,
    faults: Option<FaultInjector>,
    recovery: RecoveryPolicy,
    budget: ExecBudget,
    telemetry: Option<EngineTelemetry>,
}

/// Cached alobs handles: registered once at [`Engine::set_telemetry`] so
/// the per-block hot path is a gated atomic op, never a registry lookup.
#[derive(Debug)]
struct EngineTelemetry {
    tele: std::sync::Arc<alrescha_obs::Telemetry>,
    runs: alrescha_obs::Counter,
    cycles: alrescha_obs::Counter,
    blocks: alrescha_obs::Counter,
    cycles_per_block: alrescha_obs::Histogram,
    cache_read_hits: alrescha_obs::Counter,
    cache_read_misses: alrescha_obs::Counter,
    cache_writes: alrescha_obs::Counter,
    cache_hit_rate: alrescha_obs::Gauge,
    reconfig_switches: alrescha_obs::Counter,
    reconfig_exposed: alrescha_obs::Counter,
    reconfig_hidden: alrescha_obs::Counter,
    faults_detected: alrescha_obs::Counter,
    faults_recovered: alrescha_obs::Counter,
    fault_retries: alrescha_obs::Counter,
    recovery_cycles: alrescha_obs::Counter,
    checkpoint_writes: alrescha_obs::Counter,
    checkpoint_bytes: alrescha_obs::Counter,
}

impl EngineTelemetry {
    fn new(tele: &std::sync::Arc<alrescha_obs::Telemetry>) -> Self {
        let m = tele.metrics();
        EngineTelemetry {
            tele: std::sync::Arc::clone(tele),
            runs: m.counter("alrescha_engine_runs_total", true, "kernel runs executed"),
            cycles: m.counter("alrescha_engine_cycles_total", true, "simulated cycles"),
            blocks: m.counter(
                "alrescha_engine_blocks_total",
                true,
                "locally-dense blocks executed (all data paths)",
            ),
            cycles_per_block: m.histogram(
                "alrescha_engine_cycles_per_block",
                alrescha_obs::CYCLE_BUCKETS,
                true,
                "cycles charged per locally-dense block",
            ),
            cache_read_hits: m.counter("alrescha_cache_read_hits_total", true, "cache read hits"),
            cache_read_misses: m.counter(
                "alrescha_cache_read_misses_total",
                true,
                "cache read misses",
            ),
            cache_writes: m.counter("alrescha_cache_writes_total", true, "cache writes"),
            // Reads only: hits / (hits + misses). Writes are write-allocate
            // traffic and must not inflate the denominator.
            cache_hit_rate: m.gauge(
                "alrescha_cache_hit_rate",
                true,
                "read hit rate of the last run: hits / (hits + misses)",
            ),
            reconfig_switches: m.counter(
                "alrescha_reconfig_switches_total",
                true,
                "RCU data-path switches",
            ),
            reconfig_exposed: m.counter(
                "alrescha_reconfig_exposed_stall_cycles_total",
                true,
                "reconfiguration stall cycles not hidden by the drain",
            ),
            reconfig_hidden: m.counter(
                "alrescha_reconfig_hidden_cycles_total",
                true,
                "reconfiguration cycles hidden under the drain",
            ),
            faults_detected: m.counter(
                "alrescha_faults_detected_total",
                true,
                "injected faults caught by ABFT/structural checks",
            ),
            faults_recovered: m.counter(
                "alrescha_faults_recovered_total",
                true,
                "detected faults cleared by retry",
            ),
            fault_retries: m.counter("alrescha_fault_retries_total", true, "recovery retries"),
            recovery_cycles: m.counter(
                "alrescha_recovery_cycles_total",
                true,
                "cycles spent on recovery redo and backoff",
            ),
            checkpoint_writes: m.counter(
                "alrescha_checkpoint_writes_total",
                true,
                "solver checkpoints serialized",
            ),
            checkpoint_bytes: m.counter(
                "alrescha_checkpoint_bytes_total",
                true,
                "encoded checkpoint bytes",
            ),
        }
    }
}

/// Per-run mutable accounting.
#[derive(Debug)]
struct RunState {
    cycles: u64,
    memory: MemoryStream,
    cache_busy: u64,
    counts: DataPathCounts,
    cache_base: (u64, u64, u64), // (hits, misses, writes) at run start
    reconfig_base: crate::rcu::ReconfigStats,
    breakdown: crate::report::CycleBreakdown,
    link_stack_peak: usize,
    operand_fifo_peak: usize,
    fault_base: FaultCounters,
    wall_start: std::time::Instant,
    /// Telemetry was attached and enabled when the run began; the trace
    /// events from `trace_base` on belong to this run's device timeline.
    telemetry_armed: bool,
    trace_base: usize,
    t0_ns: u64,
}

// Word-address regions for the cached vector operands.
const REGION_X: usize = 0;
const REGION_B: usize = 2 << 28;
const REGION_DIAG: usize = 3 << 28;

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        let fcu = Fcu::new(&config);
        let rcu = Rcu::new(&config);
        let cache = LocalCache::new(&config);
        Engine {
            config,
            fcu,
            rcu,
            cache,
            trace: crate::trace::Trace::new(),
            faults: None,
            recovery: RecoveryPolicy::default(),
            budget: ExecBudget::default(),
            telemetry: None,
        }
    }

    /// Recycles the engine for a new, unrelated workload: every piece of
    /// engine-lifetime state — RCU data-path wiring and reconfiguration
    /// statistics, energy counters, cache contents and counters, the trace
    /// log, the fault plan, the recovery policy, and the budget — returns
    /// to its just-built value, while config-derived allocations are kept.
    ///
    /// The contract (relied on by per-worker engine reuse in the batch
    /// runtime, and asserted by `recycled_engine_is_bit_identical` below)
    /// is that a recycled engine produces bit-identical results *and*
    /// reports to a freshly constructed `Engine::new(config)`.
    pub fn reset(&mut self) {
        self.fcu.reset();
        self.rcu.reset();
        self.cache.reset();
        self.trace = crate::trace::Trace::new();
        self.faults = None;
        self.recovery = RecoveryPolicy::default();
        self.budget = ExecBudget::default();
        // Telemetry is an observer, not engine state: it never feeds results
        // or reports, so keeping it attached preserves the bit-identical
        // recycled-engine contract while letting long-lived workers keep
        // streaming spans across jobs.
    }

    /// Arms cycle/wall-clock limits and the progress-watchdog window for
    /// all subsequent runs (default: [`ExecBudget::none`], fully open).
    pub fn set_budget(&mut self, budget: ExecBudget) {
        self.budget = budget;
    }

    /// The active execution budget.
    pub fn budget(&self) -> ExecBudget {
        self.budget
    }

    /// Captures the fault injector's mutable state (RNG cursor, cycle,
    /// counters) for embedding in a solver checkpoint. `None` when no
    /// fault plan is armed.
    pub fn fault_snapshot(&self) -> Option<InjectorSnapshot> {
        self.faults.as_ref().map(FaultInjector::snapshot)
    }

    /// Restores injector state captured by [`Engine::fault_snapshot`]; a
    /// no-op when no fault plan is armed.
    pub fn restore_fault_snapshot(&mut self, snap: &InjectorSnapshot) {
        if let Some(inj) = &self.faults {
            inj.restore(snap);
        }
    }

    /// Arms (or, with `None`, disarms) deterministic fault injection for
    /// all subsequent runs. The injector is shared with the FCU, the RCU,
    /// the local cache, and each run's memory stream.
    ///
    /// Attaching an *inert* plan ([`FaultPlan::inert`]) enables the ABFT
    /// verification machinery without perturbing anything: results and
    /// timing stay bit-identical to an un-instrumented engine.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.faults = plan.map(FaultInjector::new);
        self.fcu.attach_injector(self.faults.clone());
        self.rcu.attach_injector(self.faults.clone());
        self.cache.attach_injector(self.faults.clone());
    }

    /// Sets what the engine does when a fault is detected (default:
    /// [`RecoveryPolicy::FailFast`]).
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    /// The active recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// The armed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Turns on event tracing (see [`crate::trace`]).
    pub fn enable_tracing(&mut self) {
        self.trace.enable();
    }

    /// Takes the recorded trace events (empty unless tracing is enabled).
    pub fn take_trace(&mut self) -> Vec<crate::trace::TraceEvent> {
        self.trace.take()
    }

    /// Attaches (or, with `None`, detaches) an alobs telemetry sink. Metric
    /// handles are registered once here; per-run publication afterwards is
    /// a handful of gated atomic adds.
    ///
    /// While telemetry is attached *and enabled*, each run auto-enables
    /// event tracing and consumes its own events at [`Engine::finish`] to
    /// build a device timeline, so [`Engine::take_trace`] only returns
    /// events recorded outside runs (e.g. checkpoint writes). Detaching
    /// does not disable tracing that was enabled explicitly.
    pub fn set_telemetry(&mut self, tele: Option<std::sync::Arc<alrescha_obs::Telemetry>>) {
        self.telemetry = tele.map(|t| EngineTelemetry::new(&t));
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&std::sync::Arc<alrescha_obs::Telemetry>> {
        self.telemetry.as_ref().map(|et| &et.tele)
    }

    /// Records a solver checkpoint serialization against this engine's
    /// trace and metrics. Called by the host solver loop between runs.
    pub fn note_checkpoint_write(&mut self, bytes: u64) {
        self.trace
            .record(crate::trace::TraceEvent::CheckpointWrite { bytes });
        if let Some(et) = &self.telemetry {
            et.checkpoint_writes.inc();
            et.checkpoint_bytes.add(bytes);
        }
    }

    /// Records a block completion: pairs the closest preceding `BlockBegin`
    /// and feeds the cycles-per-block histogram.
    fn note_block_end(&mut self, cycles: u64) {
        self.trace
            .record(crate::trace::TraceEvent::BlockEnd { cycles });
        if let Some(et) = &self.telemetry {
            et.cycles_per_block.observe(cycles);
        }
    }

    fn trace_reconfigure(&mut self, to: DataPathKind, exposed: u64) {
        self.trace
            .record(crate::trace::TraceEvent::Reconfigure { to, exposed });
    }

    fn trace_block(&mut self, block_row: usize, block_col: usize, kind: DataPathKind) {
        self.trace.record(crate::trace::TraceEvent::BlockBegin {
            block_row,
            block_col,
            kind,
        });
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    fn begin(&mut self, reduce: Reduce) -> RunState {
        self.cache.flush();
        let telemetry_armed = self
            .telemetry
            .as_ref()
            .is_some_and(|et| et.tele.is_enabled());
        let mut t0_ns = 0;
        if telemetry_armed {
            self.trace.enable();
            if let Some(et) = &self.telemetry {
                t0_ns = et.tele.now_ns();
            }
        }
        let trace_base = self.trace.events().len();
        let fill = self.fcu.fill_latency(reduce);
        let mut memory = MemoryStream::new(&self.config);
        memory.attach_injector(self.faults.clone());
        RunState {
            cycles: fill,
            memory,
            cache_busy: 0,
            counts: DataPathCounts::default(),
            cache_base: (self.cache.hits(), self.cache.misses(), self.cache.writes()),
            reconfig_base: self.rcu.stats(),
            breakdown: crate::report::CycleBreakdown {
                drain_cycles: fill,
                ..Default::default()
            },
            link_stack_peak: 0,
            operand_fifo_peak: 0,
            fault_base: self
                .faults
                .as_ref()
                .map(FaultInjector::counters)
                .unwrap_or_default(),
            wall_start: std::time::Instant::now(),
            telemetry_armed,
            trace_base,
            t0_ns,
        }
    }

    /// Enforces the cycle and wall-clock limits of the active budget.
    /// Called once per scheduled unit of work (block, block row, round);
    /// with the default open budget both tests short-circuit.
    fn check_budget(&self, state: &RunState) -> Result<()> {
        if let Some(max) = self.budget.max_cycles {
            if state.cycles > max {
                return Err(SimError::DeadlineExceeded {
                    budget: "cycle",
                    cycle: state.cycles,
                });
            }
        }
        if let Some(max_wall) = self.budget.max_wall {
            if state.wall_start.elapsed() > max_wall {
                return Err(SimError::DeadlineExceeded {
                    budget: "wall-clock",
                    cycle: state.cycles,
                });
            }
        }
        Ok(())
    }

    /// Handles a wedged D-SymGS block scheduler: the engine would idle
    /// forever waiting for a block that will never issue, so the outcome is
    /// computed directly instead of spinning — the cycle budget expires if
    /// it is tighter than the watchdog window, otherwise the watchdog fires
    /// after one full window of zero progress.
    fn scheduler_stall(&self, state: &RunState) -> SimError {
        if let Some(inj) = &self.faults {
            inj.note_scheduler_wedge();
        }
        let window = self.budget.effective_watchdog();
        let fires_at = state.cycles.saturating_add(window);
        if let Some(max) = self.budget.max_cycles {
            if max < fires_at {
                return SimError::DeadlineExceeded {
                    budget: "cycle",
                    cycle: max,
                };
            }
        }
        SimError::Stalled {
            site: "d-symgs block scheduler",
            cycle: fires_at,
            idle_cycles: window,
        }
    }

    /// Publishes the run's cycle count to the injector (window gating and
    /// error reporting).
    fn publish_cycle(&self, state: &RunState) {
        if let Some(inj) = &self.faults {
            inj.set_cycle(state.cycles);
        }
    }

    fn finish(&mut self, kernel: &'static str, state: RunState, reduce: Reduce) -> ExecutionReport {
        // Reconfiguration statistics are engine-lifetime totals; report the
        // delta accumulated by this run only.
        let totals = self.rcu.stats();
        let reconfig = crate::rcu::ReconfigStats {
            switches: totals.switches - state.reconfig_base.switches,
            hidden_cycles: totals.hidden_cycles - state.reconfig_base.hidden_cycles,
            exposed_cycles: totals.exposed_cycles - state.reconfig_base.exposed_cycles,
        };
        let mut breakdown = state.breakdown;
        breakdown.drain_cycles += self.fcu.drain(reduce) + reconfig.exposed_cycles;
        let mut cycles = state.cycles + self.fcu.drain(reduce);
        cycles += reconfig.exposed_cycles;
        let mut energy = EnergyCounters::new();
        energy.merge(&self.fcu.take_counters());
        energy.merge(&self.rcu.take_counters());
        let (h0, m0, w0) = state.cache_base;
        let cache = CacheStats {
            hits: self.cache.hits() - h0,
            misses: self.cache.misses() - m0,
            writes: self.cache.writes() - w0,
            busy_cycles: state.cache_busy,
        };
        energy.cache_accesses = cache.accesses();
        energy.dram_bytes = state.memory.bytes_streamed();
        self.trace
            .record(crate::trace::TraceEvent::KernelEnd { cycles });
        let seconds = self.config.cycles_to_seconds(cycles);
        let faults = self
            .faults
            .as_ref()
            .map(|inj| inj.counters().delta(&state.fault_base))
            .unwrap_or_default();
        let report = ExecutionReport {
            kernel,
            cycles,
            seconds,
            bytes_streamed: state.memory.bytes_streamed(),
            bandwidth_utilization: state.memory.utilization(cycles),
            cache_time_fraction: if cycles > 0 {
                (state.cache_busy as f64 / cycles as f64).min(1.0)
            } else {
                0.0
            },
            energy,
            reconfig,
            cache,
            datapaths: state.counts,
            breakdown,
            faults,
            breaker: crate::report::BreakerStats::default(),
        };
        self.publish_metrics(&report);
        if state.telemetry_armed {
            self.capture_device_timeline(state.trace_base, state.t0_ns, &report);
        }
        report
    }

    /// Publishes one run's report deltas into the attached metrics registry.
    fn publish_metrics(&self, report: &ExecutionReport) {
        let Some(et) = &self.telemetry else { return };
        et.runs.inc();
        et.cycles.add(report.cycles);
        let d = &report.datapaths;
        et.blocks
            .add(d.gemv_blocks + d.dsymgs_blocks + d.graph_blocks);
        let c = &report.cache;
        et.cache_read_hits.add(c.hits);
        et.cache_read_misses.add(c.misses);
        et.cache_writes.add(c.writes);
        let reads = c.hits + c.misses;
        if reads > 0 {
            et.cache_hit_rate.set(c.hits as f64 / reads as f64);
        }
        et.reconfig_switches.add(report.reconfig.switches);
        et.reconfig_exposed.add(report.reconfig.exposed_cycles);
        et.reconfig_hidden.add(report.reconfig.hidden_cycles);
        et.faults_detected.add(report.faults.detected);
        et.faults_recovered.add(report.faults.recovered);
        et.fault_retries.add(report.faults.retries);
        et.recovery_cycles.add(report.breakdown.recovery_cycles);
    }

    /// Converts the trace events this run appended (from `trace_base` on)
    /// into a device timeline pinned to host time `[t0_ns, now]`, records
    /// it on the telemetry sink, and removes the consumed events.
    fn capture_device_timeline(&mut self, trace_base: usize, t0_ns: u64, report: &ExecutionReport) {
        let Some(et) = &self.telemetry else { return };
        let events = crate::trace::to_device_events(&self.trace.events()[trace_base..]);
        et.tele.record_device(alrescha_obs::DeviceTimeline {
            kernel: report.kernel.to_owned(),
            t0_ns,
            t1_ns: et.tele.now_ns().max(t0_ns),
            cycles: report.cycles,
            events,
        });
        self.trace.truncate(trace_base);
    }

    /// Reads one ω-chunk of a cached vector operand; charges cache-port
    /// occupancy (the cache is pipelined: one line access per cycle, so a
    /// chunk read occupies ⌈ω/line⌉ cycles) and, on a miss, the bandwidth
    /// of fetching the chunk (prefetched via the configuration table, so no
    /// exposed latency).
    ///
    /// `len` is the logical length of the vector living in `region`: when
    /// the matrix dimension is not a multiple of ω the final chunk is
    /// partially padded, and only the `len - chunk_start` real lanes cost
    /// cache occupancy and bandwidth.
    fn read_chunk(&mut self, state: &mut RunState, region: usize, chunk_start: usize, len: usize) {
        let valid = self.config.omega.min(len.saturating_sub(chunk_start));
        if valid == 0 {
            return;
        }
        let mut missed = false;
        for k in 0..valid {
            let access = self.cache.read(region + chunk_start + k);
            if !access.hit {
                missed = true;
            }
        }
        state.cache_busy += valid.div_ceil(self.config.values_per_line()) as u64;
        if missed {
            state.memory.stream_values(valid);
        }
    }

    /// Writes one ω-chunk of a cached vector operand; `len` clamps the
    /// padded tail exactly as in [`Engine::read_chunk`].
    fn write_chunk(&mut self, state: &mut RunState, region: usize, chunk_start: usize, len: usize) {
        let valid = self.config.omega.min(len.saturating_sub(chunk_start));
        if valid == 0 {
            return;
        }
        for k in 0..valid {
            self.cache.write(region + chunk_start + k);
        }
        state.cache_busy += valid.div_ceil(self.config.values_per_line()) as u64;
    }

    fn operand_slice(x: &[f64], start: usize, omega: usize) -> Vec<f64> {
        (0..omega)
            .map(|k| x.get(start + k).copied().unwrap_or(0.0))
            .collect()
    }

    /// Computes the ω dot products of one GEMV block through the FCU.
    ///
    /// With a fault injector armed, the partial sums are verified against
    /// the block's ABFT column-sum checksum — Σᵢ dotᵢ must equal
    /// (Σᵢ rowᵢ)·x up to rounding, with the checksum vector computed from
    /// the pristine payload at format-programming time — and the block is
    /// re-executed (re-stream + recompute + backoff stall) under the
    /// engine's [`RecoveryPolicy`] when the check trips. `stuck` is a
    /// permanent payload corruption reported by the memory stream; it
    /// re-applies on every retry, so it exhausts the retry budget and
    /// surfaces as [`SimError::FaultDetected`] at [`FaultSite::Memory`].
    ///
    /// Without an injector this is a plain, checksum-free block execution,
    /// bit- and cycle-identical to the historical code path.
    fn gemv_block_checked(
        &mut self,
        state: &mut RunState,
        block: &alrescha_sparse::AlfBlock,
        operand: &[f64],
        stuck: Option<(usize, u32)>,
    ) -> Result<Vec<f64>> {
        let omega = self.config.omega;
        let Some(inj) = self.faults.clone() else {
            let mut dots = Vec::with_capacity(omega);
            for i in 0..omega {
                let logical: Vec<f64> = (0..omega).map(|j| block.get(i, j)).collect();
                dots.push(self.fcu.mac_row(&logical, operand));
            }
            return Ok(dots);
        };

        let mut chk = vec![0.0; omega];
        let mut chk_abs = vec![0.0; omega];
        for i in 0..omega {
            for j in 0..omega {
                let v = block.get(i, j);
                chk[j] += v;
                chk_abs[j] += v.abs();
            }
        }
        let expected: f64 = chk.iter().zip(operand).map(|(c, x)| c * x).sum();
        let scale: f64 = chk_abs.iter().zip(operand).map(|(c, x)| c * x.abs()).sum();
        if !expected.is_finite() || !scale.is_finite() {
            // Non-finite inputs: retrying cannot help.
            return Err(SimError::NumericalBreakdown {
                context: "gemv checksum",
                cycle: state.cycles,
            });
        }
        let tol = 1e-9 * scale;

        let max_retries = self.recovery.max_retries();
        let site = if stuck.is_some() {
            FaultSite::Memory
        } else {
            FaultSite::FcuLane
        };
        let mut attempt = 0u32;
        let mut caught = 0u64;
        let mut recovering = false;
        let mut redo_total = 0u64;
        let outcome = loop {
            inj.begin_scope();
            if stuck.is_some() {
                inj.note_stuck_applied();
            }
            inj.set_fcu_armed(true);
            let mut dots = Vec::with_capacity(omega);
            for i in 0..omega {
                let mut logical: Vec<f64> = (0..omega).map(|j| block.get(i, j)).collect();
                if let Some((word, bit)) = stuck {
                    if word / omega == i {
                        logical[word % omega] = fault::flip_bit(logical[word % omega], bit);
                    }
                }
                dots.push(self.fcu.mac_row(&logical, operand));
            }
            inj.set_fcu_armed(false);
            let actual: f64 = dots.iter().sum();
            if actual.is_finite() && (actual - expected).abs() <= tol {
                if caught > 0 {
                    inj.note_recovered(caught);
                }
                if recovering {
                    self.trace.record(crate::trace::TraceEvent::RecoveryEnd {
                        recovered: true,
                        cycles: redo_total,
                    });
                }
                // Faults that slipped past the checksum stay injected-only.
                inj.begin_scope();
                break Ok(dots);
            }
            let newly = inj.confirm_detected();
            caught += newly;
            if newly > 0 {
                self.trace
                    .record(crate::trace::TraceEvent::FaultInjected { site });
            }
            if attempt >= max_retries {
                if recovering {
                    self.trace.record(crate::trace::TraceEvent::RecoveryEnd {
                        recovered: false,
                        cycles: redo_total,
                    });
                }
                break Err(SimError::FaultDetected {
                    site,
                    cycle: state.cycles,
                });
            }
            if !recovering {
                recovering = true;
                self.trace
                    .record(crate::trace::TraceEvent::RecoveryBegin { site });
            }
            attempt += 1;
            inj.note_retry();
            // Retry from checkpoint: re-stream the payload, re-run the ω
            // rows, and pay the policy's backoff stall.
            let re_mem = state.memory.stream_values(omega * omega);
            let redo = re_mem.max(omega as u64) + self.recovery.backoff_cycles();
            state.cycles += redo;
            state.breakdown.recovery_cycles += redo;
            redo_total += redo;
            self.publish_cycle(state);
        };
        outcome
    }

    /// Runs SpMV (`y = A·x`) over a [`AlfLayout::Streaming`] matrix.
    ///
    /// # Errors
    ///
    /// * [`SimError::LayoutMismatch`] if `a` was built for SymGS.
    /// * [`SimError::DimensionMismatch`] if `x.len() != a.cols()`.
    pub fn run_spmv(&mut self, a: &Alf, x: &[f64]) -> Result<(Vec<f64>, ExecutionReport)> {
        if a.layout() != AlfLayout::Streaming {
            return Err(SimError::LayoutMismatch {
                expected: "streaming",
                found: "symgs",
            });
        }
        if x.len() != a.cols() {
            return Err(SimError::DimensionMismatch {
                expected: a.cols(),
                found: x.len(),
            });
        }
        let omega = self.config.omega;
        if a.omega() != omega {
            return Err(SimError::BlockWidthMismatch {
                engine: omega,
                matrix: a.omega(),
            });
        }

        let mut state = self.begin(Reduce::Sum);
        self.trace
            .record(crate::trace::TraceEvent::KernelBegin { kernel: "spmv" });
        let mut y = vec![0.0; a.rows()];
        let exposed = self
            .rcu
            .configure(DataPathKind::Gemv, self.fcu.drain(Reduce::Sum));
        self.trace_reconfigure(DataPathKind::Gemv, exposed);

        for block in a.blocks() {
            self.check_budget(&state)?;
            let row_base = block.block_row() * omega;
            let col_base = block.block_col() * omega;
            self.trace_block(block.block_row(), block.block_col(), DataPathKind::Gemv);
            let (mem, stuck) = {
                let (payload, stuck) =
                    state
                        .memory
                        .stream_block(block.block_row(), block.block_col(), omega * omega);
                self.read_chunk(&mut state, REGION_X, col_base, a.cols());
                (payload, stuck)
            };
            let compute = omega as u64;
            let block_cycles = mem.max(compute);
            state.cycles += block_cycles;
            state.breakdown.gemv_cycles += block_cycles;
            state.counts.gemv_blocks += 1;
            self.publish_cycle(&state);

            let operand = Self::operand_slice(x, col_base, omega);
            let dots = self.gemv_block_checked(&mut state, block, &operand, stuck)?;
            self.note_block_end(block_cycles);
            for (i, dot) in dots.into_iter().enumerate() {
                if row_base + i < y.len() {
                    y[row_base + i] += dot;
                }
            }
        }

        // Result write-back: one pass over y through the cache and out.
        for chunk in (0..a.rows()).step_by(omega) {
            self.write_chunk(&mut state, REGION_X, chunk, a.rows());
        }
        state.memory.record_bytes(a.rows() as u64 * 8);

        let report = self.finish("spmv", state, Reduce::Sum);
        Ok((y, report))
    }

    /// One forward Gauss-Seidel sweep over a [`AlfLayout::SymGs`] matrix,
    /// updating `x` in place. Functionally identical (up to floating-point
    /// reassociation) to `alrescha_kernels::symgs::forward_sweep`.
    ///
    /// # Errors
    ///
    /// * [`SimError::LayoutMismatch`] if `a` was built for streaming.
    /// * [`SimError::DimensionMismatch`] on operand length mismatches.
    pub fn run_symgs_forward(
        &mut self,
        a: &Alf,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<ExecutionReport> {
        self.run_symgs_sweep(a, b, x, false)
    }

    /// One backward Gauss-Seidel sweep (block rows and in-block rows in
    /// descending order). See [`Engine::run_symgs_forward`].
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run_symgs_forward`].
    pub fn run_symgs_backward(
        &mut self,
        a: &Alf,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<ExecutionReport> {
        self.run_symgs_sweep(a, b, x, true)
    }

    /// One symmetric Gauss-Seidel application (forward then backward sweep),
    /// the SymGS kernel of Table 1.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run_symgs_forward`].
    pub fn run_symgs(&mut self, a: &Alf, b: &[f64], x: &mut [f64]) -> Result<ExecutionReport> {
        let mut report = self.run_symgs_forward(a, b, x)?;
        let back = self.run_symgs_backward(a, b, x)?;
        report.merge(&back, &self.config.clone());
        report.datapaths.iterations = 1;
        Ok(report)
    }

    fn run_symgs_sweep(
        &mut self,
        a: &Alf,
        b: &[f64],
        x: &mut [f64],
        backward: bool,
    ) -> Result<ExecutionReport> {
        self.run_sor_sweep(a, b, x, backward, 1.0)
    }

    fn run_sor_sweep(
        &mut self,
        a: &Alf,
        b: &[f64],
        x: &mut [f64],
        backward: bool,
        omega_relax: f64,
    ) -> Result<ExecutionReport> {
        if a.layout() != AlfLayout::SymGs {
            return Err(SimError::LayoutMismatch {
                expected: "symgs",
                found: "streaming",
            });
        }
        if b.len() != a.rows() {
            return Err(SimError::DimensionMismatch {
                expected: a.rows(),
                found: b.len(),
            });
        }
        if x.len() != a.cols() {
            return Err(SimError::DimensionMismatch {
                expected: a.cols(),
                found: x.len(),
            });
        }
        let omega = self.config.omega;
        if a.omega() != omega {
            return Err(SimError::BlockWidthMismatch {
                engine: omega,
                matrix: a.omega(),
            });
        }

        let mut state = self.begin(Reduce::Sum);
        self.trace.record(crate::trace::TraceEvent::KernelBegin {
            kernel: if backward {
                "symgs-backward"
            } else {
                "symgs-forward"
            },
        });
        // The extracted diagonal is loaded into the local cache once per
        // sweep (programming-time traffic, §4.5).
        state.memory.record_bytes(a.diagonal().len() as u64 * 8);

        let block_rows = a.block_rows();
        let mut order: Vec<usize> = (0..block_rows).collect();
        if backward {
            order.reverse();
        }

        // Index blocks by block row once; within a row keep stream order.
        let mut per_row: Vec<Vec<&alrescha_sparse::AlfBlock>> = vec![Vec::new(); block_rows];
        for block in a.blocks() {
            per_row[block.block_row()].push(block);
        }

        for &br in &order {
            self.check_budget(&state)?;
            let row_base = br * omega;
            // Intermediate GEMV results ride the LIFO link stack to the
            // D-SymGS data path (Figure 11): one (lane, value) per block
            // row lane per GEMV block.
            let mut link_stack: LinkStack<(usize, f64)> = LinkStack::new();
            let mut diag_block: Option<&alrescha_sparse::AlfBlock> = None;

            for block in &per_row[br] {
                if block.kind() == BlockKind::Diagonal {
                    diag_block = Some(block);
                    continue;
                }
                // GEMV data path on an off-diagonal block.
                let switched = self.rcu.current() != Some(DataPathKind::Gemv);
                let exposed = self
                    .rcu
                    .configure(DataPathKind::Gemv, self.fcu.drain(Reduce::Sum));
                if switched {
                    self.trace_reconfigure(DataPathKind::Gemv, exposed);
                }
                self.trace_block(block.block_row(), block.block_col(), DataPathKind::Gemv);
                let col_base = block.block_col() * omega;
                let (payload_cycles, stuck) =
                    state
                        .memory
                        .stream_block(block.block_row(), block.block_col(), omega * omega);
                self.read_chunk(&mut state, REGION_X, col_base, a.cols());
                let block_cycles = payload_cycles.max(omega as u64);
                state.cycles += block_cycles;
                state.breakdown.gemv_cycles += block_cycles;
                state.counts.gemv_blocks += 1;
                self.publish_cycle(&state);

                let operand = Self::operand_slice(x, col_base, omega);
                let dots = self.gemv_block_checked(&mut state, block, &operand, stuck)?;
                // The verified dots ride the link stack; entries can still
                // be dropped in flight, which the occupancy check below
                // catches (the stack grew by fewer than ω entries).
                let mut push_attempt = 0u32;
                let mut drops_caught = 0u64;
                let mut push_recovering = false;
                let mut push_redo = 0u64;
                loop {
                    if let Some(inj) = &self.faults {
                        inj.begin_scope();
                    }
                    let before = link_stack.len();
                    for (i, dot) in dots.iter().enumerate() {
                        if !self.rcu.link_push_event() {
                            link_stack.push((i, *dot));
                        }
                    }
                    if link_stack.len() - before == omega {
                        if drops_caught > 0 {
                            if let Some(inj) = &self.faults {
                                inj.note_recovered(drops_caught);
                            }
                        }
                        if push_recovering {
                            self.trace.record(crate::trace::TraceEvent::RecoveryEnd {
                                recovered: true,
                                cycles: push_redo,
                            });
                        }
                        break;
                    }
                    let newly = self
                        .faults
                        .as_ref()
                        .map_or(0, FaultInjector::confirm_detected);
                    drops_caught += newly;
                    if newly > 0 {
                        self.trace.record(crate::trace::TraceEvent::FaultInjected {
                            site: FaultSite::RcuLifo,
                        });
                    }
                    // Roll back this attempt's (LIFO-ordered) pushes.
                    while link_stack.len() > before {
                        let _ = link_stack.pop();
                    }
                    if push_attempt >= self.recovery.max_retries() {
                        if push_recovering {
                            self.trace.record(crate::trace::TraceEvent::RecoveryEnd {
                                recovered: false,
                                cycles: push_redo,
                            });
                        }
                        return Err(SimError::FaultDetected {
                            site: FaultSite::RcuLifo,
                            cycle: state.cycles,
                        });
                    }
                    if !push_recovering {
                        push_recovering = true;
                        self.trace.record(crate::trace::TraceEvent::RecoveryBegin {
                            site: FaultSite::RcuLifo,
                        });
                    }
                    push_attempt += 1;
                    if let Some(inj) = &self.faults {
                        inj.note_retry();
                    }
                    state.cycles += self.recovery.backoff_cycles();
                    state.breakdown.recovery_cycles += self.recovery.backoff_cycles();
                    push_redo += self.recovery.backoff_cycles();
                }
                self.note_block_end(block_cycles);
            }

            // The successive D-SymGS pops the GEMV results off the stack
            // and reduces them per lane (the pops happen in LIFO order —
            // the reverse of the push order, which the reduction is
            // insensitive to because addition commutes).
            let mut partial = vec![0.0; omega];
            state.link_stack_peak = state.link_stack_peak.max(link_stack.max_depth());
            while let Some((lane, value)) = link_stack.pop() {
                partial[lane] += value;
                self.rcu.buffer_event();
            }

            // D-SymGS on the diagonal block (always present for rows that
            // hold any diagonal entry; absent only for all-zero block rows).
            // A wedged scheduler never issues it: the run terminates through
            // the watchdog or the cycle budget instead of idling forever.
            if let Some(inj) = &self.faults {
                if inj.scheduler_wedged(state.counts.dsymgs_blocks) {
                    return Err(self.scheduler_stall(&state));
                }
            }
            let drain = self.fcu.drain(Reduce::Sum);
            let switched = self.rcu.current() != Some(DataPathKind::DSymGs);
            let exposed = self.rcu.configure(DataPathKind::DSymGs, drain);
            if switched {
                self.trace_reconfigure(DataPathKind::DSymGs, exposed);
            }
            self.trace_block(br, br, DataPathKind::DSymGs);
            // Switching data paths costs the drain of the in-flight GEMV —
            // unless the overlap-drain ablation forwards through it.
            if !self.config.overlap_drain {
                state.cycles += drain;
                state.breakdown.drain_cycles += drain;
            }

            self.read_chunk(&mut state, REGION_B, row_base, a.rows());
            self.read_chunk(&mut state, REGION_DIAG, row_base, a.diagonal().len());
            // The right-hand side and the extracted diagonal arrive through
            // FIFOs (deterministic access order, §4.3).
            let mut b_fifo: Fifo<f64> = Fifo::new();
            let mut diag_fifo: Fifo<f64> = Fifo::new();
            let mut fifo_attempt = 0u32;
            let mut fifo_caught = 0u64;
            let mut fifo_recovering = false;
            let mut fifo_redo = 0u64;
            loop {
                if let Some(inj) = &self.faults {
                    inj.begin_scope();
                }
                let mut filled = 0usize;
                for i in 0..omega {
                    let g = row_base + i;
                    if g < a.rows() {
                        if !self.rcu.fifo_push_event() {
                            b_fifo.push(b[g]);
                        }
                        if !self.rcu.fifo_push_event() {
                            diag_fifo.push(a.diagonal()[g]);
                        }
                        filled += 1;
                    }
                }
                // Occupancy check: both FIFOs must hold exactly one entry
                // per valid lane before the recurrence starts.
                state.operand_fifo_peak = state.operand_fifo_peak.max(b_fifo.len());
                if b_fifo.len() == filled && diag_fifo.len() == filled {
                    if fifo_caught > 0 {
                        if let Some(inj) = &self.faults {
                            inj.note_recovered(fifo_caught);
                        }
                    }
                    if fifo_recovering {
                        self.trace.record(crate::trace::TraceEvent::RecoveryEnd {
                            recovered: true,
                            cycles: fifo_redo,
                        });
                    }
                    break;
                }
                let newly = self
                    .faults
                    .as_ref()
                    .map_or(0, FaultInjector::confirm_detected);
                fifo_caught += newly;
                if newly > 0 {
                    self.trace.record(crate::trace::TraceEvent::FaultInjected {
                        site: FaultSite::RcuFifo,
                    });
                }
                while b_fifo.pop().is_some() {}
                while diag_fifo.pop().is_some() {}
                if fifo_attempt >= self.recovery.max_retries() {
                    if fifo_recovering {
                        self.trace.record(crate::trace::TraceEvent::RecoveryEnd {
                            recovered: false,
                            cycles: fifo_redo,
                        });
                    }
                    return Err(SimError::FaultDetected {
                        site: FaultSite::RcuFifo,
                        cycle: state.cycles,
                    });
                }
                if !fifo_recovering {
                    fifo_recovering = true;
                    self.trace.record(crate::trace::TraceEvent::RecoveryBegin {
                        site: FaultSite::RcuFifo,
                    });
                }
                fifo_attempt += 1;
                if let Some(inj) = &self.faults {
                    inj.note_retry();
                }
                state.cycles += self.recovery.backoff_cycles();
                state.breakdown.recovery_cycles += self.recovery.backoff_cycles();
                fifo_redo += self.recovery.backoff_cycles();
            }
            if backward {
                // The r2l access order of the diagonal block consumes the
                // operands back to front; drain the FIFOs into reverse
                // order buffers (the hardware's addressable cache serves
                // this; the FIFO still sized/counted the traffic).
            }

            let rows_iter: Box<dyn Iterator<Item = usize>> = if backward {
                Box::new((0..omega).rev())
            } else {
                Box::new(0..omega)
            };
            // Forward sweeps feed the multipliers from the Figure 10 shift
            // register: lane k starts as x^{t-1}[ω−1−k]; each step pushes
            // the fresh x^t into lane 0. The streamed (reversed) payload
            // row, rotated by the step index, lines each lane up with its
            // logical column. The backward sweep is the mirror-image
            // hardware and uses the addressable cache path directly.
            let mut shift_reg = if backward {
                None
            } else {
                let initial: Vec<f64> = (0..omega)
                    .map(|k| x.get(row_base + omega - 1 - k).copied().unwrap_or(0.0))
                    .collect();
                Some(crate::shift::ShiftRegister::load(&initial))
            };
            let mut steps = 0u64;
            for i in rows_iter {
                let g = row_base + i;
                if g >= a.rows() {
                    continue;
                }
                let diag = a.diagonal()[g];
                if !backward {
                    // Forward sweeps consume the operand FIFOs in order.
                    let fb = b_fifo.pop().unwrap_or(b[g]);
                    let fd = diag_fifo.pop().unwrap_or(diag);
                    debug_assert_eq!(fb.to_bits(), b[g].to_bits());
                    debug_assert_eq!(fd.to_bits(), diag.to_bits());
                }
                if diag == 0.0 {
                    return Err(SimError::Structure(
                        alrescha_sparse::Error::MissingDiagonal { row: g },
                    ));
                }
                let mut sum = b[g] - partial[i];
                if let Some(block) = diag_block {
                    // Payload of the diagonal block streams in parallel with
                    // the recurrence; its diagonal slots are zero so the
                    // full ω-wide dot product is safe.
                    if let Some(reg) = &shift_reg {
                        // Lane k multiplies streamed slot (k + ω − i)
                        // mod ω ("rotating the inputs of the
                        // multipliers", §4.2).
                        let streamed = block.row(i);
                        let rotated: Vec<f64> = (0..omega)
                            .map(|k| streamed[(k + omega - (i % omega)) % omega])
                            .collect();
                        sum -= self.fcu.mac_row(&rotated, reg.lanes());
                    } else {
                        let logical: Vec<f64> = (0..omega).map(|j| block.get(i, j)).collect();
                        let operand = Self::operand_slice(x, row_base, omega);
                        sum -= self.fcu.mac_row(&logical, &operand);
                    }
                    // Link-stack pop feeding the recurrence.
                    self.rcu.buffer_event();
                }
                // PE: subtract/divide producing x_g, with the SOR blend
                // (a second PE op) when the relaxation factor is not 1.
                let _ = self.rcu.pe_op();
                if (omega_relax - 1.0).abs() < f64::EPSILON {
                    x[g] = sum / diag;
                } else {
                    let _ = self.rcu.pe_op();
                    x[g] = (1.0 - omega_relax) * x[g] + omega_relax * sum / diag;
                }
                if let Some(reg) = &mut shift_reg {
                    reg.push(x[g]);
                }
                steps += 1;
            }
            let dsymgs_cycles = if diag_block.is_some() {
                let payload_cycles = state.memory.stream_values(omega * omega);
                let compute = steps * self.config.dsymgs_step_latency();
                let block_cycles = payload_cycles.max(compute);
                state.cycles += block_cycles;
                state.breakdown.dsymgs_cycles += block_cycles;
                state.counts.dsymgs_blocks += 1;
                block_cycles
            } else if steps > 0 {
                // Rows with only an extracted diagonal: pure PE updates.
                let block_cycles = steps * self.config.dsymgs_step_latency();
                state.cycles += block_cycles;
                state.breakdown.dsymgs_cycles += block_cycles;
                block_cycles
            } else {
                0
            };
            self.note_block_end(dsymgs_cycles);
            self.publish_cycle(&state);
            self.write_chunk(&mut state, REGION_X, row_base, a.rows());
        }

        state.memory.record_bytes(a.rows() as u64 * 8); // x write-back
        state.counts.link_stack_peak = state.link_stack_peak as u64;
        state.counts.operand_fifo_peak = state.operand_fifo_peak as u64;
        let mut report = self.finish(
            if backward {
                "symgs-backward"
            } else {
                "symgs-forward"
            },
            state,
            Reduce::Sum,
        );
        report.datapaths.iterations = 1;
        Ok(report)
    }

    /// Runs BFS from `source` over the transposed adjacency structure
    /// `at` ([`AlfLayout::Streaming`], built from `Aᵀ` so each block row
    /// gathers a destination chunk's incoming edges). Edge weights are
    /// ignored (unit hop cost). Returns levels with [`UNREACHED`] where no
    /// path exists.
    ///
    /// # Errors
    ///
    /// Layout/shape errors as in [`Engine::run_spmv`], plus a source bound
    /// check.
    pub fn run_bfs(&mut self, at: &Alf, source: usize) -> Result<(Vec<f64>, ExecutionReport)> {
        self.run_minplus(at, source, "bfs", DataPathKind::DBfs, |_w| 1.0)
    }

    /// Runs SSSP from `source` over the transposed adjacency `at` with the
    /// stored edge weights. Returns distances with [`UNREACHED`] where no
    /// path exists.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::run_bfs`].
    pub fn run_sssp(&mut self, at: &Alf, source: usize) -> Result<(Vec<f64>, ExecutionReport)> {
        self.run_minplus(at, source, "sssp", DataPathKind::DSssp, |w| w)
    }

    fn run_minplus(
        &mut self,
        at: &Alf,
        source: usize,
        kernel: &'static str,
        kind: DataPathKind,
        weight_of: impl Fn(f64) -> f64,
    ) -> Result<(Vec<f64>, ExecutionReport)> {
        if at.layout() != AlfLayout::Streaming {
            return Err(SimError::LayoutMismatch {
                expected: "streaming",
                found: "symgs",
            });
        }
        if at.rows() != at.cols() {
            return Err(SimError::DimensionMismatch {
                expected: at.rows(),
                found: at.cols(),
            });
        }
        if source >= at.rows() {
            return Err(SimError::DimensionMismatch {
                expected: at.rows(),
                found: source,
            });
        }
        let omega = self.config.omega;
        if at.omega() != omega {
            return Err(SimError::BlockWidthMismatch {
                engine: omega,
                matrix: at.omega(),
            });
        }

        let n = at.rows();
        let mut dist = vec![UNREACHED; n];
        dist[source] = 0.0;

        let mut state = self.begin(Reduce::Min);
        self.trace
            .record(crate::trace::TraceEvent::KernelBegin { kernel });
        let exposed = self.rcu.configure(kind, self.fcu.drain(Reduce::Min));
        self.trace_reconfigure(kind, exposed);
        let mut rounds = 0u64;

        loop {
            let mut changed = false;
            rounds += 1;
            self.check_budget(&state)?;
            for block in at.blocks() {
                // Block of Aᵀ: rows are destinations, columns sources.
                let dst_base = block.block_row() * omega;
                let src_base = block.block_col() * omega;
                self.trace_block(block.block_row(), block.block_col(), kind);
                let payload = state.memory.stream_values(omega * omega);
                self.read_chunk(&mut state, REGION_X, src_base, n);
                let block_cycles = payload.max(omega as u64);
                state.cycles += block_cycles;
                state.breakdown.graph_cycles += block_cycles;
                state.counts.graph_blocks += 1;
                self.note_block_end(block_cycles);

                let operand = Self::operand_slice(&dist, src_base, omega);
                for i in 0..omega {
                    let d = dst_base + i;
                    if d >= n {
                        continue;
                    }
                    let logical: Vec<f64> = (0..omega).map(|j| block.get(i, j)).collect();
                    let cand = self
                        .fcu
                        .min_reduce_row(&logical, &operand, |w, dsrc| weight_of(w) + dsrc);
                    if cand < dist[d] {
                        // Phase-3 assign: compare and update (Table 1).
                        let _ = self.rcu.pe_op();
                        self.cache.write(REGION_X + d);
                        state.cache_busy += 1;
                        dist[d] = cand;
                        changed = true;
                    }
                }
            }
            if !changed || rounds as usize > n {
                break;
            }
        }

        state.memory.record_bytes(n as u64 * 8);
        let mut report = self.finish(kernel, state, Reduce::Min);
        report.datapaths.iterations = rounds;
        Ok((dist, report))
    }

    /// Runs PageRank over the transposed adjacency structure `at`
    /// (edge `u → v` gathered at `v`), with `out_degrees[u]` counting `u`'s
    /// outgoing edges. Dangling mass is redistributed uniformly. Returns
    /// `(ranks, report)`.
    ///
    /// # Errors
    ///
    /// Layout/shape errors as in [`Engine::run_spmv`], plus
    /// [`SimError::NoConvergence`] when the iteration budget is exhausted.
    pub fn run_pagerank(
        &mut self,
        at: &Alf,
        out_degrees: &[usize],
        opts: &PageRankConfig,
    ) -> Result<(Vec<f64>, ExecutionReport)> {
        if at.layout() != AlfLayout::Streaming {
            return Err(SimError::LayoutMismatch {
                expected: "streaming",
                found: "symgs",
            });
        }
        if at.rows() != at.cols() {
            return Err(SimError::DimensionMismatch {
                expected: at.rows(),
                found: at.cols(),
            });
        }
        if out_degrees.len() != at.rows() {
            return Err(SimError::DimensionMismatch {
                expected: at.rows(),
                found: out_degrees.len(),
            });
        }
        let omega = self.config.omega;
        if at.omega() != omega {
            return Err(SimError::BlockWidthMismatch {
                engine: omega,
                matrix: at.omega(),
            });
        }

        let n = at.rows();
        let mut state = self.begin(Reduce::Sum);
        self.trace.record(crate::trace::TraceEvent::KernelBegin {
            kernel: "pagerank",
        });
        let exposed = self
            .rcu
            .configure(DataPathKind::DPr, self.fcu.drain(Reduce::Sum));
        self.trace_reconfigure(DataPathKind::DPr, exposed);
        let mut rank = vec![1.0 / n as f64; n];

        for it in 1..=opts.max_iters {
            self.check_budget(&state)?;
            // Phase-1 division: contribution of every vertex (ω-wide PEs).
            let mut contrib = vec![0.0; n];
            let mut dangling = 0.0;
            for u in 0..n {
                if out_degrees[u] == 0 {
                    dangling += rank[u];
                } else {
                    let _ = self.rcu.pe_op();
                    contrib[u] = opts.damping * rank[u] / out_degrees[u] as f64;
                }
            }
            let div_cycles = (n as u64).div_ceil(omega as u64) * self.config.pe_latency;
            state.cycles += div_cycles;
            state.breakdown.graph_cycles += div_cycles;

            let base = (1.0 - opts.damping) / n as f64 + opts.damping * dangling / n as f64;
            let mut next = vec![base; n];
            for block in at.blocks() {
                let dst_base = block.block_row() * omega;
                let src_base = block.block_col() * omega;
                self.trace_block(block.block_row(), block.block_col(), DataPathKind::DPr);
                let payload = state.memory.stream_values(omega * omega);
                self.read_chunk(&mut state, REGION_X, src_base, n);
                let block_cycles = payload.max(omega as u64);
                state.cycles += block_cycles;
                state.breakdown.graph_cycles += block_cycles;
                state.counts.graph_blocks += 1;
                self.note_block_end(block_cycles);

                let operand = Self::operand_slice(&contrib, src_base, omega);
                for i in 0..omega {
                    let d = dst_base + i;
                    if d >= n {
                        continue;
                    }
                    // Structure-only gather: an edge contributes its
                    // source's (already damped and divided) share.
                    let indicator: Vec<f64> = (0..omega)
                        .map(|j| if block.get(i, j) == 0.0 { 0.0 } else { 1.0 })
                        .collect();
                    next[d] += self.fcu.mac_row(&indicator, &operand);
                }
            }
            for chunk in (0..n).step_by(omega) {
                self.write_chunk(&mut state, REGION_X, chunk, n);
            }

            let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            rank = next;
            if delta < opts.tol {
                state.memory.record_bytes(n as u64 * 8);
                let mut report = self.finish("pagerank", state, Reduce::Sum);
                report.datapaths.iterations = it as u64;
                return Ok((rank, report));
            }
        }
        Err(SimError::NoConvergence {
            iterations: opts.max_iters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alrescha_sparse::{gen, Coo, Csr};

    fn engine() -> Engine {
        Engine::new(SimConfig::paper())
    }

    fn spmv_alf(coo: &Coo) -> Alf {
        Alf::from_coo(coo, 8, AlfLayout::Streaming).unwrap()
    }

    #[test]
    fn spmv_matches_reference() {
        let coo = gen::stencil27(3);
        let a = spmv_alf(&coo);
        let csr = Csr::from_coo(&coo);
        let x: Vec<f64> = (0..coo.cols()).map(|i| (i as f64 * 0.3).sin()).collect();
        let (y, report) = engine().run_spmv(&a, &x).unwrap();
        let expect = alrescha_kernels::spmv::spmv(&csr, &x);
        assert!(alrescha_sparse::approx_eq(&y, &expect, 1e-12));
        assert!(report.cycles > 0);
        assert!(report.bandwidth_utilization > 0.0);
        assert_eq!(report.datapaths.gemv_blocks as usize, a.blocks().len());
    }

    #[test]
    fn recycled_engine_is_bit_identical() {
        // The contract behind per-worker engine reuse: a run on a recycled
        // engine must match a run on a fresh engine down to every report
        // field — including the RCU switch count, which would differ if the
        // previous run's data-path wiring leaked through the reset.
        let coo = gen::stencil27(3);
        let a = spmv_alf(&coo);
        let sg = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let x: Vec<f64> = (0..coo.cols()).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = vec![1.0; coo.rows()];

        let (y_fresh, r_fresh) = engine().run_spmv(&a, &x).unwrap();

        let mut eng = engine();
        // Dirty every piece of engine-lifetime state: a different kernel
        // (leaves the RCU wired for D-SymGS), a fault plan, a budget, and
        // an enabled trace.
        eng.set_fault_plan(Some(FaultPlan::inert(3)));
        eng.set_budget(ExecBudget {
            max_cycles: Some(u64::MAX),
            ..ExecBudget::default()
        });
        eng.enable_tracing();
        let mut xs = vec![0.0; coo.cols()];
        eng.run_symgs(&sg, &b, &mut xs).unwrap();

        eng.reset();
        let (y_reused, r_reused) = eng.run_spmv(&a, &x).unwrap();
        assert_eq!(r_fresh, r_reused, "reports must match field-for-field");
        for (p, q) in y_fresh.iter().zip(&y_reused) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        assert!(eng.fault_injector().is_none(), "reset disarms the plan");
        assert!(eng.take_trace().is_empty(), "reset clears the trace");
    }

    #[test]
    fn spmv_rejects_symgs_layout() {
        let coo = gen::stencil27(2);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let x = vec![0.0; a.cols()];
        assert!(matches!(
            engine().run_spmv(&a, &x),
            Err(SimError::LayoutMismatch { .. })
        ));
    }

    #[test]
    fn spmv_rejects_wrong_x_len() {
        let a = spmv_alf(&gen::stencil27(2));
        assert!(engine().run_spmv(&a, &[1.0]).is_err());
    }

    #[test]
    fn spmv_rejects_block_width_mismatch() {
        let coo = gen::stencil27(2);
        let a = Alf::from_coo(&coo, 4, AlfLayout::Streaming).unwrap();
        let x = vec![0.0; a.cols()];
        assert!(matches!(
            engine().run_spmv(&a, &x),
            Err(SimError::BlockWidthMismatch { .. })
        ));
    }

    #[test]
    fn symgs_forward_matches_reference() {
        let coo = gen::stencil27(3);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let csr = Csr::from_coo(&coo);
        let b: Vec<f64> = (0..coo.rows()).map(|i| 1.0 + (i % 5) as f64).collect();

        let mut x_sim = vec![0.0; coo.cols()];
        engine().run_symgs_forward(&a, &b, &mut x_sim).unwrap();

        let mut x_ref = vec![0.0; coo.cols()];
        alrescha_kernels::symgs::forward_sweep(&csr, &b, &mut x_ref).unwrap();
        assert!(alrescha_sparse::approx_eq(&x_sim, &x_ref, 1e-10));
    }

    #[test]
    fn symgs_full_matches_reference_on_all_classes() {
        for class in gen::ScienceClass::ALL {
            let coo = class.generate(120, 3);
            let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
            let csr = Csr::from_coo(&coo);
            let b: Vec<f64> = (0..coo.rows()).map(|i| (i as f64 * 0.7).cos()).collect();

            let mut x_sim = vec![0.0; coo.cols()];
            engine().run_symgs(&a, &b, &mut x_sim).unwrap();

            let mut x_ref = vec![0.0; coo.cols()];
            alrescha_kernels::symgs::symgs(&csr, &b, &mut x_ref).unwrap();
            assert!(
                alrescha_sparse::approx_eq(&x_sim, &x_ref, 1e-9),
                "mismatch on {}",
                class.name()
            );
        }
    }

    #[test]
    fn symgs_counts_both_datapaths_and_switches() {
        let coo = gen::stencil27(3);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let report = engine().run_symgs_forward(&a, &b, &mut x).unwrap();
        assert!(report.datapaths.gemv_blocks > 0);
        assert!(report.datapaths.dsymgs_blocks > 0);
        assert!(
            report.reconfig.switches > 1,
            "must switch between data paths"
        );
        assert_eq!(report.reconfig.exposed_cycles, 0, "drain hides the switch");
    }

    #[test]
    fn bfs_matches_reference() {
        let coo = gen::road_grid(6);
        let at = spmv_alf(&coo.transpose());
        let csr = Csr::from_coo(&coo);
        let (levels, report) = engine().run_bfs(&at, 0).unwrap();
        let expect = alrescha_kernels::graph::bfs(&csr, 0).unwrap();
        assert_eq!(levels, expect);
        assert!(report.datapaths.iterations > 1);
    }

    #[test]
    fn sssp_matches_reference() {
        let coo = gen::GraphClass::Social.generate(100, 5);
        let at = spmv_alf(&coo.transpose());
        let csr = Csr::from_coo(&coo);
        let (dist, _) = engine().run_sssp(&at, 0).unwrap();
        let expect = alrescha_kernels::graph::sssp(&csr, 0).unwrap();
        assert!(dist
            .iter()
            .zip(&expect)
            .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9));
    }

    #[test]
    fn pagerank_matches_reference() {
        let coo = gen::GraphClass::Kronecker.generate(64, 7);
        let at = spmv_alf(&coo.transpose());
        let csr = Csr::from_coo(&coo);
        let out_deg: Vec<usize> = (0..csr.rows()).map(|u| csr.row_nnz(u)).collect();
        let (ranks, report) = engine()
            .run_pagerank(&at, &out_deg, &PageRankConfig::default())
            .unwrap();
        let (expect, _) = alrescha_kernels::graph::pagerank(
            &csr,
            &alrescha_kernels::graph::PageRankOptions::default(),
        )
        .unwrap();
        assert!(alrescha_sparse::approx_eq(&ranks, &expect, 1e-6));
        assert!(report.datapaths.iterations > 1);
    }

    #[test]
    fn bfs_source_out_of_range() {
        let at = spmv_alf(&gen::road_grid(3).transpose());
        assert!(engine().run_bfs(&at, 10_000).is_err());
    }

    #[test]
    fn dsymgs_blocks_dominate_cycles_on_diagonal_matrices() {
        // A banded matrix living inside diagonal blocks: almost all time is
        // the sequential D-SymGS recurrence.
        let coo = gen::banded(256, 3, 1);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b = vec![1.0; 256];
        let mut x = vec![0.0; 256];
        let report = engine().run_symgs_forward(&a, &b, &mut x).unwrap();
        let step = SimConfig::paper().dsymgs_step_latency();
        let dsymgs_cycles = report.datapaths.dsymgs_blocks * 8 * step;
        assert!(
            dsymgs_cycles * 2 > report.cycles,
            "dsymgs {} of total {}",
            dsymgs_cycles,
            report.cycles
        );
    }

    #[test]
    fn energy_counters_populate() {
        let coo = gen::stencil27(2);
        let a = spmv_alf(&coo);
        let x = vec![1.0; a.cols()];
        let (_, report) = engine().run_spmv(&a, &x).unwrap();
        assert!(report.energy.alu_ops > 0);
        assert!(report.energy.re_ops > 0);
        assert!(report.energy.dram_bytes > 0);
        assert!(report.energy.cache_accesses > 0);
    }
}

#[cfg(test)]
mod breakdown_tests {
    use super::*;
    use alrescha_sparse::gen;

    #[test]
    fn breakdown_accounts_every_cycle() {
        let coo = gen::stencil27(4);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        let report = engine.run_symgs_forward(&a, &b, &mut x).unwrap();
        assert_eq!(
            report.breakdown.total(),
            report.cycles,
            "breakdown {:?} vs cycles {}",
            report.breakdown,
            report.cycles
        );
        assert!(report.breakdown.gemv_cycles > 0);
        assert!(report.breakdown.dsymgs_cycles > 0);
        assert!(report.breakdown.drain_cycles > 0);
        assert_eq!(report.breakdown.graph_cycles, 0);
    }

    #[test]
    fn overlap_drain_removes_switch_cost() {
        let coo = gen::stencil27(4);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b = vec![1.0; coo.rows()];

        let mut baseline_engine = Engine::new(SimConfig::paper());
        let mut x1 = vec![0.0; coo.cols()];
        let baseline = baseline_engine.run_symgs_forward(&a, &b, &mut x1).unwrap();

        let mut overlap_engine = Engine::new(SimConfig::paper().with_overlap_drain(true));
        let mut x2 = vec![0.0; coo.cols()];
        let overlapped = overlap_engine.run_symgs_forward(&a, &b, &mut x2).unwrap();

        assert!(overlapped.cycles < baseline.cycles);
        assert!(overlapped.breakdown.drain_cycles < baseline.breakdown.drain_cycles);
        // Functional results are identical: the knob is timing-only.
        assert_eq!(x1, x2);
    }

    #[test]
    fn spmv_breakdown_is_gemv_plus_drain() {
        let coo = gen::stencil27(3);
        let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).unwrap();
        let x = vec![1.0; coo.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        let (_, report) = engine.run_spmv(&a, &x).unwrap();
        assert_eq!(report.breakdown.total(), report.cycles);
        assert_eq!(report.breakdown.dsymgs_cycles, 0);
        assert!(report.breakdown.gemv_cycles > report.breakdown.drain_cycles);
    }

    #[test]
    fn graph_breakdown_uses_graph_bucket() {
        let coo = gen::road_grid(5);
        let at = Alf::from_coo(&coo.transpose(), 8, AlfLayout::Streaming).unwrap();
        let mut engine = Engine::new(SimConfig::paper());
        let (_, report) = engine.run_bfs(&at, 0).unwrap();
        assert_eq!(report.breakdown.total(), report.cycles);
        assert!(report.breakdown.graph_cycles > 0);
        assert_eq!(report.breakdown.gemv_cycles, 0);
    }
}

#[cfg(test)]
mod link_stack_tests {
    use super::*;
    use alrescha_sparse::gen;

    #[test]
    fn symgs_reports_link_stack_peak() {
        let coo = gen::stencil27(4);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        let report = engine.run_symgs_forward(&a, &b, &mut x).unwrap();
        // Every block row with k off-diagonal blocks pushes k*omega entries
        // before D-SymGS pops them, so the peak is a positive multiple of
        // omega.
        assert!(report.datapaths.link_stack_peak >= 8);
        assert_eq!(report.datapaths.link_stack_peak % 8, 0);
    }

    #[test]
    fn spmv_does_not_use_the_link_stack() {
        let coo = gen::stencil27(3);
        let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).unwrap();
        let x = vec![1.0; coo.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        let (_, report) = engine.run_spmv(&a, &x).unwrap();
        assert_eq!(report.datapaths.link_stack_peak, 0);
    }

    #[test]
    fn lifo_handoff_preserves_functional_result() {
        // The stack reverses the order of GEMV results; the per-lane
        // reduction must still match the reference sweep exactly.
        let coo = gen::electromagnetic(200, 3);
        let csr = alrescha_sparse::Csr::from_coo(&coo);
        let b: Vec<f64> = (0..200).map(|i| (f64::from(i) * 0.7).sin()).collect();

        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let mut x_dev = vec![0.0; 200];
        Engine::new(SimConfig::paper())
            .run_symgs_forward(&a, &b, &mut x_dev)
            .unwrap();

        let mut x_ref = vec![0.0; 200];
        alrescha_kernels::symgs::forward_sweep(&csr, &b, &mut x_ref).unwrap();
        assert!(alrescha_sparse::approx_eq(&x_dev, &x_ref, 1e-10));
    }
}

#[cfg(test)]
mod runtime_tests {
    use super::*;
    use crate::runtime::ExecBudget;
    use alrescha_sparse::gen;

    #[test]
    fn cycle_budget_interrupts_spmv() {
        let coo = gen::stencil27(4);
        let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).unwrap();
        let x = vec![1.0; a.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        engine.set_budget(ExecBudget::cycles(50));
        match engine.run_spmv(&a, &x) {
            Err(SimError::DeadlineExceeded { budget, cycle }) => {
                assert_eq!(budget, "cycle");
                assert!(cycle > 50, "reported cycle is where the budget tripped");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn open_budget_is_bit_identical_to_no_budget() {
        let coo = gen::stencil27(3);
        let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).unwrap();
        let x: Vec<f64> = (0..a.cols()).map(|i| (i as f64 * 0.3).sin()).collect();
        let (y_plain, r_plain) = Engine::new(SimConfig::paper()).run_spmv(&a, &x).unwrap();
        let mut budgeted = Engine::new(SimConfig::paper());
        budgeted.set_budget(ExecBudget::none().with_watchdog(4096));
        let (y_budget, r_budget) = budgeted.run_spmv(&a, &x).unwrap();
        assert_eq!(y_plain, y_budget);
        assert_eq!(r_plain.cycles, r_budget.cycles);
    }

    #[test]
    fn wedged_scheduler_stalls_within_watchdog() {
        let coo = gen::stencil27(3);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        engine.set_fault_plan(Some(FaultPlan::inert(1).with_dsymgs_stall_after(2)));
        engine.set_budget(ExecBudget::cycles(1_000_000).with_watchdog(512));
        match engine.run_symgs_forward(&a, &b, &mut x) {
            Err(SimError::Stalled {
                site,
                cycle,
                idle_cycles,
            }) => {
                assert_eq!(site, "d-symgs block scheduler");
                assert_eq!(idle_cycles, 512);
                assert!(cycle <= 1_000_000, "stall detected within the budget");
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
        let counters = engine.fault_injector().unwrap().counters();
        assert_eq!(counters.injected, 1);
        assert_eq!(counters.detected, 1);
    }

    #[test]
    fn wedge_under_tight_budget_reports_deadline_first() {
        let coo = gen::stencil27(3);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        engine.set_fault_plan(Some(FaultPlan::inert(1).with_dsymgs_stall_after(0)));
        // The watchdog window extends past the cycle budget, so the budget
        // expires first.
        engine.set_budget(ExecBudget::cycles(100).with_watchdog(1 << 20));
        match engine.run_symgs_forward(&a, &b, &mut x) {
            Err(SimError::DeadlineExceeded { budget, cycle }) => {
                assert_eq!(budget, "cycle");
                assert_eq!(cycle, 100);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn wall_clock_budget_zero_trips_immediately() {
        let coo = gen::stencil27(3);
        let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).unwrap();
        let x = vec![1.0; a.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        engine.set_budget(ExecBudget::none().with_wall(std::time::Duration::ZERO));
        assert!(matches!(
            engine.run_spmv(&a, &x),
            Err(SimError::DeadlineExceeded {
                budget: "wall-clock",
                ..
            })
        ));
    }

    #[test]
    fn retry_recovery_lands_in_recovery_bucket() {
        let coo = gen::stencil27(3);
        let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).unwrap();
        let x = vec![1.0; a.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        engine.set_fault_plan(Some(FaultPlan::inert(7).with_fcu_lane_rate(0.05)));
        engine.set_recovery_policy(RecoveryPolicy::Retry {
            max_retries: 8,
            backoff_cycles: 16,
        });
        let (_, report) = engine.run_spmv(&a, &x).unwrap();
        assert!(report.faults.retries > 0, "plan must force at least one retry");
        assert!(
            report.breakdown.recovery_cycles > 0,
            "retry redo work must be charged to the recovery bucket"
        );
        assert_eq!(report.breakdown.total(), report.cycles);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::trace::TraceEvent;
    use alrescha_sparse::gen;

    #[test]
    fn symgs_trace_orders_gemv_before_dsymgs_per_block_row() {
        let coo = gen::stencil27(4);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        engine.enable_tracing();
        engine.run_symgs_forward(&a, &b, &mut x).unwrap();
        let events = engine.take_trace();
        assert!(!events.is_empty());

        // Within each block row, every GEMV block precedes the D-SymGS.
        let mut seen_dsymgs_for_row: Option<usize> = None;
        for event in &events {
            if let TraceEvent::BlockBegin {
                block_row, kind, ..
            } = event
            {
                match kind {
                    DataPathKind::DSymGs => seen_dsymgs_for_row = Some(*block_row),
                    DataPathKind::Gemv => {
                        if let Some(done_row) = seen_dsymgs_for_row {
                            assert_ne!(
                                *block_row, done_row,
                                "gemv after d-symgs within block row {done_row}"
                            );
                        }
                    }
                    _ => unreachable!("symgs uses only gemv and d-symgs"),
                }
            }
        }
    }

    #[test]
    fn trace_brackets_the_kernel() {
        let coo = gen::stencil27(2);
        let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).unwrap();
        let x = vec![1.0; coo.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        engine.enable_tracing();
        let (_, report) = engine.run_spmv(&a, &x).unwrap();
        let events = engine.take_trace();
        assert_eq!(
            events.first(),
            Some(&TraceEvent::KernelBegin { kernel: "spmv" })
        );
        assert_eq!(
            events.last(),
            Some(&TraceEvent::KernelEnd {
                cycles: report.cycles
            })
        );
        let blocks = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::BlockBegin { .. }))
            .count();
        assert_eq!(blocks, a.blocks().len());
    }

    #[test]
    fn reconfigure_events_match_report_switches() {
        let coo = gen::stencil27(3);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        engine.enable_tracing();
        let report = engine.run_symgs_forward(&a, &b, &mut x).unwrap();
        let events = engine.take_trace();
        let reconfigs = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Reconfigure { .. }))
            .count() as u64;
        assert_eq!(reconfigs, report.reconfig.switches);
    }

    #[test]
    fn tracing_off_by_default() {
        let coo = gen::stencil27(2);
        let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).unwrap();
        let x = vec![1.0; coo.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        engine.run_spmv(&a, &x).unwrap();
        assert!(engine.take_trace().is_empty());
    }
}

impl Engine {
    /// Runs SpMV streaming the matrix in *CSR* instead of the locally-dense
    /// format — the ALRESCHA-minus-its-format ablation.
    ///
    /// The same FCU/RCU hardware now pays for what the format otherwise
    /// eliminates: column indices and row pointers stream alongside the
    /// values (12 bytes per non-zero instead of dense 8-byte payload), the
    /// vector operand is gathered per element through the cache with no
    /// chunk locality, and rows shorter than ω leave ALU lanes idle. This
    /// quantifies the paper's "NOT transferring meta-data" row of Table 2
    /// on otherwise identical hardware.
    ///
    /// # Errors
    ///
    /// [`SimError::DimensionMismatch`] if `x.len() != a.cols()`.
    pub fn run_spmv_csr(
        &mut self,
        a: &alrescha_sparse::Csr,
        x: &[f64],
    ) -> Result<(Vec<f64>, ExecutionReport)> {
        if x.len() != a.cols() {
            return Err(SimError::DimensionMismatch {
                expected: a.cols(),
                found: x.len(),
            });
        }
        let omega = self.config.omega;
        let mut state = self.begin(Reduce::Sum);
        self.trace
            .record(crate::trace::TraceEvent::KernelBegin { kernel: "spmv-csr" });
        self.rcu
            .configure(DataPathKind::Gemv, self.fcu.drain(Reduce::Sum));

        let mut y = vec![0.0; a.rows()];
        // Row pointers stream once (4 bytes each).
        state.memory.record_bytes((a.rows() as u64 + 1) * 4);
        for (r, yr) in y.iter_mut().enumerate() {
            self.check_budget(&state)?;
            let row: Vec<(usize, f64)> = a.row_entries(r).collect();
            let mut acc = 0.0;
            for chunk in row.chunks(omega) {
                // Values (8 B) + column indices (4 B) per element, padded
                // to the ω-lane issue width.
                let payload_values = chunk.len() + chunk.len().div_ceil(2); // 12 B/nnz in 8 B units
                let mem = state.memory.stream_values(payload_values.max(1));
                // Irregular gather: every element is its own cache access,
                // no chunk reuse guarantee.
                let mut gather_cycles = 0u64;
                for &(c, _) in chunk {
                    let access = self.cache.read(c);
                    if !access.hit {
                        state.memory.stream_values(self.config.values_per_line());
                    }
                    gather_cycles += 1;
                }
                state.cache_busy += gather_cycles;
                // One ω-wide FCU pass per chunk, lanes beyond the chunk idle.
                let mut lanes = vec![0.0; omega];
                let mut operand = vec![0.0; omega];
                for (k, &(c, v)) in chunk.iter().enumerate() {
                    lanes[k] = v;
                    operand[k] = x[c];
                }
                acc += self.fcu.mac_row(&lanes, &operand);
                let compute = 1u64.max(gather_cycles);
                let cycles = mem.max(compute);
                state.cycles += cycles;
                state.breakdown.gemv_cycles += cycles;
                state.counts.gemv_blocks += 1;
            }
            *yr = acc;
        }
        state.memory.record_bytes(a.rows() as u64 * 8);
        let report = self.finish("spmv-csr", state, Reduce::Sum);
        Ok((y, report))
    }
}

#[cfg(test)]
mod csr_mode_tests {
    use super::*;
    use alrescha_sparse::{gen, Csr};

    #[test]
    fn csr_mode_is_functionally_correct() {
        let coo = gen::stencil27(3);
        let csr = Csr::from_coo(&coo);
        let x: Vec<f64> = (0..coo.cols()).map(|i| (i as f64 * 0.21).cos()).collect();
        let (y, _) = Engine::new(SimConfig::paper())
            .run_spmv_csr(&csr, &x)
            .unwrap();
        let expect = alrescha_kernels::spmv::spmv(&csr, &x);
        assert!(alrescha_sparse::approx_eq(&y, &expect, 1e-12));
    }

    #[test]
    fn locally_dense_format_beats_csr_streaming_on_stencils() {
        // The format ablation: same hardware, same matrix — the
        // locally-dense layout must win on block-friendly structure.
        let coo = gen::stencil27(6);
        let csr = Csr::from_coo(&coo);
        let alf = Alf::from_coo(&coo, 8, AlfLayout::Streaming).unwrap();
        let x = vec![1.0; coo.cols()];

        let (_, alf_report) = Engine::new(SimConfig::paper()).run_spmv(&alf, &x).unwrap();
        let (_, csr_report) = Engine::new(SimConfig::paper())
            .run_spmv_csr(&csr, &x)
            .unwrap();
        assert!(
            alf_report.cycles < csr_report.cycles,
            "alf {} csr {}",
            alf_report.cycles,
            csr_report.cycles
        );
    }

    #[test]
    fn csr_mode_streams_metadata() {
        use alrescha_sparse::MetaData;
        let coo = gen::banded(200, 3, 1);
        let csr = Csr::from_coo(&coo);
        let x = vec![1.0; 200];
        let (_, report) = Engine::new(SimConfig::paper())
            .run_spmv_csr(&csr, &x)
            .unwrap();
        // At least 12 bytes per nnz must have moved (values + indices).
        assert!(report.bytes_streamed >= 12 * csr.nnz() as u64);
    }

    #[test]
    fn csr_mode_rejects_bad_operand() {
        let csr = Csr::from_coo(&gen::banded(10, 1, 1));
        assert!(Engine::new(SimConfig::paper())
            .run_spmv_csr(&csr, &[1.0])
            .is_err());
    }
}

impl Engine {
    /// Runs connected components by label propagation over `at`, the
    /// [`AlfLayout::Streaming`] format of the *symmetrized, transposed*
    /// adjacency (callers symmetrize; propagation needs both directions).
    ///
    /// A new dense data path built from the existing machinery: phase-1
    /// pass-through of neighbor labels, `min` reduce, compare-and-assign —
    /// demonstrating the §4.2 claim that Table 1's common phases make new
    /// kernels cheap to add. Returns the per-vertex component labels.
    ///
    /// # Errors
    ///
    /// Layout/shape errors as in [`Engine::run_spmv`].
    pub fn run_connected_components(&mut self, at: &Alf) -> Result<(Vec<usize>, ExecutionReport)> {
        if at.layout() != AlfLayout::Streaming {
            return Err(SimError::LayoutMismatch {
                expected: "streaming",
                found: "symgs",
            });
        }
        if at.rows() != at.cols() {
            return Err(SimError::DimensionMismatch {
                expected: at.rows(),
                found: at.cols(),
            });
        }
        let omega = self.config.omega;
        if at.omega() != omega {
            return Err(SimError::BlockWidthMismatch {
                engine: omega,
                matrix: at.omega(),
            });
        }

        let n = at.rows();
        let mut label: Vec<f64> = (0..n).map(|v| v as f64).collect();
        let mut state = self.begin(Reduce::Min);
        self.trace
            .record(crate::trace::TraceEvent::KernelBegin { kernel: "cc" });
        let exposed = self
            .rcu
            .configure(DataPathKind::DBfs, self.fcu.drain(Reduce::Min));
        self.trace_reconfigure(DataPathKind::DBfs, exposed);
        let mut rounds = 0u64;

        loop {
            let mut changed = false;
            rounds += 1;
            self.check_budget(&state)?;
            for block in at.blocks() {
                let dst_base = block.block_row() * omega;
                let src_base = block.block_col() * omega;
                self.trace_block(block.block_row(), block.block_col(), DataPathKind::DBfs);
                let payload = state.memory.stream_values(omega * omega);
                self.read_chunk(&mut state, REGION_X, src_base, n);
                let block_cycles = payload.max(omega as u64);
                state.cycles += block_cycles;
                state.breakdown.graph_cycles += block_cycles;
                state.counts.graph_blocks += 1;
                self.note_block_end(block_cycles);

                let operand = Self::operand_slice(&label, src_base, omega);
                for i in 0..omega {
                    let d = dst_base + i;
                    if d >= n {
                        continue;
                    }
                    let logical: Vec<f64> = (0..omega).map(|j| block.get(i, j)).collect();
                    // Phase 1 passes the neighbor label through untouched.
                    let cand = self.fcu.min_reduce_row(&logical, &operand, |_w, l| l);
                    if cand < label[d] {
                        let _ = self.rcu.pe_op();
                        self.cache.write(REGION_X + d);
                        state.cache_busy += 1;
                        label[d] = cand;
                        changed = true;
                    }
                }
            }
            if !changed || rounds as usize > n {
                break;
            }
        }

        state.memory.record_bytes(n as u64 * 8);
        let mut report = self.finish("cc", state, Reduce::Min);
        report.datapaths.iterations = rounds;
        Ok((label.iter().map(|&l| l as usize).collect(), report))
    }
}

#[cfg(test)]
mod cc_tests {
    use super::*;
    use alrescha_sparse::{gen, Coo, Csr};

    fn symmetrized_transposed(adj: &Coo) -> Alf {
        let mut sym = adj.clone();
        for &(u, v, w) in adj.entries() {
            sym.push(v, u, w);
        }
        Alf::from_coo(&sym.transpose().compress(), 8, AlfLayout::Streaming).unwrap()
    }

    #[test]
    fn cc_matches_reference_on_road_grid() {
        let adj = gen::road_grid(6);
        let at = symmetrized_transposed(&adj);
        let (labels, report) = Engine::new(SimConfig::paper())
            .run_connected_components(&at)
            .unwrap();
        let expect = alrescha_kernels::graph::connected_components(&Csr::from_coo(&adj)).unwrap();
        assert_eq!(labels, expect);
        assert!(report.datapaths.iterations >= 1);
    }

    #[test]
    fn cc_finds_separate_components() {
        let mut coo = Coo::new(10, 10);
        coo.push(0, 1, 1.0);
        coo.push(2, 3, 1.0);
        coo.push(3, 4, 1.0);
        let at = symmetrized_transposed(&coo);
        let (labels, _) = Engine::new(SimConfig::paper())
            .run_connected_components(&at)
            .unwrap();
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 0);
        assert_eq!(labels[2], 2);
        assert_eq!(labels[4], 2);
        assert_eq!(labels[9], 9);
    }

    #[test]
    fn cc_rejects_symgs_layout() {
        let coo = gen::stencil27(2);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        assert!(Engine::new(SimConfig::paper())
            .run_connected_components(&a)
            .is_err());
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use alrescha_sparse::gen;

    #[test]
    fn pagerank_budget_exhaustion_is_an_error() {
        let coo = gen::GraphClass::Kronecker.generate(64, 5);
        let at = Alf::from_coo(&coo.transpose(), 8, AlfLayout::Streaming).unwrap();
        let csr = alrescha_sparse::Csr::from_coo(&coo);
        let out_deg: Vec<usize> = (0..csr.rows()).map(|u| csr.row_nnz(u)).collect();
        let opts = PageRankConfig {
            max_iters: 1,
            tol: 1e-16,
            ..Default::default()
        };
        let err = Engine::new(SimConfig::paper()).run_pagerank(&at, &out_deg, &opts);
        assert!(matches!(
            err,
            Err(SimError::NoConvergence { iterations: 1 })
        ));
    }

    #[test]
    fn non_power_of_two_lanes_run_spmv_correctly() {
        let coo = gen::banded(50, 2, 3);
        let config = SimConfig::paper().with_omega(6);
        let a = Alf::from_coo(&coo, 6, AlfLayout::Streaming).unwrap();
        let x: Vec<f64> = (0..50).map(|i| (f64::from(i) * 0.4).sin()).collect();
        let (y, report) = Engine::new(config).run_spmv(&a, &x).unwrap();
        let expect = alrescha_kernels::spmv::spmv(&alrescha_sparse::Csr::from_coo(&coo), &x);
        assert!(alrescha_sparse::approx_eq(&y, &expect, 1e-12));
        assert!(report.cycles > 0);
    }

    #[test]
    fn empty_matrix_spmv_is_trivial() {
        let coo = alrescha_sparse::Coo::new(16, 16);
        let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).unwrap();
        let x = vec![1.0; 16];
        let (y, report) = Engine::new(SimConfig::paper()).run_spmv(&a, &x).unwrap();
        assert_eq!(y, vec![0.0; 16]);
        assert_eq!(report.datapaths.gemv_blocks, 0);
    }

    #[test]
    fn single_vertex_graph_kernels() {
        let mut coo = alrescha_sparse::Coo::new(1, 1);
        let _ = &mut coo; // no edges
        let at = Alf::from_coo(&coo, 8, AlfLayout::Streaming).unwrap();
        let (levels, _) = Engine::new(SimConfig::paper()).run_bfs(&at, 0).unwrap();
        assert_eq!(levels, vec![0.0]);
    }
}

impl Engine {
    /// One forward SOR sweep on the device: the D-SymGS data path with the
    /// RCU's PEs additionally applying the relaxation blend
    /// `x ← (1−ω_r)·x_old + ω_r·x_gs` (one extra PE operation per row —
    /// the LUT-based PEs provide exactly these operations, §4.3).
    ///
    /// `omega_relax = 1` is identical to [`Engine::run_symgs_forward`].
    ///
    /// # Errors
    ///
    /// The [`Engine::run_symgs_forward`] conditions, plus
    /// [`SimError::DimensionMismatch`] for a relaxation factor outside
    /// `(0, 2)`.
    pub fn run_sor_forward(
        &mut self,
        a: &Alf,
        b: &[f64],
        x: &mut [f64],
        omega_relax: f64,
    ) -> Result<ExecutionReport> {
        if !(omega_relax > 0.0 && omega_relax < 2.0) {
            return Err(SimError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        self.run_sor_sweep(a, b, x, false, omega_relax)
    }
}

#[cfg(test)]
mod sor_tests {
    use super::*;
    use alrescha_sparse::gen;

    #[test]
    fn device_sor_matches_reference() {
        let coo = gen::stencil27(3);
        let csr = alrescha_sparse::Csr::from_coo(&coo);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b: Vec<f64> = (0..coo.rows()).map(|i| (i as f64 * 0.3).sin()).collect();

        for omega_relax in [1.0f64, 1.3, 0.7] {
            let mut x_dev = vec![0.0; coo.cols()];
            Engine::new(SimConfig::paper())
                .run_sor_forward(&a, &b, &mut x_dev, omega_relax)
                .unwrap();
            let mut x_ref = vec![0.0; coo.cols()];
            alrescha_kernels::smoothers::sor_forward(&csr, &b, &mut x_ref, omega_relax).unwrap();
            assert!(
                alrescha_sparse::approx_eq(&x_dev, &x_ref, 1e-9),
                "omega_relax {omega_relax}"
            );
        }
    }

    #[test]
    fn device_sor_rejects_bad_relaxation() {
        let coo = gen::stencil27(2);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let mut engine = Engine::new(SimConfig::paper());
        assert!(engine.run_sor_forward(&a, &b, &mut x, 0.0).is_err());
        assert!(engine.run_sor_forward(&a, &b, &mut x, 2.5).is_err());
    }
}

impl Engine {
    /// One backward SOR sweep on the device (rows descending).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run_sor_forward`].
    pub fn run_sor_backward(
        &mut self,
        a: &Alf,
        b: &[f64],
        x: &mut [f64],
        omega_relax: f64,
    ) -> Result<ExecutionReport> {
        if !(omega_relax > 0.0 && omega_relax < 2.0) {
            return Err(SimError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        self.run_sor_sweep(a, b, x, true, omega_relax)
    }

    /// One symmetric SOR (SSOR) application on the device: forward then
    /// backward sweep. `omega_relax = 1` is [`Engine::run_symgs`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::run_sor_forward`].
    pub fn run_ssor(
        &mut self,
        a: &Alf,
        b: &[f64],
        x: &mut [f64],
        omega_relax: f64,
    ) -> Result<ExecutionReport> {
        let mut report = self.run_sor_forward(a, b, x, omega_relax)?;
        let back = self.run_sor_backward(a, b, x, omega_relax)?;
        report.merge(&back, &self.config.clone());
        report.datapaths.iterations = 1;
        Ok(report)
    }
}

#[cfg(test)]
mod ssor_tests {
    use super::*;
    use alrescha_sparse::gen;

    #[test]
    fn device_ssor_matches_reference_for_any_relaxation() {
        let coo = gen::electromagnetic(150, 9);
        let csr = alrescha_sparse::Csr::from_coo(&coo);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b: Vec<f64> = (0..coo.rows()).map(|i| 1.0 + (i % 4) as f64).collect();
        for omega_relax in [1.0f64, 1.4, 0.6] {
            let mut x_dev = vec![0.0; coo.cols()];
            Engine::new(SimConfig::paper())
                .run_ssor(&a, &b, &mut x_dev, omega_relax)
                .unwrap();
            let mut x_ref = vec![0.0; coo.cols()];
            alrescha_kernels::smoothers::ssor(&csr, &b, &mut x_ref, omega_relax).unwrap();
            assert!(
                alrescha_sparse::approx_eq(&x_dev, &x_ref, 1e-9),
                "omega_relax {omega_relax}"
            );
        }
    }

    #[test]
    fn ssor_at_unit_relaxation_equals_symgs_on_device() {
        let coo = gen::stencil27(3);
        let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).unwrap();
        let b = vec![1.0; coo.rows()];
        let mut x1 = vec![0.0; coo.cols()];
        Engine::new(SimConfig::paper())
            .run_ssor(&a, &b, &mut x1, 1.0)
            .unwrap();
        let mut x2 = vec![0.0; coo.cols()];
        Engine::new(SimConfig::paper())
            .run_symgs(&a, &b, &mut x2)
            .unwrap();
        assert_eq!(x1, x2);
    }
}
