//! Table 2 — the feature matrix comparing the accelerators.

/// Feature flags of one platform, following Table 2's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Platform name.
    pub name: &'static str,
    /// Application domain string as the table prints it.
    pub domain: &'static str,
    /// Supports multiple distinct kernels in one algorithm.
    pub multi_kernel: bool,
    /// Qualitative bandwidth-utilization class.
    pub bandwidth_utilization: &'static str,
    /// Avoids transferring meta-data at runtime.
    pub no_metadata_transfer: bool,
    /// Storage format string as the table prints it.
    pub storage_format: &'static str,
    /// Cache optimizations for frequently-used vectors.
    pub vector_cache_optimizations: Option<bool>,
    /// Runtime reconfigurability.
    pub reconfigurable: bool,
    /// Resolves limited parallelism in fine granularity.
    pub resolves_limited_parallelism: Option<bool>,
}

/// The Table 2 comparison, one row per platform (ALRESCHA last).
pub const PLATFORM_CAPABILITIES: [Capabilities; 5] = [
    Capabilities {
        name: "graphr",
        domain: "graph",
        multi_kernel: false,
        bandwidth_utilization: "low",
        no_metadata_transfer: false,
        storage_format: "4x4 COO",
        vector_cache_optimizations: None,
        reconfigurable: false,
        resolves_limited_parallelism: None,
    },
    Capabilities {
        name: "outerspace",
        domain: "graph (only SpMV)",
        multi_kernel: false,
        bandwidth_utilization: "moderate",
        no_metadata_transfer: false,
        storage_format: "CSR",
        vector_cache_optimizations: Some(false),
        reconfigurable: false, // only for its cache hierarchy
        resolves_limited_parallelism: None,
    },
    Capabilities {
        name: "memristive",
        domain: "PDE solver",
        multi_kernel: false,
        bandwidth_utilization: "low",
        no_metadata_transfer: false,
        storage_format: "multi-size blocks (64..512)",
        vector_cache_optimizations: None,
        reconfigurable: false,
        resolves_limited_parallelism: Some(false),
    },
    Capabilities {
        name: "gpu-coloring",
        domain: "PDE solver",
        multi_kernel: false,
        bandwidth_utilization: "moderate",
        no_metadata_transfer: false,
        storage_format: "ELL",
        vector_cache_optimizations: Some(false),
        reconfigurable: false,
        resolves_limited_parallelism: Some(true), // instruction-level, pattern-limited
    },
    Capabilities {
        name: "alrescha",
        domain: "graph and PDE solver",
        multi_kernel: true,
        bandwidth_utilization: "high",
        no_metadata_transfer: true,
        storage_format: "8x8 blocking with fine-grained in-block ordering",
        vector_cache_optimizations: Some(true),
        reconfigurable: true,
        resolves_limited_parallelism: Some(true),
    },
];

/// Looks up a platform's capabilities by name.
pub fn capabilities_of(name: &str) -> Option<&'static Capabilities> {
    PLATFORM_CAPABILITIES.iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alrescha_is_the_only_multi_kernel_platform() {
        let multi: Vec<&str> = PLATFORM_CAPABILITIES
            .iter()
            .filter(|c| c.multi_kernel)
            .map(|c| c.name)
            .collect();
        assert_eq!(multi, vec!["alrescha"]);
    }

    #[test]
    fn alrescha_is_the_only_no_metadata_platform() {
        let none: Vec<&str> = PLATFORM_CAPABILITIES
            .iter()
            .filter(|c| c.no_metadata_transfer)
            .map(|c| c.name)
            .collect();
        assert_eq!(none, vec!["alrescha"]);
    }

    #[test]
    fn lookup_by_name() {
        assert!(capabilities_of("graphr").is_some());
        assert!(capabilities_of("unknown").is_none());
        assert_eq!(
            capabilities_of("alrescha").unwrap().bandwidth_utilization,
            "high"
        );
    }

    #[test]
    fn table_has_five_rows() {
        assert_eq!(PLATFORM_CAPABILITIES.len(), 5);
    }
}
