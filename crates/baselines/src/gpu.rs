//! GPU baseline model (NVIDIA Tesla K40c, Table 4): cuSPARSE-class SpMV in
//! ELL, SymGS with the row-reordering/coloring optimization \[8\], and
//! Gunrock-class graph processing.

use crate::params::{self, gpu, VALUE_BYTES};
use crate::{GraphKernel, KernelCost, MatrixProfile, Platform};

/// The GPU baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GpuModel;

impl GpuModel {
    /// Creates the model.
    pub fn new() -> Self {
        GpuModel
    }

    fn cost(seconds: f64, traffic: f64) -> KernelCost {
        KernelCost {
            seconds,
            energy_joules: gpu::ACTIVE_POWER_W * seconds
                + traffic * params::DRAM_PJ_PER_BYTE * 1e-12,
            traffic_bytes: traffic,
            cache_time_fraction: 0.0,
        }
    }

    /// ELL traffic for one pass over the matrix: every slot (padding
    /// included) moves a value and a column index, plus the dense vectors.
    fn ell_pass_bytes(profile: &MatrixProfile) -> f64 {
        let slots = (profile.n * profile.ell_width) as f64;
        slots * (VALUE_BYTES + params::INDEX_BYTES) + 2.0 * profile.n as f64 * VALUE_BYTES
    }

    /// Extra bytes from irregular gathers of the vector operand: each
    /// off-locality access drags a full memory sector.
    fn gather_bytes(profile: &MatrixProfile) -> f64 {
        profile.nnz as f64 * (1.0 - profile.near_diagonal_fraction) * gpu::GATHER_SECTOR_BYTES
    }

    /// Effective streaming bandwidth: the thread-per-row mapping leaves
    /// warp lanes idle on short rows, scaling achievable bandwidth down.
    fn stream_bandwidth(profile: &MatrixProfile) -> f64 {
        let mean_row = profile.nnz as f64 / profile.n.max(1) as f64;
        let row_factor = (mean_row / gpu::ROW_SATURATION_NNZ).min(1.0);
        gpu::BANDWIDTH * gpu::STREAM_UTILIZATION * row_factor.max(0.1)
    }
}

impl Platform for GpuModel {
    fn name(&self) -> &'static str {
        "gpu-k40c"
    }

    fn spmv(&self, profile: &MatrixProfile) -> Option<KernelCost> {
        let traffic = Self::ell_pass_bytes(profile) + Self::gather_bytes(profile);
        let seconds = traffic / Self::stream_bandwidth(profile);
        Some(Self::cost(seconds, traffic))
    }

    fn symgs(&self, profile: &MatrixProfile) -> Option<KernelCost> {
        // Two sweeps of ELL traffic; the parallel share of the work streams
        // at full efficiency, the dependent share serializes across color
        // steps at the calibrated per-op latency.
        let traffic = 2.0 * (Self::ell_pass_bytes(profile) + Self::gather_bytes(profile));
        let parallel_seconds =
            traffic * (1.0 - profile.gpu_sequential_fraction) / Self::stream_bandwidth(profile);
        let sequential_ops = 2.0 * profile.nnz as f64 * profile.gpu_sequential_fraction;
        let sequential_seconds = sequential_ops * gpu::DEPENDENT_OP_SECONDS;
        Some(Self::cost(parallel_seconds + sequential_seconds, traffic))
    }

    fn graph_round(&self, profile: &MatrixProfile, _kernel: GraphKernel) -> Option<KernelCost> {
        // CSR-class edge traffic plus frontier gathers, at graph-workload
        // bandwidth efficiency.
        let traffic = profile.nnz as f64 * (VALUE_BYTES + params::INDEX_BYTES)
            + Self::gather_bytes(profile)
            + 2.0 * profile.n as f64 * VALUE_BYTES;
        let seconds = traffic / (gpu::BANDWIDTH * gpu::GRAPH_UTILIZATION);
        Some(Self::cost(seconds, traffic))
    }

    fn vector_bandwidth(&self) -> f64 {
        gpu::BANDWIDTH * gpu::STREAM_UTILIZATION
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alrescha_sparse::{gen, Csr};

    fn profile() -> MatrixProfile {
        let a = Csr::from_coo(&gen::stencil27(4));
        MatrixProfile::from_csr(&a, 8)
    }

    #[test]
    fn spmv_is_bandwidth_bound() {
        let p = profile();
        let c = GpuModel::new().spmv(&p).unwrap();
        // Time must equal traffic over effective bandwidth (stencil27 rows
        // saturate the thread-per-row mapping, so no row-factor discount).
        let expect = c.traffic_bytes / GpuModel::stream_bandwidth(&p);
        assert!((c.seconds - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn symgs_is_dominated_by_dependent_ops() {
        let p = profile();
        let c = GpuModel::new().symgs(&p).unwrap();
        let seq = 2.0 * p.nnz as f64 * p.gpu_sequential_fraction * gpu::DEPENDENT_OP_SECONDS;
        assert!(seq / c.seconds > 0.8, "seq {} of total {}", seq, c.seconds);
    }

    #[test]
    fn symgs_much_slower_than_spmv() {
        let p = profile();
        let m = GpuModel::new();
        let spmv = m.spmv(&p).unwrap().seconds;
        let symgs = m.symgs(&p).unwrap().seconds;
        // Figure 3: SymGS dominates PCG time on the GPU.
        assert!(symgs > 5.0 * spmv, "symgs {symgs} spmv {spmv}");
    }

    #[test]
    fn graph_round_is_slower_per_byte_than_spmv() {
        let p = profile();
        let m = GpuModel::new();
        let spmv = m.spmv(&p).unwrap();
        let graph = m.graph_round(&p, GraphKernel::Bfs).unwrap();
        let spmv_bw = spmv.traffic_bytes / spmv.seconds;
        let graph_bw = graph.traffic_bytes / graph.seconds;
        assert!(graph_bw < spmv_bw / 1.5, "graph {graph_bw} spmv {spmv_bw}");
    }

    #[test]
    fn pcg_iteration_composes() {
        let p = profile();
        let m = GpuModel::new();
        let pcg = m.pcg_iteration(&p).unwrap();
        let parts = m.spmv(&p).unwrap().seconds + m.symgs(&p).unwrap().seconds;
        assert!(pcg.seconds > parts);
        assert!(pcg.energy_joules > 0.0);
    }
}
