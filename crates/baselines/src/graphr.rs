//! GraphR model (Song et al., HPCA 2018) — the ReRAM-based graph
//! accelerator the paper compares against in Figure 17.
//!
//! GraphR stores the graph in 4×4 COO blocks (Table 2) and processes each
//! block in a small ReRAM crossbar: analog compute is fast and cheap, but
//! every non-empty block costs a crossbar program/read cycle through digital
//! peripherals, and the 4×4 granularity multiplies the block count on sparse
//! graphs.

use crate::params::{self, graphr, VALUE_BYTES};
use crate::{GraphKernel, KernelCost, MatrixProfile, Platform};

/// The GraphR model. Graph kernels only (Table 2: "Graph").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphRModel;

impl GraphRModel {
    /// Creates the model.
    pub fn new() -> Self {
        GraphRModel
    }
}

impl Platform for GraphRModel {
    fn name(&self) -> &'static str {
        "graphr"
    }

    fn spmv(&self, _profile: &MatrixProfile) -> Option<KernelCost> {
        None // scientific kernels are outside GraphR's domain (Table 2)
    }

    fn symgs(&self, _profile: &MatrixProfile) -> Option<KernelCost> {
        None
    }

    fn graph_round(&self, profile: &MatrixProfile, _kernel: GraphKernel) -> Option<KernelCost> {
        // Crossbar time: one BLOCK_SECONDS per non-empty 4×4 block, spread
        // over the parallel crossbar array.
        let crossbar_seconds =
            profile.num_blocks_4 as f64 * graphr::BLOCK_SECONDS / graphr::PARALLEL_UNITS;
        // Memory side: blocks stream as dense 4×4 payloads plus per-block
        // COO coordinates (GraphR transfers meta-data, Table 2).
        let block_dim = graphr::BLOCK_DIM as f64;
        let traffic = profile.num_blocks_4 as f64
            * (block_dim * block_dim * VALUE_BYTES + 2.0 * params::INDEX_BYTES)
            + 2.0 * profile.n as f64 * VALUE_BYTES;
        let stream_seconds = traffic / graphr::BANDWIDTH;
        let seconds = crossbar_seconds.max(stream_seconds);
        Some(KernelCost {
            seconds,
            energy_joules: graphr::ACTIVE_POWER_W * seconds
                + traffic * params::DRAM_PJ_PER_BYTE * 1e-12,
            traffic_bytes: traffic,
            cache_time_fraction: 0.0,
        })
    }

    fn vector_bandwidth(&self) -> f64 {
        graphr::BANDWIDTH
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuModel, GpuModel};
    use alrescha_sparse::{gen, Csr};

    fn graph_profile() -> MatrixProfile {
        let a = Csr::from_coo(&gen::GraphClass::Social.generate(512, 3));
        MatrixProfile::from_csr(&a, 8)
    }

    #[test]
    fn only_graph_kernels_supported() {
        let p = graph_profile();
        let m = GraphRModel::new();
        assert!(m.spmv(&p).is_none());
        assert!(m.symgs(&p).is_none());
        assert!(m.graph_round(&p, GraphKernel::Bfs).is_some());
    }

    #[test]
    fn beats_cpu_and_gpu_on_graphs() {
        // Figure 17: GraphR sits above the GPU, below ALRESCHA.
        let p = graph_profile();
        let g = GraphRModel::new()
            .graph_round(&p, GraphKernel::Bfs)
            .unwrap()
            .seconds;
        let gpu = GpuModel::new()
            .graph_round(&p, GraphKernel::Bfs)
            .unwrap()
            .seconds;
        let cpu = CpuModel::new()
            .graph_round(&p, GraphKernel::Bfs)
            .unwrap()
            .seconds;
        assert!(g < gpu, "graphr {g} gpu {gpu}");
        assert!(g < cpu, "graphr {g} cpu {cpu}");
    }

    #[test]
    fn cost_scales_with_block_count() {
        let small = graph_profile();
        let big_a = Csr::from_coo(&gen::GraphClass::Social.generate(2048, 3));
        let big = MatrixProfile::from_csr(&big_a, 8);
        let m = GraphRModel::new();
        let t_small = m.graph_round(&small, GraphKernel::Sssp).unwrap().seconds;
        let t_big = m.graph_round(&big, GraphKernel::Sssp).unwrap().seconds;
        assert!(t_big > t_small);
    }
}
