//! Behavioral performance/energy models of the platforms the paper compares
//! ALRESCHA against (§5.1, Table 4): the CPU and GPU baselines and the
//! OuterSPACE, GraphR, and Memristive accelerators.
//!
//! The models follow the paper's own comparison methodology — analytic
//! traffic/latency models built from each platform's published parameters,
//! all given the same memory-bandwidth budget — with the effectiveness
//! constants collected and documented in [`params`].
//!
//! # Example
//!
//! ```
//! use alrescha_baselines::{GpuModel, MatrixProfile, Platform};
//! use alrescha_sparse::{gen, Csr};
//!
//! let a = Csr::from_coo(&gen::stencil27(3));
//! let profile = MatrixProfile::from_csr(&a, 8);
//! let cost = GpuModel::new().spmv(&profile).expect("gpu runs spmv");
//! assert!(cost.seconds > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod capabilities;
pub mod cpu;
pub mod gpu;
pub mod graphr;
pub mod memristive;
pub mod outerspace;
pub mod params;

pub use capabilities::{Capabilities, PLATFORM_CAPABILITIES};
pub use cpu::CpuModel;
pub use gpu::GpuModel;
pub use graphr::GraphRModel;
pub use memristive::MemristiveModel;
pub use outerspace::OuterSpaceModel;

use alrescha_kernels::parallelism;
use alrescha_sparse::{Bcsr, Csr, Ell, MetaData};

/// Graph kernel selector for [`Platform::graph_round`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKernel {
    /// Breadth-first search.
    Bfs,
    /// Single-source shortest paths.
    Sssp,
    /// PageRank.
    PageRank,
}

/// Modeled cost of one kernel execution (one matrix pass unless stated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Modeled wall-clock seconds.
    pub seconds: f64,
    /// Modeled energy in joules.
    pub energy_joules: f64,
    /// Bytes the model moved over the memory interface.
    pub traffic_bytes: f64,
    /// Fraction of the execution the platform spends on local-cache access
    /// (only meaningful for platforms that model one; 0.0 otherwise).
    pub cache_time_fraction: f64,
}

impl KernelCost {
    /// Adds another cost (sequential composition of kernels).
    #[must_use]
    pub fn plus(self, other: KernelCost) -> KernelCost {
        let seconds = self.seconds + other.seconds;
        KernelCost {
            seconds,
            energy_joules: self.energy_joules + other.energy_joules,
            traffic_bytes: self.traffic_bytes + other.traffic_bytes,
            cache_time_fraction: if seconds > 0.0 {
                (self.cache_time_fraction * self.seconds
                    + other.cache_time_fraction * other.seconds)
                    / seconds
            } else {
                0.0
            },
        }
    }

    /// Scales the cost by an iteration count.
    #[must_use]
    pub fn times(self, iterations: f64) -> KernelCost {
        KernelCost {
            seconds: self.seconds * iterations,
            energy_joules: self.energy_joules * iterations,
            traffic_bytes: self.traffic_bytes * iterations,
            cache_time_fraction: self.cache_time_fraction,
        }
    }
}

/// Pre-computed structural profile of one matrix, shared by all models.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProfile {
    /// Matrix dimension (square).
    pub n: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// ELL row width (max row nnz) — sizes the GPU's padded format.
    pub ell_width: usize,
    /// Fraction of non-zeros within ±ω of the diagonal (locality proxy).
    pub near_diagonal_fraction: f64,
    /// GPU sequential-operation fraction under coloring (Figure 16 metric).
    pub gpu_sequential_fraction: f64,
    /// Non-empty ω×ω blocks.
    pub num_blocks: usize,
    /// Mean fill of those blocks.
    pub block_fill: f64,
    /// Non-empty 4×4 blocks (GraphR's granularity).
    pub num_blocks_4: usize,
    /// Block width the blocked metrics used.
    pub omega: usize,
}

impl MatrixProfile {
    /// Measures a square CSR matrix at block width `omega`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `omega == 0`.
    pub fn from_csr(a: &Csr, omega: usize) -> Self {
        assert_eq!(
            a.rows(),
            a.cols(),
            "profiles are defined for square matrices"
        );
        assert!(omega > 0, "block width must be positive");
        let coo = a.to_coo();
        let ell = Ell::from_coo(&coo);
        let bcsr = Bcsr::from_coo(&coo, omega).expect("omega validated above");
        let bcsr4 = Bcsr::from_coo(&coo, 4).expect("constant block width");
        let stats = alrescha_sparse::stats::StructureStats::measure(&coo, omega)
            .expect("omega validated above");
        MatrixProfile {
            n: a.rows(),
            nnz: a.nnz(),
            ell_width: ell.width(),
            near_diagonal_fraction: stats.near_diagonal_fraction,
            gpu_sequential_fraction: parallelism::gpu_sequential_fraction(a),
            num_blocks: bcsr.num_blocks(),
            block_fill: bcsr.mean_block_fill(),
            num_blocks_4: bcsr4.num_blocks(),
            omega,
        }
    }
}

/// A modeled comparison platform.
///
/// Methods return `None` when the platform does not support the kernel
/// (Table 2's application-domain column): OuterSPACE only runs SpMV, GraphR
/// only graph kernels, the Memristive accelerator only the PDE kernels.
pub trait Platform {
    /// Human-readable platform name.
    fn name(&self) -> &'static str;

    /// One SpMV pass.
    fn spmv(&self, profile: &MatrixProfile) -> Option<KernelCost>;

    /// One symmetric Gauss-Seidel application (forward + backward sweep).
    fn symgs(&self, profile: &MatrixProfile) -> Option<KernelCost>;

    /// One round of a graph kernel (one pass over the edges).
    fn graph_round(&self, profile: &MatrixProfile, kernel: GraphKernel) -> Option<KernelCost>;

    /// One PCG iteration: SpMV + SymGS + the auxiliary vector operations
    /// (dots and AXPYs, ~10·n memory traffic, bandwidth-bound).
    fn pcg_iteration(&self, profile: &MatrixProfile) -> Option<KernelCost> {
        let spmv = self.spmv(profile)?;
        let symgs = self.symgs(profile)?;
        // Vector ops: 5 passes over n-length vectors, read+write.
        let vec_bytes = 10.0 * profile.n as f64 * params::VALUE_BYTES;
        let vec = KernelCost {
            seconds: vec_bytes / self.vector_bandwidth(),
            energy_joules: vec_bytes * params::DRAM_PJ_PER_BYTE * 1e-12,
            traffic_bytes: vec_bytes,
            cache_time_fraction: 0.0,
        };
        Some(spmv.plus(symgs).plus(vec))
    }

    /// Effective bandwidth for dense vector sweeps (defaults differ per
    /// platform; usually the streaming bandwidth).
    fn vector_bandwidth(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use alrescha_sparse::gen;

    #[test]
    fn profile_measures_sensible_values() {
        let a = Csr::from_coo(&gen::stencil27(3));
        let p = MatrixProfile::from_csr(&a, 8);
        assert_eq!(p.n, 27);
        assert!(p.nnz > 27);
        assert!(p.ell_width <= 27);
        assert!(p.gpu_sequential_fraction > 0.5);
        assert!(p.block_fill > 0.0 && p.block_fill <= 1.0);
        assert!(p.num_blocks_4 >= p.num_blocks);
    }

    #[test]
    fn kernel_cost_plus_and_times() {
        let a = KernelCost {
            seconds: 1.0,
            energy_joules: 2.0,
            traffic_bytes: 10.0,
            cache_time_fraction: 0.5,
        };
        let b = KernelCost {
            seconds: 3.0,
            energy_joules: 4.0,
            traffic_bytes: 30.0,
            cache_time_fraction: 0.1,
        };
        let sum = a.plus(b);
        assert_eq!(sum.seconds, 4.0);
        assert_eq!(sum.energy_joules, 6.0);
        assert_eq!(sum.traffic_bytes, 40.0);
        // Time-weighted cache fraction: (0.5*1 + 0.1*3)/4 = 0.2.
        assert!((sum.cache_time_fraction - 0.2).abs() < 1e-12);
        let scaled = a.times(10.0);
        assert_eq!(scaled.seconds, 10.0);
        assert_eq!(scaled.cache_time_fraction, 0.5);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn profile_rejects_rectangular() {
        let a = Csr::from_coo(&alrescha_sparse::Coo::new(2, 3));
        let _ = MatrixProfile::from_csr(&a, 8);
    }
}
