//! Memristive scientific-accelerator model (Feinberg et al., ISCA 2018) —
//! the state-of-the-art PDE-solver accelerator the paper compares against in
//! Figure 15.
//!
//! The accelerator maps multi-size dense blocks (64×64 … 512×512, Table 2)
//! of the sparse matrix onto memristive crossbars. Its blocked streaming is
//! efficient, but per Table 2 it does *not* resolve the data dependencies of
//! SymGS: the diagonal dependency chain executes row by row.

use crate::params::{self, memristive, VALUE_BYTES};
use crate::{GraphKernel, KernelCost, MatrixProfile, Platform};

/// The Memristive scientific-computing accelerator model. PDE kernels only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemristiveModel;

impl MemristiveModel {
    /// Creates the model.
    pub fn new() -> Self {
        MemristiveModel
    }

    fn cost(seconds: f64, traffic: f64) -> KernelCost {
        KernelCost {
            seconds,
            energy_joules: memristive::ACTIVE_POWER_W * seconds
                + traffic * params::DRAM_PJ_PER_BYTE * 1e-12,
            traffic_bytes: traffic,
            cache_time_fraction: 0.0,
        }
    }

    /// Blocked payload traffic for one pass: the crossbars consume dense
    /// blocks; fill below one inflates bytes by 1/fill, bounded by the
    /// matrix's blocked footprint at the profile's block width.
    fn pass_bytes(profile: &MatrixProfile) -> f64 {
        let fill = profile.block_fill.max(1e-3);
        profile.nnz as f64 * VALUE_BYTES / fill + 2.0 * profile.n as f64 * VALUE_BYTES
    }
}

impl Platform for MemristiveModel {
    fn name(&self) -> &'static str {
        "memristive"
    }

    fn spmv(&self, profile: &MatrixProfile) -> Option<KernelCost> {
        let traffic = Self::pass_bytes(profile);
        let seconds = traffic / (memristive::BANDWIDTH * memristive::STREAM_UTILIZATION);
        Some(Self::cost(seconds, traffic))
    }

    fn symgs(&self, profile: &MatrixProfile) -> Option<KernelCost> {
        // Streaming as in SpMV (two sweeps), plus the unresolved dependency
        // chain: one serial crossbar solve per matrix row per sweep.
        let traffic = 2.0 * Self::pass_bytes(profile);
        let stream_seconds = traffic / (memristive::BANDWIDTH * memristive::STREAM_UTILIZATION);
        let chain_seconds = 2.0 * profile.n as f64 * memristive::DEPENDENT_ROW_SECONDS;
        Some(Self::cost(stream_seconds + chain_seconds, traffic))
    }

    fn graph_round(&self, _profile: &MatrixProfile, _kernel: GraphKernel) -> Option<KernelCost> {
        None // graph analytics are outside its domain (Table 2)
    }

    fn vector_bandwidth(&self) -> f64 {
        memristive::BANDWIDTH * memristive::STREAM_UTILIZATION
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuModel;
    use alrescha_sparse::{gen, Csr};

    fn profile() -> MatrixProfile {
        let a = Csr::from_coo(&gen::stencil27(4));
        MatrixProfile::from_csr(&a, 8)
    }

    #[test]
    fn pde_kernels_only() {
        let p = profile();
        let m = MemristiveModel::new();
        assert!(m.spmv(&p).is_some());
        assert!(m.symgs(&p).is_some());
        assert!(m.pcg_iteration(&p).is_some());
        assert!(m.graph_round(&p, GraphKernel::Bfs).is_none());
    }

    #[test]
    fn beats_gpu_on_pcg() {
        // Figure 15: the Memristive accelerator sits above the GPU.
        let p = profile();
        let mem = MemristiveModel::new().pcg_iteration(&p).unwrap().seconds;
        let gpu = GpuModel::new().pcg_iteration(&p).unwrap().seconds;
        assert!(mem < gpu, "memristive {mem} gpu {gpu}");
    }

    #[test]
    fn dependency_chain_is_charged() {
        let p = profile();
        let symgs = MemristiveModel::new().symgs(&p).unwrap();
        let chain = 2.0 * p.n as f64 * memristive::DEPENDENT_ROW_SECONDS;
        assert!(symgs.seconds > chain);
    }

    #[test]
    fn low_fill_inflates_traffic() {
        let a = Csr::from_coo(&gen::scattered(512, 4, 9));
        let sparse_p = MatrixProfile::from_csr(&a, 8);
        let dense_p = profile();
        let m = MemristiveModel::new();
        let sparse_bpn = m.spmv(&sparse_p).unwrap().traffic_bytes / sparse_p.nnz as f64;
        let dense_bpn = m.spmv(&dense_p).unwrap().traffic_bytes / dense_p.nnz as f64;
        assert!(sparse_bpn > dense_bpn);
    }
}
