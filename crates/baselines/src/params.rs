//! Calibration constants for the behavioral platform models.
//!
//! §5.1 of the paper explains the methodology these models reproduce: the
//! comparison platforms (OuterSPACE, GraphR, the Memristive accelerator) are
//! modeled from the parameters their papers report, validated against those
//! papers' own numbers, and given the *same compute and memory-bandwidth
//! budget* as ALRESCHA. We extend the identical treatment to the CPU and GPU
//! baselines of Table 4. Every constant below is either a published device
//! parameter (bandwidths, clocks, power classes) or an effectiveness factor
//! calibrated so the model reproduces the baseline behaviour the paper
//! reports (GPU SpMV near cuSPARSE-class bandwidth efficiency, graph
//! workloads far below peak, SymGS dominated by dependent operations).

/// Bytes per double-precision value.
pub const VALUE_BYTES: f64 = 8.0;

/// Bytes per 32-bit index (CSR/ELL/COO meta-data element).
pub const INDEX_BYTES: f64 = 4.0;

/// GPU (NVIDIA Tesla K40c, Table 4).
pub mod gpu {
    /// Peak memory bandwidth in bytes/s (12 GB GDDR5, 288 GB/s).
    pub const BANDWIDTH: f64 = 288.0e9;
    /// Effective fraction of peak bandwidth for sparse streaming kernels:
    /// measured cuSPARSE-class double-precision SpMV efficiency on
    /// Kepler-generation parts sits in the 15-30 % band.
    pub const STREAM_UTILIZATION: f64 = 0.2;
    /// Effective fraction of peak bandwidth for irregular graph frontier
    /// processing (Gunrock-class workloads are notoriously memory-system
    /// bound; published BFS/SSSP throughputs sit below a tenth of peak).
    pub const GRAPH_UTILIZATION: f64 = 0.06;
    /// Wasted bytes per irregular vector access: an uncoalesced gather
    /// touches a 64-byte L2 sector to use one 8-byte value.
    pub const GATHER_SECTOR_BYTES: f64 = 64.0;
    /// Row width at which the thread-per-row SpMV mapping saturates the
    /// machine; shorter rows leave warp lanes idle, scaling the effective
    /// bandwidth by `min(1, mean_row_nnz / ROW_SATURATION_NNZ)`.
    pub const ROW_SATURATION_NNZ: f64 = 16.0;
    /// Latency charged per dependent (same-sweep) SymGS operation after
    /// coloring: color-step synchronization plus a dependent global-memory
    /// access, amortized. Calibrated so the PCG model lands in the paper's
    /// reported speedup band (Figure 15, 15.6× average over this GPU).
    pub const DEPENDENT_OP_SECONDS: f64 = 30.0e-9;
    /// Dynamic compute power attributable to the kernel in watts: the
    /// paper's energy methodology models the components an execution
    /// actually exercises, so we charge the SM/cache dynamic share of a
    /// memory-bound Kepler kernel rather than whole-board power.
    pub const ACTIVE_POWER_W: f64 = 50.0;
}

/// CPU (Intel Xeon E5-2630 v3, Table 4).
pub mod cpu {
    /// Peak memory bandwidth in bytes/s (128 GB DDR4, 59 GB/s).
    pub const BANDWIDTH: f64 = 59.0e9;
    /// Effective fraction of peak bandwidth for CSR SpMV (gathers defeat
    /// the prefetchers; published CSR SpMV efficiency on Haswell-class
    /// parts).
    pub const STREAM_UTILIZATION: f64 = 0.35;
    /// Effective fraction of peak bandwidth for graph processing
    /// (GridGraph/CuSha-class frameworks).
    pub const GRAPH_UTILIZATION: f64 = 0.10;
    /// Wasted bytes per irregular access (a 64-byte line per 8-byte value).
    pub const GATHER_SECTOR_BYTES: f64 = 64.0;
    /// Latency per dependent SymGS operation: CPUs run dependency chains
    /// well — an L1/L2-resident chained update.
    pub const DEPENDENT_OP_SECONDS: f64 = 2.0e-9;
    /// Active package power in watts (8-core Haswell under load).
    pub const ACTIVE_POWER_W: f64 = 85.0;
}

/// OuterSPACE (HPCA 2018) — outer-product SpMV/SpGEMM accelerator.
pub mod outerspace {
    /// Same bandwidth budget as ALRESCHA (§5.1's fairness rule).
    pub const BANDWIDTH: f64 = 288.0e9;
    /// Streaming efficiency of the outer-product pass over the matrix:
    /// the scatter phase's cache conflicts throttle the stream engine.
    pub const STREAM_UTILIZATION: f64 = 0.35;
    /// Partial products written and re-read through the local cache
    /// hierarchy: the outer product materializes one partial result per
    /// non-zero, scattered by destination row ("random access to a local
    /// cache", §3). Bytes per non-zero of extra cache/memory traffic (a
    /// partial product is written and re-read, value plus coordinate,
    /// through line-granular cache fills).
    pub const SCATTER_BYTES_PER_NNZ: f64 = 32.0;
    /// Fraction of execution time spent on local cache accesses — drives
    /// the Figure 18 line; OuterSPACE's scatter keeps its cache ports busy.
    pub const CACHE_TIME_FRACTION: f64 = 0.45;
    /// Active power in watts (the paper reports a ~24 W design; the SpMV
    /// configuration uses about half the PEs).
    pub const ACTIVE_POWER_W: f64 = 12.0;
}

/// GraphR (HPCA 2018) — ReRAM crossbar graph accelerator.
pub mod graphr {
    /// Same bandwidth budget as ALRESCHA.
    pub const BANDWIDTH: f64 = 288.0e9;
    /// GraphR stores 4×4 COO blocks (Table 2).
    pub const BLOCK_DIM: usize = 4;
    /// Seconds to process one 4×4 block in a ReRAM crossbar: an analog
    /// compute cycle plus digital peripheral conversion (GraphR reports
    /// ~30 ns-class read/process latencies per small crossbar operation).
    pub const BLOCK_SECONDS: f64 = 30.0e-9;
    /// Effective number of crossbar units operating in parallel after the
    /// ReRAM write-latency serialization that GraphR's streaming updates
    /// suffer (writes are an order of magnitude slower than reads).
    pub const PARALLEL_UNITS: f64 = 8.0;
    /// Active power in watts (ReRAM compute is cheap; peripherals dominate).
    pub const ACTIVE_POWER_W: f64 = 8.0;
}

/// Memristive scientific-computing accelerator (ISCA 2018).
pub mod memristive {
    /// Same bandwidth budget as ALRESCHA.
    pub const BANDWIDTH: f64 = 288.0e9;
    /// Streaming efficiency of its blocked format (multi-size blocks,
    /// Table 2); block fill below one keeps it under full utilization.
    pub const STREAM_UTILIZATION: f64 = 0.55;
    /// The accelerator does *not* resolve data dependencies (Table 2): the
    /// diagonal dependency chain is executed serially, one crossbar solve
    /// per dependent row, at this per-row latency.
    pub const DEPENDENT_ROW_SECONDS: f64 = 12.0e-9;
    /// Active power in watts.
    pub const ACTIVE_POWER_W: f64 = 15.0;
}

/// DRAM interface energy per byte in picojoules (GDDR5-class, the same
/// constant the simulator's energy model uses so cross-platform energy is
/// apples-to-apples).
pub const DRAM_PJ_PER_BYTE: f64 = 60.0;

#[cfg(test)]
mod tests {
    // The whole point of these tests is to pin relationships between
    // compile-time platform constants.
    #![allow(clippy::assertions_on_constants)]

    use super::*;

    #[test]
    fn bandwidth_budgets_match_the_fairness_rule() {
        // §5.1: accelerators get the same memory-bandwidth budget.
        assert_eq!(gpu::BANDWIDTH, 288.0e9);
        assert_eq!(outerspace::BANDWIDTH, 288.0e9);
        assert_eq!(graphr::BANDWIDTH, 288.0e9);
        assert_eq!(memristive::BANDWIDTH, 288.0e9);
    }

    #[test]
    fn cpu_is_weaker_than_gpu_in_bandwidth() {
        assert!(cpu::BANDWIDTH < gpu::BANDWIDTH);
        assert!(
            cpu::BANDWIDTH * cpu::STREAM_UTILIZATION < gpu::BANDWIDTH * gpu::STREAM_UTILIZATION
        );
    }

    #[test]
    fn cpu_handles_dependent_ops_better_than_gpu() {
        assert!(cpu::DEPENDENT_OP_SECONDS < gpu::DEPENDENT_OP_SECONDS);
    }

    #[test]
    fn graph_utilization_is_far_below_streaming() {
        assert!(gpu::GRAPH_UTILIZATION < gpu::STREAM_UTILIZATION / 3.0);
        assert!(cpu::GRAPH_UTILIZATION < cpu::STREAM_UTILIZATION / 3.0);
    }
}
