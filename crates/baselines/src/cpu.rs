//! CPU baseline model (Intel Xeon E5-2630 v3, Table 4): CSR SpMV, plain
//! Gauss-Seidel sweeps (CPUs run the dependency chain directly), and
//! GridGraph/CuSha-class graph processing.

use crate::params::{self, cpu, VALUE_BYTES};
use crate::{GraphKernel, KernelCost, MatrixProfile, Platform};

/// The CPU baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuModel;

impl CpuModel {
    /// Creates the model.
    pub fn new() -> Self {
        CpuModel
    }

    fn cost(seconds: f64, traffic: f64) -> KernelCost {
        KernelCost {
            seconds,
            energy_joules: cpu::ACTIVE_POWER_W * seconds
                + traffic * params::DRAM_PJ_PER_BYTE * 1e-12,
            traffic_bytes: traffic,
            cache_time_fraction: 0.0,
        }
    }

    /// CSR traffic for one pass: values + column indices + row pointers +
    /// dense vectors.
    fn csr_pass_bytes(profile: &MatrixProfile) -> f64 {
        profile.nnz as f64 * (VALUE_BYTES + params::INDEX_BYTES)
            + (profile.n as f64 + 1.0) * params::INDEX_BYTES
            + 2.0 * profile.n as f64 * VALUE_BYTES
    }

    fn gather_bytes(profile: &MatrixProfile) -> f64 {
        profile.nnz as f64 * (1.0 - profile.near_diagonal_fraction) * cpu::GATHER_SECTOR_BYTES
    }
}

impl Platform for CpuModel {
    fn name(&self) -> &'static str {
        "cpu-xeon"
    }

    fn spmv(&self, profile: &MatrixProfile) -> Option<KernelCost> {
        let traffic = Self::csr_pass_bytes(profile) + Self::gather_bytes(profile);
        let seconds = traffic / (cpu::BANDWIDTH * cpu::STREAM_UTILIZATION);
        Some(Self::cost(seconds, traffic))
    }

    fn symgs(&self, profile: &MatrixProfile) -> Option<KernelCost> {
        // The CPU runs the natural sweep order: bandwidth-bound streaming
        // plus a (cheap) dependent-op term for the whole chain — no
        // coloring needed, every op is in the dependency order anyway.
        let traffic = 2.0 * (Self::csr_pass_bytes(profile) + Self::gather_bytes(profile));
        let stream_seconds = traffic / (cpu::BANDWIDTH * cpu::STREAM_UTILIZATION);
        let chain_seconds = 2.0 * profile.n as f64 * cpu::DEPENDENT_OP_SECONDS;
        Some(Self::cost(stream_seconds + chain_seconds, traffic))
    }

    fn graph_round(&self, profile: &MatrixProfile, _kernel: GraphKernel) -> Option<KernelCost> {
        let traffic = profile.nnz as f64 * (VALUE_BYTES + params::INDEX_BYTES)
            + Self::gather_bytes(profile)
            + 2.0 * profile.n as f64 * VALUE_BYTES;
        let seconds = traffic / (cpu::BANDWIDTH * cpu::GRAPH_UTILIZATION);
        Some(Self::cost(seconds, traffic))
    }

    fn vector_bandwidth(&self) -> f64 {
        // Dense sweeps prefetch perfectly; charge near-peak DDR4 bandwidth.
        cpu::BANDWIDTH * 0.8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuModel;
    use alrescha_sparse::{gen, Csr};

    fn profile() -> MatrixProfile {
        let a = Csr::from_coo(&gen::stencil27(4));
        MatrixProfile::from_csr(&a, 8)
    }

    #[test]
    fn cpu_spmv_slower_than_gpu() {
        let p = profile();
        let cpu_t = CpuModel::new().spmv(&p).unwrap().seconds;
        let gpu_t = GpuModel::new().spmv(&p).unwrap().seconds;
        assert!(cpu_t > 2.0 * gpu_t, "cpu {cpu_t} gpu {gpu_t}");
    }

    #[test]
    fn cpu_symgs_is_less_dependent_bound_than_gpu() {
        // CPUs lose less to the dependency chain per op than GPUs do —
        // the chain term must be a small share of CPU SymGS time.
        let p = profile();
        let c = CpuModel::new().symgs(&p).unwrap();
        let chain = 2.0 * p.n as f64 * cpu::DEPENDENT_OP_SECONDS;
        assert!(chain < 0.5 * c.seconds);
    }

    #[test]
    fn graph_round_pays_low_utilization() {
        let p = profile();
        let m = CpuModel::new();
        let g = m.graph_round(&p, GraphKernel::PageRank).unwrap();
        let s = m.spmv(&p).unwrap();
        assert!(g.seconds > s.seconds, "graph slower than spmv per pass");
    }

    #[test]
    fn energy_includes_package_power() {
        let p = profile();
        let c = CpuModel::new().spmv(&p).unwrap();
        assert!(c.energy_joules > cpu::ACTIVE_POWER_W * c.seconds * 0.99);
    }
}
