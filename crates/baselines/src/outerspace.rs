//! OuterSPACE model (Pal et al., HPCA 2018) — the state-of-the-art SpMV
//! accelerator the paper compares against in Figure 18.
//!
//! OuterSPACE runs an outer-product formulation: each vector element is
//! multiplied with a whole matrix row/column and the partial products are
//! scattered into the output. That maximizes matrix reuse but "produces
//! random access to a local cache" (§3) — the scatter traffic and the cache
//! occupancy are the behaviours this model charges.

use crate::params::{self, outerspace, VALUE_BYTES};
use crate::{GraphKernel, KernelCost, MatrixProfile, Platform};

/// The OuterSPACE model. SpMV only (Table 2: "Graph (only SpMV)").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OuterSpaceModel;

impl OuterSpaceModel {
    /// Creates the model.
    pub fn new() -> Self {
        OuterSpaceModel
    }
}

impl Platform for OuterSpaceModel {
    fn name(&self) -> &'static str {
        "outerspace"
    }

    fn spmv(&self, profile: &MatrixProfile) -> Option<KernelCost> {
        // One CSR-class pass over the matrix (values + indices), the vector
        // read once (outer product's strength), plus the partial-product
        // scatter/merge traffic through the cache hierarchy.
        let traffic = profile.nnz as f64 * (VALUE_BYTES + params::INDEX_BYTES)
            + profile.n as f64 * 2.0 * VALUE_BYTES
            + profile.nnz as f64 * outerspace::SCATTER_BYTES_PER_NNZ;
        let seconds = traffic / (outerspace::BANDWIDTH * outerspace::STREAM_UTILIZATION);
        Some(KernelCost {
            seconds,
            energy_joules: outerspace::ACTIVE_POWER_W * seconds
                + traffic * params::DRAM_PJ_PER_BYTE * 1e-12,
            traffic_bytes: traffic,
            cache_time_fraction: outerspace::CACHE_TIME_FRACTION,
        })
    }

    fn symgs(&self, _profile: &MatrixProfile) -> Option<KernelCost> {
        None // not a supported kernel (Table 2)
    }

    fn graph_round(&self, _profile: &MatrixProfile, _kernel: GraphKernel) -> Option<KernelCost> {
        None // not a supported kernel (Table 2)
    }

    fn vector_bandwidth(&self) -> f64 {
        outerspace::BANDWIDTH * outerspace::STREAM_UTILIZATION
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuModel;
    use alrescha_sparse::{gen, Csr};

    fn profile() -> MatrixProfile {
        let a = Csr::from_coo(&gen::stencil27(4));
        MatrixProfile::from_csr(&a, 8)
    }

    #[test]
    fn only_spmv_is_supported() {
        let p = profile();
        let m = OuterSpaceModel::new();
        assert!(m.spmv(&p).is_some());
        assert!(m.symgs(&p).is_none());
        assert!(m.graph_round(&p, GraphKernel::Bfs).is_none());
        assert!(m.pcg_iteration(&p).is_none());
    }

    #[test]
    fn beats_gpu_on_spmv() {
        // Figure 18 shows OuterSPACE above the GPU baseline.
        let p = profile();
        let os = OuterSpaceModel::new().spmv(&p).unwrap().seconds;
        let gpu = GpuModel::new().spmv(&p).unwrap().seconds;
        assert!(os < gpu, "outerspace {os} gpu {gpu}");
    }

    #[test]
    fn cache_time_fraction_is_substantial() {
        let p = profile();
        let c = OuterSpaceModel::new().spmv(&p).unwrap();
        assert!(c.cache_time_fraction > 0.3);
    }
}
