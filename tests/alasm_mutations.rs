//! alasm malformed-text mutation corpus: each listing under
//! `tests/alasm_corpus/` is a deliberate single mutation of a valid
//! program, and must produce a **typed** AL5xx diagnostic anchored to the
//! expected line/column span — never a panic, never a silent success.
//!
//! The corpus pins one representative per failure family:
//!
//! | file | mutation | rule |
//! |------|----------|------|
//! | `bad_mnemonic.alasm`    | misspelled data-path mnemonic  | AL501 |
//! | `field_overflow.alasm`  | `out=` exceeds idx_bits width  | AL502 |
//! | `truncated_entry.alasm` | `.entry` missing its `port=`   | AL503 |
//! | `duplicate_label.alasm` | label defined twice            | AL504 |
//!
//! A second tier mutates a canonical machine-generated listing (token
//! deletion, token corruption, truncation) across a seed sweep and
//! asserts the assembler always returns `Ok`/`Err` — no panics anywhere
//! in the parse/assemble path.

use std::panic::{self, AssertUnwindSafe};

use alrescha_asm::{assemble_text, AsmError};

struct Case {
    name: &'static str,
    source: &'static str,
    /// The rule the mutation must trip.
    code: &'static str,
    /// Expected (line, col) anchor of the primary diagnostic.
    at: (usize, usize),
    /// A fragment the message must contain.
    message_has: &'static str,
}

const CORPUS: &[Case] = &[
    Case {
        name: "bad_mnemonic",
        source: include_str!("alasm_corpus/bad_mnemonic.alasm"),
        code: "AL501",
        at: (9, 8),
        message_has: "gemvv",
    },
    Case {
        name: "field_overflow",
        source: include_str!("alasm_corpus/field_overflow.alasm"),
        code: "AL502",
        at: (9, 18),
        message_has: "out",
    },
    Case {
        name: "truncated_entry",
        source: include_str!("alasm_corpus/truncated_entry.alasm"),
        code: "AL503",
        at: (9, 1),
        message_has: "port",
    },
    Case {
        name: "duplicate_label",
        source: include_str!("alasm_corpus/duplicate_label.alasm"),
        code: "AL504",
        at: (14, 1),
        message_has: "b0",
    },
];

fn assemble_err(name: &str, source: &str) -> AsmError {
    match assemble_text(source) {
        Ok(_) => panic!("{name}: mutated listing assembled cleanly"),
        Err(e) => e,
    }
}

#[test]
fn every_corpus_case_yields_its_typed_diagnostic_at_the_expected_span() {
    for case in CORPUS {
        let err = assemble_err(case.name, case.source);
        let primary = &err.diagnostics[0];
        assert_eq!(primary.code, case.code, "{}: wrong rule ({primary})", case.name);
        assert_eq!(
            (primary.span.line, primary.span.col),
            case.at,
            "{}: wrong span ({primary})",
            case.name
        );
        assert!(
            primary.message.contains(case.message_has),
            "{}: message {:?} lacks {:?}",
            case.name,
            primary.message,
            case.message_has
        );
        // Severity must come from the shared RULES catalog, not be
        // re-declared ad hoc in the assembler.
        assert_eq!(
            Some(primary.severity),
            alrescha_lint::rule(case.code).map(|r| r.severity),
            "{}: severity drifted from the catalog",
            case.name
        );
    }
}

#[test]
fn corpus_diagnostics_render_spans_in_json() {
    for case in CORPUS {
        let err = assemble_err(case.name, case.source);
        let json = alrescha_asm::render_json(&err.diagnostics);
        assert!(
            json.contains(&format!(r#""code":"{}""#, case.code))
                && json.contains(&format!(r#""line":{}"#, case.at.0))
                && json.contains(&format!(r#""col":{}"#, case.at.1)),
            "{}: JSON {json} lacks the typed span",
            case.name
        );
    }
}

/// Undirected tier: token deletion / corruption / truncation over a
/// canonical listing. Any outcome is fine except a panic.
#[test]
fn random_token_mutations_never_panic() {
    let base = alrescha_asm::genprog::generate(0xFACE).text;
    let tokens: Vec<(usize, usize)> = token_ranges(&base);
    let mut checked = 0usize;
    for seed in 0..192u64 {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let (start, end) = tokens[(next() as usize) % tokens.len()];
        let mutated = match next() % 3 {
            0 => format!("{}{}", &base[..start], &base[end..]), // delete token
            1 => format!("{}__{}{}", &base[..start], &base[start..end], &base[end..]),
            _ => base[..start].to_string(), // hard truncation
        };
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = assemble_text(&mutated);
        }));
        assert!(
            outcome.is_ok(),
            "mutation seed {seed} panicked; mutated listing:\n{mutated}"
        );
        checked += 1;
    }
    assert_eq!(checked, 192);
}

/// Byte ranges of whitespace-separated tokens outside comments.
fn token_ranges(text: &str) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut offset = 0;
    for line in text.split_inclusive('\n') {
        let code = line.split(';').next().unwrap_or("");
        let mut pos = 0;
        for tok in code.split_whitespace() {
            let rel = code[pos..].find(tok).map_or(pos, |i| pos + i);
            out.push((offset + rel, offset + rel + tok.len()));
            pos = rel + tok.len();
        }
        offset += line.len();
    }
    out
}
