//! Mutation corpus for the static verifier: each deliberately broken
//! artifact must map to its documented diagnostic code, and pristine
//! conversions must verify clean across block widths.

use alrescha::convert::{convert, ConfigTable, KernelType};
use alrescha::program::ProgramBinary;
use alrescha_lint::{analyze_table, verify, verify_alf, verify_table, Severity};
use alrescha_sim::SimConfig;
use alrescha_sparse::gen;
use alrescha_sparse::{Alf, BlockKind};

use proptest::prelude::*;

fn symgs_alf(omega: usize) -> (Alf, ConfigTable) {
    let coo = gen::stencil27(4); // n = 64, a multiple of every tested ω
    convert(KernelType::SymGs, &coo, omega).expect("convert")
}

fn codes(diags: &[alrescha_lint::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

/// Swapping an off-diagonal block behind its row's diagonal breaks the
/// "GEMVs before D-SymGS" stream contract.
#[test]
fn swapped_block_order_yields_al001() {
    let (mut alf, _) = symgs_alf(8);
    let blocks = alf.blocks_mut_unchecked();
    let off = blocks
        .iter()
        .position(|b| b.kind() == BlockKind::OffDiagonal)
        .expect("stencil has off-diagonal blocks");
    let row = blocks[off].block_row();
    let diag = blocks
        .iter()
        .position(|b| b.kind() == BlockKind::Diagonal && b.block_row() == row)
        .expect("row has a diagonal block");
    blocks.swap(off, diag);
    let diags = verify_alf(&alf, &SimConfig::paper());
    assert!(
        codes(&diags).contains(&"AL001"),
        "expected AL001, got {:?}",
        codes(&diags)
    );
}

/// Clearing the reversal flag on an upper-triangle block breaks the
/// right-to-left streaming the backward sweep depends on.
#[test]
fn un_reversed_upper_triangle_yields_al002() {
    let (mut alf, _) = symgs_alf(8);
    let blocks = alf.blocks_mut_unchecked();
    let upper = blocks
        .iter_mut()
        .find(|b| b.block_col() > b.block_row())
        .expect("stencil has upper-triangle blocks");
    upper.set_reversed_unchecked(false);
    let diags = verify_alf(&alf, &SimConfig::paper());
    assert!(
        codes(&diags).contains(&"AL002"),
        "expected AL002, got {:?}",
        codes(&diags)
    );
}

/// An Inx_in beyond the padded dimension would address memory outside the
/// streamed vectors.
#[test]
fn out_of_range_config_index_yields_al102() {
    let (alf, table) = symgs_alf(8);
    let mut entries = table.entries().to_vec();
    entries[0].inx_in = alf.padded_dim() + alf.omega();
    let doctored = ConfigTable::from_entries(entries, table.entry_bits());
    let diags = verify_table(KernelType::SymGs, &doctored, &alf, &SimConfig::paper());
    assert!(
        diags
            .iter()
            .any(|d| d.code == "AL102" && d.severity == Severity::Error),
        "expected AL102 error, got {:?}",
        codes(&diags)
    );
}

/// A truncated packed payload cannot hold the declared entry count.
#[test]
fn truncated_binary_yields_al101() {
    let (alf, table) = symgs_alf(8);
    let n = alf.rows().max(alf.cols());
    let binary = ProgramBinary::encode(KernelType::SymGs, &table, n, 8);
    let truncated = ProgramBinary::from_raw_parts(
        KernelType::SymGs,
        n,
        8,
        binary.entry_count(),
        binary.as_bytes()[..binary.len_bytes() / 2].to_vec(),
    );
    let diags = verify(&truncated, &alf, &SimConfig::paper());
    assert!(
        diags
            .iter()
            .any(|d| d.code == "AL101" && d.severity == Severity::Error),
        "expected AL101 error, got {:?}",
        codes(&diags)
    );
}

/// A header whose dimensions disagree with the matrix it claims to program.
#[test]
fn header_mismatch_yields_al104() {
    let (alf, table) = symgs_alf(8);
    let n = alf.rows().max(alf.cols());
    let binary = ProgramBinary::encode(KernelType::SymGs, &table, n, 8);
    let forged = ProgramBinary::from_raw_parts(
        KernelType::SymGs,
        n * 2, // wrong dimension
        8,
        binary.entry_count(),
        binary.as_bytes().to_vec(),
    );
    let diags = verify(&forged, &alf, &SimConfig::paper());
    assert!(
        diags
            .iter()
            .any(|d| d.code == "AL104" && d.severity == Severity::Error),
        "expected AL104 error, got {:?}",
        codes(&diags)
    );
}

/// Flipping a GEMV entry to D-SymGS mid-row is both a kernel/data-path
/// disagreement and an illegal reconfiguration point.
#[test]
fn mid_row_path_flip_yields_al103_and_al203() {
    let (alf, table) = symgs_alf(8);
    let mut entries = table.entries().to_vec();
    let gemv = entries
        .iter()
        .position(|e| e.data_path == alrescha::convert::DataPath::Gemv)
        .expect("table has GEMV entries");
    entries[gemv].data_path = alrescha::convert::DataPath::DSymGs;
    let doctored = ConfigTable::from_entries(entries, table.entry_bits());
    let diags = verify_table(KernelType::SymGs, &doctored, &alf, &SimConfig::paper());
    let found = codes(&diags);
    assert!(found.contains(&"AL103"), "expected AL103, got {found:?}");
    assert!(found.contains(&"AL203"), "expected AL203, got {found:?}");
}

/// AL4xx mutant: a schedule whose densest block row provably overflows
/// the link stack — ~100 scattered off-diagonals per row at ω = 8 prove a
/// 248-entry peak against the 128-entry LIFO.
#[test]
fn overdeep_stack_schedule_yields_al401() {
    let coo = gen::scattered(256, 100, 5);
    let cfg = SimConfig::paper();
    let (alf, table) = convert(KernelType::SymGs, &coo, cfg.omega).expect("convert");
    let analysis = analyze_table(KernelType::SymGs, &table, &alf, &cfg);
    assert!(
        analysis
            .diagnostics
            .iter()
            .any(|d| d.code == "AL401" && d.severity == Severity::Error),
        "expected AL401 error, got {:?}",
        codes(&analysis.diagnostics)
    );
    assert!(!analysis.is_admissible());
}

/// AL4xx mutant: swapping two D-SymGS entries breaks the sweep's
/// ascending dependency order — the second of the pair now reads an
/// iterate no earlier entry has produced.
#[test]
fn illegal_sweep_order_yields_al403() {
    let (alf, table) = symgs_alf(8);
    let mut entries = table.entries().to_vec();
    let diag_idx: Vec<usize> = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.data_path == alrescha::convert::DataPath::DSymGs)
        .map(|(i, _)| i)
        .collect();
    entries.swap(diag_idx[0], diag_idx[2]);
    let doctored = ConfigTable::from_entries(entries, table.entry_bits());
    let analysis = analyze_table(KernelType::SymGs, &doctored, &alf, &SimConfig::paper());
    assert!(
        analysis
            .diagnostics
            .iter()
            .any(|d| d.code == "AL403" && d.severity == Severity::Error),
        "expected AL403 error, got {:?}",
        codes(&analysis.diagnostics)
    );
    assert!(!analysis.is_admissible());
}

/// AL4xx mutant: duplicating a row's D-SymGS entry leaves a dead config
/// entry the engine can never use (it keeps only the last recurrence).
#[test]
fn dead_config_entry_yields_al405() {
    let (alf, table) = symgs_alf(8);
    let mut entries = table.entries().to_vec();
    let first_diag = entries
        .iter()
        .position(|e| e.data_path == alrescha::convert::DataPath::DSymGs)
        .expect("has dsymgs");
    let last = entries.len() - 1;
    entries[last] = entries[first_diag];
    let doctored = ConfigTable::from_entries(entries, table.entry_bits());
    let analysis = analyze_table(KernelType::SymGs, &doctored, &alf, &SimConfig::paper());
    assert!(
        analysis
            .diagnostics
            .iter()
            .any(|d| d.code == "AL405" && d.severity == Severity::Warning),
        "expected AL405 warning, got {:?}",
        codes(&analysis.diagnostics)
    );
    assert_eq!(analysis.dead_entries, vec![last]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pristine conversions verify with zero error diagnostics at every
    /// supported block width, for both layouts.
    #[test]
    fn pristine_conversions_verify_clean(
        side in 2usize..5,
        omega_idx in 0usize..3,
        kernel_idx in 0usize..2,
    ) {
        let omega = [2usize, 4, 8][omega_idx];
        let kernel = [KernelType::SymGs, KernelType::SpMv][kernel_idx];
        let coo = gen::stencil27(side);
        let (alf, table) = convert(kernel, &coo, omega).expect("convert");
        let n = coo.rows().max(coo.cols());
        let program = ProgramBinary::encode(kernel, &table, n, omega);
        let config = SimConfig::paper().with_omega(omega);
        let diags = verify(&program, &alf, &config);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        prop_assert!(
            errors.is_empty(),
            "clean conversion produced errors: {errors:?}"
        );
    }
}
