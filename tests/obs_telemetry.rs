//! Telemetry acceptance: the Chrome/Perfetto export of an instrumented
//! fleet batch is schema-valid with one track per worker and one job span
//! per executed job; the engine's trace keeps its event-pairing invariants
//! under armed fault plans; and the deterministic slice of the metrics
//! registry is bit-identical across identical runs.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use alrescha::fleet::{Fleet, FleetConfig, JobKernel, JobSpec};
use alrescha::{FaultPlan, RecoveryPolicy};
use alrescha_obs::json::Value;
use alrescha_obs::{
    count_spans_named, export_chrome_trace, validate_chrome_trace, Telemetry,
};
use alrescha_sim::trace::{to_device_events, TraceEvent};
use alrescha_obs::DeviceEvent;
use alrescha_sim::{Engine, SimConfig};

fn spmv_jobs(n: usize, n_jobs: usize) -> Vec<JobSpec> {
    let grid = (n as f64).cbrt().ceil().max(2.0) as usize;
    let a = alrescha_sparse::gen::stencil27(grid);
    (0..n_jobs)
        .map(|j| {
            let x: Vec<f64> = (0..a.cols())
                .map(|i| 1.0 + ((i + j) % 5) as f64 / 3.0)
                .collect();
            JobSpec::new(a.clone(), JobKernel::SpMv { x })
        })
        .collect()
}

fn instrumented_fleet(workers: usize, tele: &Arc<Telemetry>) -> Fleet {
    Fleet::new(FleetConfig::default().with_workers(workers))
        .with_preflight(alrescha_lint::fleet_preflight_hook_with_telemetry(
            Arc::clone(tele),
        ))
        .with_telemetry(Arc::clone(tele))
}

/// The exported fleet timeline passes schema validation, carries one
/// `worker-*` track per worker that actually ran a job, and holds exactly
/// one `job:` span per executed job, with the engine's device events
/// present as `X` slices.
#[test]
fn fleet_trace_has_one_track_per_worker_and_one_span_per_job() {
    let tele = Telemetry::new();
    let fleet = instrumented_fleet(3, &tele);
    let batch = fleet.run(spmv_jobs(216, 12));
    assert_eq!(batch.stats.failed, 0);
    assert_eq!(batch.stats.rejected, 0);

    let text = export_chrome_trace(&tele);
    let doc = Value::parse(&text).expect("exporter emits valid JSON");
    let summary = validate_chrome_trace(&doc).expect("schema-valid trace");

    let workers_used: BTreeSet<usize> = batch.jobs.iter().map(|r| r.worker).collect();
    assert_eq!(
        summary.tracks_named("worker-").len(),
        workers_used.len(),
        "one track per worker that executed a job"
    );
    assert_eq!(
        count_spans_named(&doc, "job:"),
        batch.jobs.len(),
        "one job span per executed job"
    );
    assert_eq!(count_spans_named(&doc, "fleet:batch:"), 1);

    let device_slices = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .map_or(0, |events| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
                .count()
        });
    assert!(
        device_slices > 0,
        "engine block timelines must appear as X slices"
    );
}

/// Under an armed fault plan the engine trace keeps its invariants: every
/// `BlockBegin` has a `BlockEnd`, recovery begin/end events balance, the
/// injected faults are visible, and the kernel bracket survives.
#[test]
fn engine_trace_invariants_hold_under_faults() {
    let a = alrescha_sparse::Alf::from_coo(
        &alrescha_sparse::gen::banded(256, 6, 11),
        8,
        alrescha_sparse::alf::AlfLayout::Streaming,
    )
    .expect("layout");
    let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 7) as f64 / 4.0).collect();

    let mut engine = Engine::new(SimConfig::paper());
    engine.enable_tracing();
    engine.set_fault_plan(Some(FaultPlan::inert(7).with_fcu_tree_rate(0.05)));
    engine.set_recovery_policy(RecoveryPolicy::Retry {
        max_retries: 16,
        backoff_cycles: 8,
    });
    let (_, report) = engine.run_spmv(&a, &x).expect("retries absorb the plan");
    assert!(report.faults.detected > 0, "plan must actually fire");

    let trace = engine.take_trace();
    let count = |f: &dyn Fn(&TraceEvent) -> bool| trace.iter().filter(|e| f(e)).count();
    let begins = count(&|e| matches!(e, TraceEvent::BlockBegin { .. }));
    let ends = count(&|e| matches!(e, TraceEvent::BlockEnd { .. }));
    assert_eq!(begins, ends, "every BlockBegin needs a BlockEnd");
    assert!(begins > 0);
    let rec_begins = count(&|e| matches!(e, TraceEvent::RecoveryBegin { .. }));
    let rec_ends = count(&|e| matches!(e, TraceEvent::RecoveryEnd { .. }));
    assert_eq!(rec_begins, rec_ends, "recovery events must balance");
    assert!(
        count(&|e| matches!(e, TraceEvent::FaultInjected { .. })) > 0,
        "detected faults must be visible in the trace"
    );
    assert!(matches!(trace.first(), Some(TraceEvent::KernelBegin { .. })));
    assert!(matches!(trace.last(), Some(TraceEvent::KernelEnd { .. })));

    // The cycle-cursor walk converts every block to a span and never
    // produces a slice that ends before it starts.
    let device = to_device_events(&trace);
    let spans = device
        .iter()
        .filter(|e| match e {
            DeviceEvent::Span {
                start_cycle,
                end_cycle,
                ..
            } => {
                assert!(end_cycle >= start_cycle);
                true
            }
            DeviceEvent::Point { .. } => false,
        })
        .count();
    assert_eq!(spans, ends + rec_ends);
}

/// A run with telemetry attached consumes its own trace at `finish()`:
/// `take_trace` afterwards only returns what was recorded outside runs.
#[test]
fn telemetry_attached_runs_consume_their_trace() {
    let a = alrescha_sparse::Alf::from_coo(
        &alrescha_sparse::gen::stencil27(3),
        8,
        alrescha_sparse::alf::AlfLayout::Streaming,
    )
    .expect("layout");
    let x = vec![1.0; a.cols()];

    let tele = Telemetry::new();
    let mut engine = Engine::new(SimConfig::paper());
    engine.set_telemetry(Some(Arc::clone(&tele)));
    engine.run_spmv(&a, &x).expect("clean run");
    assert!(
        engine.take_trace().is_empty(),
        "the run's events belong to the device timeline, not take_trace"
    );
    let text = export_chrome_trace(&tele);
    let doc = Value::parse(&text).expect("valid JSON");
    validate_chrome_trace(&doc).expect("schema-valid trace");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The deterministic metrics slice is bit-identical across two
    /// identical runs, whatever the workload shape or worker count.
    #[test]
    fn deterministic_metrics_are_bit_identical(
        n in 27usize..200,
        n_jobs in 1usize..6,
        workers in 1usize..4,
    ) {
        let snapshot = || {
            let tele = Telemetry::new();
            let fleet = instrumented_fleet(workers, &tele);
            let batch = fleet.run(spmv_jobs(n, n_jobs));
            prop_assert_eq!(batch.stats.failed, 0);
            Ok(tele.metrics().deterministic_json())
        };
        let first = snapshot()?;
        let second = snapshot()?;
        prop_assert_eq!(first, second);
    }
}
