//! File-level Matrix Market round trips through real temporary files,
//! including running the accelerator on a matrix loaded from disk.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};

use alrescha::{Alrescha, KernelType};
use alrescha_sparse::mm::{read_matrix_market, write_matrix_market};
use alrescha_sparse::{gen, Csr, MetaData};

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("alrescha-test-{}-{name}.mtx", std::process::id()));
    p
}

#[test]
fn write_read_file_round_trip() {
    let coo = gen::circuit(150, 3).compress();
    let path = temp_path("roundtrip");
    {
        let file = File::create(&path).expect("create temp file");
        write_matrix_market(BufWriter::new(file), &coo).expect("write");
    }
    let file = File::open(&path).expect("open temp file");
    let back = read_matrix_market(BufReader::new(file)).expect("read");
    std::fs::remove_file(&path).ok();
    assert_eq!(back.compress(), coo);
}

#[test]
fn accelerator_runs_on_matrix_from_disk() {
    let coo = gen::stencil27(3);
    let path = temp_path("device");
    {
        let file = File::create(&path).expect("create temp file");
        write_matrix_market(BufWriter::new(file), &coo).expect("write");
    }
    let file = File::open(&path).expect("open temp file");
    let loaded = read_matrix_market(BufReader::new(file)).expect("read");
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.nnz(), coo.nnz());
    let mut acc = Alrescha::with_paper_config();
    let prog = acc.program(KernelType::SpMv, &loaded).expect("program");
    let x = vec![1.0; loaded.cols()];
    let (y, report) = acc.spmv(&prog, &x).expect("run");
    let expect = alrescha_kernels::spmv::spmv(&Csr::from_coo(&coo), &x);
    assert!(alrescha_sparse::approx_eq(&y, &expect, 1e-12));
    assert!(report.cycles > 0);
}

mod fuzz_lite {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The Matrix Market reader is total: arbitrary bytes produce
        /// `Ok` or a typed error, never a panic.
        #[test]
        fn reader_never_panics_on_garbage(
            bytes in proptest::collection::vec(0u8..=255, 0..512),
        ) {
            let _ = read_matrix_market(std::io::Cursor::new(bytes));
        }

        /// Same with a valid header prepended, so the body parsers (size
        /// line, entry lines, index validation) get fuzzed too.
        #[test]
        fn body_parser_never_panics_on_garbage(
            rows in 0usize..10,
            cols in 0usize..10,
            nnz in 0usize..20,
            bytes in proptest::collection::vec(0u8..=255, 0..256),
        ) {
            let mut input =
                format!("%%MatrixMarket matrix coordinate real general\n{rows} {cols} {nnz}\n")
                    .into_bytes();
            input.extend_from_slice(&bytes);
            let _ = read_matrix_market(std::io::Cursor::new(input));
        }

        /// Structured-looking entry lines with out-of-range indices and
        /// malformed numbers are rejected without panicking, and anything
        /// accepted is in bounds.
        #[test]
        fn hostile_entries_are_rejected_or_in_bounds(
            rows in 1usize..8,
            cols in 1usize..8,
            entries in proptest::collection::vec(
                (0usize..12, 0usize..12, -3i32..3),
                0..16
            ),
        ) {
            let mut text = format!(
                "%%MatrixMarket matrix coordinate real general\n{rows} {cols} {}\n",
                entries.len()
            );
            for (r, c, v) in &entries {
                let _ = writeln!(text, "{r} {c} {v}");
            }
            // A typed rejection is fine; anything accepted must be in bounds.
            if let Ok(coo) = read_matrix_market(std::io::Cursor::new(text.into_bytes())) {
                prop_assert_eq!(coo.rows(), rows);
                prop_assert_eq!(coo.cols(), cols);
                for &(r, c, _) in coo.entries() {
                    prop_assert!(r < rows && c < cols, "accepted out-of-bounds entry");
                }
            }
        }
    }
}

#[test]
fn values_survive_the_text_round_trip_exactly_enough() {
    // `{:e}` formatting keeps ~16 significant digits; values must survive
    // to f64 round-trip precision.
    let mut coo = alrescha_sparse::Coo::new(2, 2);
    coo.push(0, 0, std::f64::consts::PI);
    coo.push(1, 1, -1.0 / 3.0);
    let path = temp_path("precision");
    {
        let file = File::create(&path).expect("create temp file");
        write_matrix_market(BufWriter::new(file), &coo).expect("write");
    }
    let file = File::open(&path).expect("open temp file");
    let back = read_matrix_market(BufReader::new(file)).expect("read");
    std::fs::remove_file(&path).ok();
    assert!((back.get(0, 0) - std::f64::consts::PI).abs() < 1e-15);
    assert!((back.get(1, 1) + 1.0 / 3.0).abs() < 1e-15);
}
