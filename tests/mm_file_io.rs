//! File-level Matrix Market round trips through real temporary files,
//! including running the accelerator on a matrix loaded from disk.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use alrescha::{Alrescha, KernelType};
use alrescha_sparse::mm::{read_matrix_market, write_matrix_market};
use alrescha_sparse::{gen, Csr, MetaData};

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("alrescha-test-{}-{name}.mtx", std::process::id()));
    p
}

#[test]
fn write_read_file_round_trip() {
    let coo = gen::circuit(150, 3).compress();
    let path = temp_path("roundtrip");
    {
        let file = File::create(&path).expect("create temp file");
        write_matrix_market(BufWriter::new(file), &coo).expect("write");
    }
    let file = File::open(&path).expect("open temp file");
    let back = read_matrix_market(BufReader::new(file)).expect("read");
    std::fs::remove_file(&path).ok();
    assert_eq!(back.compress(), coo);
}

#[test]
fn accelerator_runs_on_matrix_from_disk() {
    let coo = gen::stencil27(3);
    let path = temp_path("device");
    {
        let file = File::create(&path).expect("create temp file");
        write_matrix_market(BufWriter::new(file), &coo).expect("write");
    }
    let file = File::open(&path).expect("open temp file");
    let loaded = read_matrix_market(BufReader::new(file)).expect("read");
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.nnz(), coo.nnz());
    let mut acc = Alrescha::with_paper_config();
    let prog = acc.program(KernelType::SpMv, &loaded).expect("program");
    let x = vec![1.0; loaded.cols()];
    let (y, report) = acc.spmv(&prog, &x).expect("run");
    let expect = alrescha_kernels::spmv::spmv(&Csr::from_coo(&coo), &x);
    assert!(alrescha_sparse::approx_eq(&y, &expect, 1e-12));
    assert!(report.cycles > 0);
}

#[test]
fn values_survive_the_text_round_trip_exactly_enough() {
    // `{:e}` formatting keeps ~16 significant digits; values must survive
    // to f64 round-trip precision.
    let mut coo = alrescha_sparse::Coo::new(2, 2);
    coo.push(0, 0, std::f64::consts::PI);
    coo.push(1, 1, -1.0 / 3.0);
    let path = temp_path("precision");
    {
        let file = File::create(&path).expect("create temp file");
        write_matrix_market(BufWriter::new(file), &coo).expect("write");
    }
    let file = File::open(&path).expect("open temp file");
    let back = read_matrix_market(BufReader::new(file)).expect("read");
    std::fs::remove_file(&path).ok();
    assert!((back.get(0, 0) - std::f64::consts::PI).abs() < 1e-15);
    assert!((back.get(1, 1) + 1.0 / 3.0).abs() < 1e-15);
}
