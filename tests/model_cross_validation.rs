//! Cross-validation between the three timing models: the analytic engine,
//! the discrete-event co-simulation, and the cycle-by-cycle pipeline —
//! across block widths and bandwidths.

use alrescha_sim::des::{analytic_spmv_cycles, simulate_spmv, simulate_symgs_forward};
use alrescha_sim::{Engine, SimConfig};
use alrescha_sparse::{alf::AlfLayout, gen, Alf};

#[test]
fn spmv_sandwich_holds_across_block_widths() {
    let coo = gen::stencil27(6);
    for omega in [4usize, 8, 16] {
        let config = SimConfig::paper().with_omega(omega);
        let a = Alf::from_coo(&coo, omega, AlfLayout::Streaming).expect("valid width");
        let des = simulate_spmv(&a, &config).expect("runs");
        let analytic = analytic_spmv_cycles(&a, &config).expect("runs");
        assert!(des.resource_bound() <= des.cycles, "omega {omega}");
        // The two models round fills/drains differently; allow one
        // pipeline-depth of slack.
        let slack = 2 * omega as u64 + 24;
        assert!(
            des.cycles <= analytic + slack,
            "omega {omega}: des {} analytic {analytic}",
            des.cycles
        );
    }
}

#[test]
fn spmv_sandwich_holds_across_bandwidths() {
    let coo = gen::banded(400, 4, 3);
    let a = Alf::from_coo(&coo, 8, AlfLayout::Streaming).expect("valid width");
    for bw in [72.0f64, 144.0, 288.0, 576.0] {
        let mut config = SimConfig::paper();
        config.mem_bandwidth_gbps = bw;
        let des = simulate_spmv(&a, &config).expect("runs");
        let analytic = analytic_spmv_cycles(&a, &config).expect("runs");
        assert!(
            des.cycles <= analytic,
            "bw {bw}: des {} analytic {analytic}",
            des.cycles
        );
        assert!(analytic <= 2 * des.cycles, "bw {bw}: model too pessimistic");
    }
}

#[test]
fn symgs_des_and_engine_agree_on_recurrence_dominance() {
    // On a banded matrix both models must agree that the D-SymGS recurrence
    // dominates, with the DES at most marginally faster (overlap).
    let coo = gen::banded(320, 3, 1);
    let config = SimConfig::paper();
    let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).expect("diag present");
    let des = simulate_symgs_forward(&a, &config).expect("runs");

    let mut engine = Engine::new(config.clone());
    let b = vec![1.0; coo.rows()];
    let mut x = vec![0.0; coo.cols()];
    let report = engine.run_symgs_forward(&a, &b, &mut x).expect("runs");

    let recurrence = report.breakdown.dsymgs_cycles;
    assert!(
        recurrence * 2 > report.cycles,
        "recurrence-dominated in the engine"
    );
    assert!(
        des.fcu_busy >= recurrence / 2,
        "DES sees the same recurrence work"
    );
    assert!(des.cycles <= report.cycles + des.blocks);
}

#[test]
fn overlap_drain_engine_stays_above_the_des_bound() {
    // Even the most aggressive engine configuration (drain overlapped)
    // cannot beat the DES's double-buffered schedule by more than the
    // drain slack itself.
    let coo = gen::stencil27(5);
    let a = Alf::from_coo(&coo, 8, AlfLayout::SymGs).expect("diag present");
    let config = SimConfig::paper().with_overlap_drain(true);
    let des = simulate_symgs_forward(&a, &SimConfig::paper()).expect("runs");

    let mut engine = Engine::new(config);
    let b = vec![1.0; coo.rows()];
    let mut x = vec![0.0; coo.cols()];
    let overlapped = engine.run_symgs_forward(&a, &b, &mut x).expect("runs");
    // The DES still charges per-row drains; the overlapped engine may dip
    // below it, but never below the raw FCU busy time.
    assert!(
        overlapped.cycles >= des.fcu_busy,
        "cannot beat the compute bound"
    );
}
