//! Property-based tests on reordering: RCM and degree orderings are valid
//! permutations, preserve the matrix up to relabeling, and never break the
//! kernels that run on the reordered system.

use proptest::prelude::*;

use alrescha_sparse::ops::{invert_permutation, permute_symmetric, permute_vector};
use alrescha_sparse::reorder::{apply_rcm, degree_ordering, rcm_ordering};
use alrescha_sparse::{Coo, Csr, MetaData};

fn arb_symmetric() -> impl Strategy<Value = Coo> {
    (2usize..28).prop_flat_map(|n| {
        let entry = (0..n, 0..n, 1i32..40);
        proptest::collection::vec(entry, 0..70).prop_map(move |entries| {
            let mut coo = Coo::new(n, n);
            let mut row_sum = vec![0.0; n];
            for (r, c, v) in entries {
                if r != c {
                    let v = -f64::from(v) / 40.0;
                    coo.push(r, c, v);
                    coo.push(c, r, v);
                    row_sum[r] += v.abs();
                    row_sum[c] += v.abs();
                }
            }
            for (i, s) in row_sum.iter().enumerate() {
                coo.push(i, i, s + 1.0);
            }
            coo.compress()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rcm_is_always_a_bijection(coo in arb_symmetric()) {
        let perm = rcm_ordering(&Csr::from_coo(&coo));
        let inv = invert_permutation(&perm); // panics if not a bijection
        prop_assert_eq!(inv.len(), coo.rows());
    }

    #[test]
    fn degree_ordering_is_always_a_bijection(coo in arb_symmetric()) {
        let perm = degree_ordering(&Csr::from_coo(&coo));
        let inv = invert_permutation(&perm);
        prop_assert_eq!(inv.len(), coo.rows());
    }

    #[test]
    fn rcm_preserves_nnz_and_symmetry(coo in arb_symmetric()) {
        let (reordered, _) = apply_rcm(&coo).expect("square input");
        prop_assert_eq!(reordered.clone().compress().nnz(), coo.nnz());
        prop_assert!(reordered.is_symmetric(1e-12));
    }

    #[test]
    fn permutation_round_trips(coo in arb_symmetric()) {
        let (reordered, perm) = apply_rcm(&coo).expect("square input");
        let inv = invert_permutation(&perm);
        let back = permute_symmetric(&reordered, &inv).expect("bijection");
        prop_assert_eq!(back.compress(), coo);
    }

    #[test]
    fn spmv_commutes_with_reordering(coo in arb_symmetric()) {
        // P(Ax) = (PAPᵀ)(Px): solving in the reordered space and mapping
        // back gives the original answer.
        let csr = Csr::from_coo(&coo);
        let x: Vec<f64> = (0..coo.cols()).map(|i| (i as f64 * 0.31).sin()).collect();
        let ax = alrescha_kernels::spmv::spmv(&csr, &x);

        let (reordered, perm) = apply_rcm(&coo).expect("square input");
        let rx = permute_vector(&x, &perm);
        let r_ax = alrescha_kernels::spmv::spmv(&Csr::from_coo(&reordered), &rx);
        let expected = permute_vector(&ax, &perm);
        prop_assert!(alrescha_sparse::approx_eq(&r_ax, &expected, 1e-10));
    }

    #[test]
    fn pcg_converges_identically_after_reordering(coo in arb_symmetric()) {
        // The spectrum is permutation-invariant: CG takes the same number
        // of iterations (up to fp noise) on the reordered system.
        use alrescha_kernels::pcg::{pcg, PcgOptions, Preconditioner};
        let csr = Csr::from_coo(&coo);
        let b: Vec<f64> = (0..coo.rows()).map(|i| 1.0 + (i % 3) as f64).collect();
        let opts = PcgOptions {
            preconditioner: Preconditioner::Identity,
            tol: 1e-8,
            max_iters: 400,
        };
        let host = pcg(&csr, &b, &opts).expect("runs");

        let (reordered, perm) = apply_rcm(&coo).expect("square input");
        let rb = permute_vector(&b, &perm);
        let re = pcg(&Csr::from_coo(&reordered), &rb, &opts).expect("runs");
        prop_assert!(host.converged && re.converged);
        prop_assert!(
            (host.iterations as i64 - re.iterations as i64).abs() <= 2,
            "original {} reordered {}", host.iterations, re.iterations
        );
    }
}
