//! Determinism contract of the batched execution runtime: for every job,
//! [`Fleet::run`] is **bit-identical** to [`Fleet::run_sequential`] and to a
//! second batch run at a different worker count — regardless of scheduling,
//! work stealing, conversion-cache hits, or armed fault plans.
//!
//! The comparison uses [`JobOutput::fingerprint`], which folds the exact
//! result bits, the full execution report, and (for solves) every outcome
//! field; equal fingerprints mean the runs are indistinguishable.

use proptest::prelude::*;

use alrescha::fleet::{Fleet, FleetConfig, JobKernel, JobOutput, JobSpec};
use alrescha::{CoreError, FaultPlan, RecoveryPolicy};
use alrescha_sim::SimConfig;
use alrescha_sparse::Coo;

/// Strategy: a diagonally dominant square system (every kernel accepts it).
fn arb_dd_matrix() -> impl Strategy<Value = Coo> {
    (2usize..16).prop_flat_map(|n| {
        let entry = (0..n, 0..n, 1i32..50);
        proptest::collection::vec(entry, 0..40).prop_map(move |entries| {
            let mut coo = Coo::new(n, n);
            let mut row_sum = vec![0.0; n];
            for (r, c, v) in entries {
                if r != c {
                    let v = -f64::from(v) / 60.0;
                    coo.push(r, c, v);
                    row_sum[r] += v.abs();
                }
            }
            for (i, s) in row_sum.iter().enumerate() {
                coo.push(i, i, s + 1.0);
            }
            coo.compress()
        })
    })
}

/// Strategy: a seeded fault plan (or none). Rates are low enough that the
/// retry policy usually recovers, so both `Ok` and `Err` paths are walked.
fn arb_fault_plan() -> impl Strategy<Value = Option<FaultPlan>> {
    (0u64..10_000).prop_map(|seed| {
        // Two in five cases run fault-free; the rest carry a seeded plan.
        if seed % 5 < 2 {
            None
        } else {
            Some(
                FaultPlan::inert(seed)
                    .with_fcu_tree_rate(0.02)
                    .with_cache_fault_rate(0.05),
            )
        }
    })
}

/// Builds the job batch one property case exercises: repeated matrices (to
/// drive the conversion cache) across SpMV and SymGS, under one ω.
fn build_jobs(a: &Coo, omega: usize, plan: Option<FaultPlan>) -> Vec<JobSpec> {
    let n = a.rows();
    let config = SimConfig::paper().with_omega(omega);
    let x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 / 3.0).collect();
    let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    let recovery = RecoveryPolicy::Retry {
        max_retries: 2,
        backoff_cycles: 8,
    };
    let mut jobs = Vec::new();
    for rep in 0..3 {
        let mut spmv = JobSpec::new(a.clone(), JobKernel::SpMv { x: x.clone() })
            .with_config(config.clone())
            .with_recovery(recovery);
        let mut symgs = JobSpec::new(
            a.clone(),
            JobKernel::SymGs {
                b: b.clone(),
                x0: vec![0.0; n],
            },
        )
        .with_config(config.clone())
        .with_recovery(recovery);
        if let Some(plan) = &plan {
            // Vary the seed per job: isolation must hold even when every
            // job carries a *different* plan.
            let reseeded = plan.clone().with_window(0, u64::MAX - rep as u64);
            spmv = spmv.with_fault_plan(reseeded.clone());
            symgs = symgs.with_fault_plan(reseeded);
        }
        jobs.push(spmv);
        jobs.push(symgs);
    }
    jobs
}

/// Per-job fingerprints of a report: `Ok(fingerprint)` or the error.
fn fingerprints(report: &alrescha::FleetReport) -> Vec<Result<u64, CoreError>> {
    report
        .jobs
        .iter()
        .map(|rec| match &rec.result {
            Ok(out) => Ok(out.fingerprint()),
            Err(e) => Err(e.clone()),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_equals_sequential_equals_batch(
        a in arb_dd_matrix(),
        omega_pow in 1usize..4,        // ω ∈ {2, 4, 8}
        workers_pow in 0usize..4,      // workers ∈ {1, 2, 4, 8}
        plan in arb_fault_plan(),
    ) {
        let omega = 1usize << omega_pow;
        let workers = 1usize << workers_pow;
        // A different worker count for the second batch (8 -> 1).
        let other_workers = if workers == 8 { 1 } else { workers * 2 };
        let jobs = build_jobs(&a, omega, plan);

        let batch = Fleet::new(FleetConfig::default().with_workers(workers)).run(jobs.clone());
        let sequential = Fleet::new(FleetConfig::default()).run_sequential(jobs.clone());
        let batch2 =
            Fleet::new(FleetConfig::default().with_workers(other_workers)).run(jobs);

        let fp_batch = fingerprints(&batch);
        let fp_seq = fingerprints(&sequential);
        let fp_batch2 = fingerprints(&batch2);
        prop_assert_eq!(&fp_batch, &fp_seq, "batch({workers}) != sequential");
        prop_assert_eq!(&fp_batch, &fp_batch2, "batch({workers}) != batch({other_workers})");

        // Scheduling metadata aside, aggregate accounting must agree on
        // what actually ran.
        prop_assert_eq!(batch.stats.completed, sequential.stats.completed);
        prop_assert_eq!(batch.stats.failed, sequential.stats.failed);
    }
}

/// Stress fallback for the sharded conversion cache (no ThreadSanitizer in
/// tier-1 CI): many workers hammer a small key set concurrently; every job
/// must complete with the bit-exact result of the sequential path, and the
/// cache must end up with exactly one program per distinct key.
#[test]
fn sharded_cache_survives_concurrent_hammering() {
    let matrices: Vec<Coo> = (2..6).map(alrescha_sparse::gen::stencil27).collect();
    let mut jobs = Vec::new();
    for rep in 0..10 {
        for a in &matrices {
            let x: Vec<f64> = (0..a.cols()).map(|i| ((i + rep) % 9) as f64 - 4.0).collect();
            jobs.push(JobSpec::new(a.clone(), JobKernel::SpMv { x }));
        }
    }
    let fleet = Fleet::new(FleetConfig::default().with_workers(8).with_queue_capacity(256));
    let batch = fleet.run(jobs.clone());
    assert_eq!(batch.stats.completed, jobs.len());
    // One conversion per distinct matrix, everything else served hot. A
    // racing duplicate conversion would show up as an extra miss.
    assert_eq!(fleet.cached_programs(), matrices.len());
    assert_eq!(batch.stats.cache_misses, matrices.len() as u64);
    assert_eq!(
        batch.stats.cache_hits,
        (jobs.len() - matrices.len()) as u64
    );

    let sequential = Fleet::new(FleetConfig::default()).run_sequential(jobs);
    for (b_rec, s_rec) in batch.jobs.iter().zip(&sequential.jobs) {
        let (b_out, s_out) = match (&b_rec.result, &s_rec.result) {
            (Ok(b), Ok(s)) => (b, s),
            other => panic!("job {} failed: {other:?}", b_rec.job),
        };
        assert_eq!(
            b_out.fingerprint(),
            s_out.fingerprint(),
            "job {} not bit-identical under contention",
            b_rec.job
        );
    }
}

/// A second stress shape: jobs whose configs alternate ω per job, forcing
/// worker-engine rebuilds interleaved with cache traffic.
#[test]
fn engine_recycling_under_mixed_configs_stays_deterministic() {
    let a = alrescha_sparse::gen::stencil27(3);
    let x = vec![1.0; a.cols()];
    let jobs: Vec<JobSpec> = (0..12)
        .map(|i| {
            let omega = [2usize, 4, 8][i % 3];
            JobSpec::new(a.clone(), JobKernel::SpMv { x: x.clone() })
                .with_config(SimConfig::paper().with_omega(omega))
        })
        .collect();
    let batch = Fleet::new(FleetConfig::default().with_workers(4)).run(jobs.clone());
    let sequential = Fleet::new(FleetConfig::default()).run_sequential(jobs);
    let fp_batch = fingerprints(&batch);
    let fp_seq = fingerprints(&sequential);
    assert_eq!(fp_batch, fp_seq);
    // Three distinct (kernel, omega, matrix) keys.
    assert_eq!(batch.stats.cache_misses, 3);

    // Jobs sharing an omega are identical and must produce identical bits.
    for group in 0..3 {
        let first = fp_batch[group].as_ref().expect("spmv succeeds");
        for rep in 1..4 {
            assert_eq!(
                fp_batch[group + 3 * rep].as_ref().expect("spmv succeeds"),
                first,
                "omega group {group} diverged at repetition {rep}"
            );
        }
    }
}

/// PCG solves through the fleet reuse cached programs across jobs and still
/// match the sequential solver bit-for-bit.
#[test]
fn pcg_jobs_match_sequential_bitwise() {
    use alrescha::SolverOptions;
    let a = alrescha_sparse::gen::stencil27(3);
    let n = a.rows();
    let jobs: Vec<JobSpec> = (0..3)
        .map(|i| {
            let b: Vec<f64> = (0..n).map(|j| ((i + j) % 5) as f64 - 2.0).collect();
            JobSpec::new(
                a.clone(),
                JobKernel::Pcg {
                    b,
                    opts: SolverOptions {
                        tol: 1e-9,
                        max_iters: 60,
                    },
                },
            )
        })
        .collect();
    let batch = Fleet::new(FleetConfig::default().with_workers(2)).run(jobs.clone());
    let sequential = Fleet::new(FleetConfig::default()).run_sequential(jobs);
    assert_eq!(fingerprints(&batch), fingerprints(&sequential));
    // Each solve needs SpMV + SymGS programs: 2 misses, then 4 hits.
    assert_eq!(batch.stats.cache_misses, 2);
    assert_eq!(batch.stats.cache_hits, 4);
    for rec in &batch.jobs {
        let Ok(JobOutput::Pcg { outcome }) = &rec.result else {
            panic!("job {} did not solve: {:?}", rec.job, rec.result);
        };
        assert!(outcome.converged, "job {} failed to converge", rec.job);
    }
}
