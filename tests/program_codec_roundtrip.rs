//! Property tests for the bit-packed program codec: `encode → decode →
//! re-encode` must be bit-identical through the shared
//! [`alrescha::EntryLayout`] tables for every kernel, matrix shape, and
//! block width — the layout is defined exactly once, so any drift between
//! the encoder, the decoder, and the verifier's width arithmetic shows up
//! here as a byte mismatch.

use alrescha::convert::{convert, KernelType};
use alrescha::{EntryLayout, ProgramBinary};
use alrescha_sparse::gen;
use proptest::prelude::*;

const KERNELS: [KernelType; 6] = [
    KernelType::SpMv,
    KernelType::SymGs,
    KernelType::Bfs,
    KernelType::Sssp,
    KernelType::PageRank,
    KernelType::ConnectedComponents,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_decode_reencode_is_bit_identical(
        kernel_pick in 0usize..6,
        side in 2usize..6,
        omega in 2usize..17,
        seed in 0u64..1024,
    ) {
        let kernel = KERNELS[kernel_pick];
        let coo = gen::banded(side * side * side, side, seed);
        let coo = match kernel {
            KernelType::SpMv | KernelType::SymGs => coo,
            _ => coo.transpose(),
        };
        let n = coo.rows().max(coo.cols());
        let (_, table) = convert(kernel, &coo, omega).expect("convert");

        let first = ProgramBinary::encode(kernel, &table, n, omega);
        let decoded = first.decode().expect("decode");
        let second = ProgramBinary::encode(kernel, &decoded, n, omega);

        prop_assert_eq!(first.as_bytes(), second.as_bytes(), "re-encode must be bit-identical");
        prop_assert_eq!(decoded.entries(), table.entries(), "decoded entries must match");
    }

    /// The layout's field windows always tile the paper's entry budget
    /// exactly, for any geometry: 1 + 1 + 1 + two idx windows.
    #[test]
    fn layout_tiles_entry_bits_for_any_geometry(n in 1usize..100_000, omega in 1usize..65) {
        let layout = EntryLayout::for_matrix(n, omega);
        let mut end = 0;
        for field in layout.fields() {
            prop_assert_eq!(field.offset, end, "field {} must abut its predecessor", field.name);
            end += field.width;
        }
        prop_assert_eq!(end, layout.entry_bits());
    }

    /// Scattered (worst-case irregular) structures round-trip too — the
    /// SymGS port/order/index reconstruction has the most special cases.
    #[test]
    fn symgs_roundtrip_on_scattered_structures(
        n in 16usize..200,
        per_row in 1usize..12,
        omega in 2usize..12,
        seed in 0u64..256,
    ) {
        let coo = gen::scattered(n, per_row, seed);
        let (_, table) = convert(KernelType::SymGs, &coo, omega).expect("convert");
        let n_dim = coo.rows().max(coo.cols());
        let first = ProgramBinary::encode(KernelType::SymGs, &table, n_dim, omega);
        let decoded = first.decode().expect("decode");
        prop_assert_eq!(decoded.entries(), table.entries());
        let second = ProgramBinary::encode(KernelType::SymGs, &decoded, n_dim, omega);
        prop_assert_eq!(first.as_bytes(), second.as_bytes());
    }
}
