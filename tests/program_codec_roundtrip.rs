//! Property tests for the bit-packed program codec: `encode → decode →
//! re-encode` must be bit-identical through the shared
//! [`alrescha::EntryLayout`] tables for every kernel, matrix shape, and
//! block width — the layout is defined exactly once, so any drift between
//! the encoder, the decoder, and the verifier's width arithmetic shows up
//! here as a byte mismatch.
//!
//! The alasm text form joins the same contract from the other side:
//! `binary → text → binary` must reproduce the program bits and payload
//! exactly, and `text → binary → text` must reproduce the token stream
//! (comments and whitespace excluded), for converter output over every
//! kernel × generator class.

use alrescha::convert::{convert, KernelType};
use alrescha::{EntryLayout, ProgramBinary};
use alrescha_asm::syntax::token_stream;
use alrescha_asm::{assemble_text, disassemble};
use alrescha_sparse::{gen, Coo};
use proptest::prelude::*;

const KERNELS: [KernelType; 6] = [
    KernelType::SpMv,
    KernelType::SymGs,
    KernelType::Bfs,
    KernelType::Sssp,
    KernelType::PageRank,
    KernelType::ConnectedComponents,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn encode_decode_reencode_is_bit_identical(
        kernel_pick in 0usize..6,
        side in 2usize..6,
        omega in 2usize..17,
        seed in 0u64..1024,
    ) {
        let kernel = KERNELS[kernel_pick];
        let coo = gen::banded(side * side * side, side, seed);
        let coo = match kernel {
            KernelType::SpMv | KernelType::SymGs => coo,
            _ => coo.transpose(),
        };
        let n = coo.rows().max(coo.cols());
        let (_, table) = convert(kernel, &coo, omega).expect("convert");

        let first = ProgramBinary::encode(kernel, &table, n, omega);
        let decoded = first.decode().expect("decode");
        let second = ProgramBinary::encode(kernel, &decoded, n, omega);

        prop_assert_eq!(first.as_bytes(), second.as_bytes(), "re-encode must be bit-identical");
        prop_assert_eq!(decoded.entries(), table.entries(), "decoded entries must match");
    }

    /// The layout's field windows always tile the paper's entry budget
    /// exactly, for any geometry: 1 + 1 + 1 + two idx windows.
    #[test]
    fn layout_tiles_entry_bits_for_any_geometry(n in 1usize..100_000, omega in 1usize..65) {
        let layout = EntryLayout::for_matrix(n, omega);
        let mut end = 0;
        for field in layout.fields() {
            prop_assert_eq!(field.offset, end, "field {} must abut its predecessor", field.name);
            end += field.width;
        }
        prop_assert_eq!(end, layout.entry_bits());
    }

    /// Scattered (worst-case irregular) structures round-trip too — the
    /// SymGS port/order/index reconstruction has the most special cases.
    #[test]
    fn symgs_roundtrip_on_scattered_structures(
        n in 16usize..200,
        per_row in 1usize..12,
        omega in 2usize..12,
        seed in 0u64..256,
    ) {
        let coo = gen::scattered(n, per_row, seed);
        let (_, table) = convert(KernelType::SymGs, &coo, omega).expect("convert");
        let n_dim = coo.rows().max(coo.cols());
        let first = ProgramBinary::encode(KernelType::SymGs, &table, n_dim, omega);
        let decoded = first.decode().expect("decode");
        prop_assert_eq!(decoded.entries(), table.entries());
        let second = ProgramBinary::encode(KernelType::SymGs, &decoded, n_dim, omega);
        prop_assert_eq!(first.as_bytes(), second.as_bytes());
    }

    /// `binary → text → binary` over converter output: disassembling any
    /// converted program and reassembling the listing must reproduce the
    /// program bits and the ALF payload exactly, for every kernel ×
    /// generator class.
    #[test]
    fn text_roundtrip_is_bit_identical_over_converter_output(
        kernel_pick in 0usize..6,
        class in 0usize..6,
        omega_pick in 0usize..3,
        seed in 0u64..256,
    ) {
        let kernel = KERNELS[kernel_pick];
        let omega = [2, 4, 8][omega_pick];
        let coo = generator_class(class, seed);
        let coo = match kernel {
            KernelType::SpMv | KernelType::SymGs => coo,
            _ => coo.transpose(),
        };
        // Graph-shaped structures can lack diagonal entries SymGS needs;
        // those (kernel, matrix) pairs are converter errors, not codec
        // territory.
        let Ok((alf, table)) = convert(kernel, &coo, omega) else {
            return Ok(());
        };
        let n = coo.rows().max(coo.cols());
        let binary = ProgramBinary::encode(kernel, &table, n, omega);

        let text = disassemble(kernel, &table, &alf);
        let asm = assemble_text(&text)
            .unwrap_or_else(|e| panic!("canonical listing rejected: {e}"));
        prop_assert_eq!(asm.binary.as_bytes(), binary.as_bytes(), "program bits");
        prop_assert_eq!(&asm.alf, &alf, "ALF payload");
        prop_assert_eq!(asm.table.entries(), table.entries(), "config entries");

        // `text → binary → text`: the canonical form is a fixed point of
        // the codec at token-stream granularity.
        let text2 = disassemble(asm.kernel, &asm.table, &asm.alf);
        prop_assert_eq!(token_stream(&text), token_stream(&text2), "token stream");
    }
}

/// One representative structure per generator class the alverify `--gen`
/// grammar exposes (sizes kept small — proptest multiplies the cases).
fn generator_class(class: usize, seed: u64) -> Coo {
    match class {
        0 => gen::stencil27(2),
        1 => gen::banded(24, 3, seed),
        2 => gen::circuit(20, seed),
        3 => gen::scattered(18, 4, seed),
        4 => gen::rmat(16, 4, seed),
        _ => gen::road_grid(4),
    }
}
