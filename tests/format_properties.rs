//! Property-based tests on the storage formats: every conversion is
//! lossless, the ALRESCHA format preserves the matrix under its reordering,
//! and the meta-data accounting obeys its documented bounds.

use proptest::prelude::*;

use alrescha_sparse::alf::{config_entry_bits, AlfLayout};
use alrescha_sparse::{Alf, Bcsr, Coo, Csc, Csr, Dia, Ell, MetaData};

/// Strategy: a random sparse matrix up to 24x24 with up to 60 entries.
fn arb_coo() -> impl Strategy<Value = Coo> {
    (1usize..24, 1usize..24).prop_flat_map(|(rows, cols)| {
        let entry = (0..rows, 0..cols, -100i32..100);
        proptest::collection::vec(entry, 0..60).prop_map(move |entries| {
            let mut coo = Coo::new(rows, cols);
            for (r, c, v) in entries {
                // Strictly positive values: duplicate coordinates then sum
                // to a non-zero, so compression and the formats (which drop
                // exact zeros by design) stay in agreement.
                coo.push(r, c, f64::from(v.abs()) + 0.5);
            }
            coo.compress()
        })
    })
}

/// Strategy: a square matrix with a guaranteed non-zero diagonal (SymGS-able).
fn arb_square_coo() -> impl Strategy<Value = Coo> {
    (2usize..20).prop_flat_map(|n| {
        let entry = (0..n, 0..n, -100i32..100);
        proptest::collection::vec(entry, 0..50).prop_map(move |entries| {
            let mut coo = Coo::new(n, n);
            for i in 0..n {
                coo.push(i, i, 4.0 + i as f64);
            }
            for (r, c, v) in entries {
                if r != c {
                    coo.push(r, c, f64::from(v.abs()) + 0.5);
                }
            }
            coo.compress()
        })
    })
}

proptest! {
    #[test]
    fn csr_round_trips(coo in arb_coo()) {
        let back = Csr::from_coo(&coo).to_coo().compress();
        prop_assert_eq!(back, coo);
    }

    #[test]
    fn csc_round_trips(coo in arb_coo()) {
        let back = Csc::from_coo(&coo).to_coo().compress();
        prop_assert_eq!(back, coo);
    }

    #[test]
    fn dia_round_trips(coo in arb_coo()) {
        let back = Dia::from_coo(&coo).to_coo().compress();
        prop_assert_eq!(back, coo);
    }

    #[test]
    fn ell_round_trips(coo in arb_coo()) {
        let back = Ell::from_coo(&coo).to_coo().compress();
        prop_assert_eq!(back, coo);
    }

    #[test]
    fn bcsr_round_trips_any_block_width(coo in arb_coo(), omega in 1usize..9) {
        let back = Bcsr::from_coo(&coo, omega).unwrap().to_coo().compress();
        prop_assert_eq!(back, coo);
    }

    #[test]
    fn alf_streaming_round_trips(coo in arb_coo(), omega in 1usize..9) {
        let back = Alf::from_coo(&coo, omega, AlfLayout::Streaming)
            .unwrap()
            .to_coo()
            .compress();
        prop_assert_eq!(back, coo);
    }

    #[test]
    fn alf_symgs_round_trips(coo in arb_square_coo(), omega in 1usize..9) {
        let back = Alf::from_coo(&coo, omega, AlfLayout::SymGs)
            .unwrap()
            .to_coo()
            .compress();
        prop_assert_eq!(back, coo);
    }

    #[test]
    fn alf_symgs_extracts_exactly_the_diagonal(coo in arb_square_coo(), omega in 1usize..9) {
        let alf = Alf::from_coo(&coo, omega, AlfLayout::SymGs).unwrap();
        let csr = Csr::from_coo(&coo);
        prop_assert_eq!(alf.diagonal().to_vec(), csr.diagonal());
        // And no diagonal value remains in any block payload.
        for block in alf.blocks() {
            if block.block_row() == block.block_col() {
                for i in 0..omega {
                    prop_assert_eq!(block.get(i, i), 0.0);
                }
            }
        }
    }

    #[test]
    fn alf_diagonal_block_closes_each_block_row(coo in arb_square_coo(), omega in 1usize..9) {
        let alf = Alf::from_coo(&coo, omega, AlfLayout::SymGs).unwrap();
        // Within each block row, the diagonal block (if present) is last.
        let mut last_row = None;
        for block in alf.blocks() {
            if Some(block.block_row()) == last_row {
                // Same block row: previous block must not have been diagonal.
            } else {
                last_row = Some(block.block_row());
            }
        }
        for w in alf.blocks().windows(2) {
            if w[0].block_row() == w[1].block_row() {
                prop_assert_ne!(
                    w[0].kind(),
                    alrescha_sparse::BlockKind::Diagonal,
                    "diagonal block must close its block row"
                );
            }
        }
    }

    #[test]
    fn meta_bytes_are_nonzero_for_nonempty(coo in arb_coo()) {
        prop_assume!(coo.nnz() > 0);
        for meta in [
            Csr::from_coo(&coo).meta_bytes(),
            Ell::from_coo(&coo).meta_bytes(),
            Bcsr::from_coo(&coo, 4).unwrap().meta_bytes(),
        ] {
            prop_assert!(meta > 0);
        }
    }

    #[test]
    fn config_entry_bits_is_monotone_in_n(omega in 1usize..16, n in 1usize..4096) {
        let bits_n = config_entry_bits(n, omega);
        let bits_2n = config_entry_bits(2 * n, omega);
        prop_assert!(bits_2n >= bits_n);
        prop_assert!(bits_n >= 3);
    }

    #[test]
    fn dense_matvec_equals_csr_spmv(coo in arb_coo()) {
        let csr = Csr::from_coo(&coo);
        let dense = alrescha_sparse::DenseMatrix::from_coo(&coo);
        let x: Vec<f64> = (0..coo.cols()).map(|i| (i as f64 * 0.7).cos()).collect();
        let via_csr = alrescha_kernels::spmv::spmv(&csr, &x);
        let via_dense = dense.matvec(&x);
        prop_assert!(alrescha_sparse::approx_eq(&via_csr, &via_dense, 1e-10));
    }
}

/// Regression pins for the two shrunk cases committed in
/// `format_properties.proptest-regressions`.
///
/// **Root cause (both seeds):** an explicit *exact-zero* entry survives
/// [`Coo::compress`] (which only merges duplicate coordinates) but is
/// dropped by the dense-block formats — DIA, BCSR, and ALF treat `0.0` as
/// structural absence when they scan for occupied blocks/diagonals — while
/// CSR and ELL faithfully store whatever entries exist. The round-trip
/// properties `X::from_coo(coo).to_coo().compress() == coo` therefore
/// failed whenever the generator emitted a `0.0` value. The generators were
/// fixed to emit `|v| + 0.5` (strictly non-zero) — see [`arb_coo`] — and
/// these tests pin the shrunk inputs deterministically so the asymmetry
/// stays documented behaviour rather than a latent trap.
mod regression_seeds {
    use super::*;

    /// Shrunk case 1: `Coo { rows: 2, cols: 3, entries: [(1, 2, 0.0)] }`,
    /// `omega = 3` (failed the DIA/BCSR/ALF round-trips).
    #[test]
    fn explicit_zero_entry_is_dropped_by_block_formats_only() {
        let mut coo = Coo::new(2, 3);
        coo.push(1, 2, 0.0);
        let coo = coo.compress();
        // compress() keeps the explicit zero: it is an entry, not a dup.
        assert_eq!(coo.entries(), &[(1, 2, 0.0)]);

        // Entry-list formats preserve it bit-for-bit…
        assert_eq!(Csr::from_coo(&coo).to_coo().compress(), coo);
        assert_eq!(Ell::from_coo(&coo).to_coo().compress(), coo);

        // …dense-block formats treat 0.0 as structurally absent.
        for (name, back) in [
            ("dia", Dia::from_coo(&coo).to_coo().compress()),
            (
                "bcsr",
                Bcsr::from_coo(&coo, 3).expect("ok").to_coo().compress(),
            ),
            (
                "alf",
                Alf::from_coo(&coo, 3, AlfLayout::Streaming)
                    .expect("ok")
                    .to_coo()
                    .compress(),
            ),
        ] {
            assert!(
                back.entries().is_empty(),
                "{name} must drop the explicit zero, kept {:?}",
                back.entries()
            );
        }
    }

    /// Shrunk case 2: a 3×3 system with an explicit zero *off-diagonal*
    /// `(1, 0, 0.0)`, `omega = 1` (failed the SymGS-layout ALF round-trip:
    /// the old square generator could emit zero off-diagonals).
    #[test]
    fn symgs_layout_drops_explicit_zero_off_diagonal() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 4.0);
        coo.push(1, 0, 0.0);
        coo.push(1, 1, 5.0);
        coo.push(2, 2, 6.0);
        let coo = coo.compress();

        let back = Alf::from_coo(&coo, 1, AlfLayout::SymGs)
            .expect("diagonal present")
            .to_coo()
            .compress();
        // Everything except the explicit zero survives the round trip.
        assert_eq!(back.entries(), &[(0, 0, 4.0), (1, 1, 5.0), (2, 2, 6.0)]);
        // The diagonal itself is untouched by the dropped entry.
        let alf = Alf::from_coo(&coo, 1, AlfLayout::SymGs).expect("ok");
        assert_eq!(alf.diagonal().to_vec(), vec![4.0, 5.0, 6.0]);
    }

    /// The fixed generators can no longer reach the failure: every emitted
    /// value is at least 0.5 in magnitude.
    #[test]
    fn generators_emit_no_exact_zeros() {
        // Deterministic spot-check across the value range the strategies
        // use: |v| + 0.5 is bounded away from zero for every i32 input.
        for v in -100i32..100 {
            assert!(f64::from(v.abs()) + 0.5 >= 0.5);
        }
    }
}

mod program_binary {
    use super::*;
    use alrescha::convert::{convert, KernelType};
    use alrescha::program::ProgramBinary;

    proptest! {
        #[test]
        fn program_binary_round_trips_for_any_matrix(
            coo in arb_square_coo(),
            omega_pow in 0usize..5,
            kernel_pick in 0usize..5,
        ) {
            let omega = 1usize << omega_pow;
            let kernel = [
                KernelType::SpMv,
                KernelType::SymGs,
                KernelType::Bfs,
                KernelType::Sssp,
                KernelType::PageRank,
            ][kernel_pick];
            let (_, table) = convert(kernel, &coo, omega).expect("diag present");
            let binary =
                ProgramBinary::encode(kernel, &table, coo.rows().max(coo.cols()), omega);
            let decoded = binary.decode().expect("well-formed");
            prop_assert_eq!(decoded.entries(), table.entries());
        }

        #[test]
        fn binary_size_obeys_the_bit_budget(coo in arb_square_coo(), omega_pow in 0usize..5) {
            let omega = 1usize << omega_pow;
            let (_, table) = convert(KernelType::SymGs, &coo, omega).expect("diag present");
            let n = coo.rows().max(coo.cols());
            let binary = ProgramBinary::encode(KernelType::SymGs, &table, n, omega);
            let expect_bits = table.entries().len()
                * alrescha_sparse::alf::config_entry_bits(n, omega);
            prop_assert_eq!(binary.len_bytes(), expect_bits.div_ceil(8));
        }
    }
}
