//! Moderate-scale end-to-end runs, plus an `--ignored` large-scale check.

use alrescha::{AcceleratedPcg, Alrescha, KernelType, SolverOptions};
use alrescha_kernels::spmv::spmv;
use alrescha_sparse::{gen, Csr, MetaData};

#[test]
fn device_pcg_solves_a_sixteen_cubed_stencil() {
    // 4096 unknowns, ~105k non-zeros: a real (if small) PDE system.
    let coo = gen::stencil27(16);
    let csr = Csr::from_coo(&coo);
    let x_true: Vec<f64> = (0..coo.rows())
        .map(|i| ((i % 11) as f64) * 0.3 - 1.5)
        .collect();
    let b = spmv(&csr, &x_true);

    let mut acc = Alrescha::with_paper_config();
    let solver = AcceleratedPcg::program(&mut acc, &coo).expect("program");
    let out = solver
        .solve(
            &mut acc,
            &b,
            &SolverOptions {
                tol: 1e-8,
                max_iters: 100,
            },
        )
        .expect("solve");
    assert!(out.converged, "residual {}", out.residual);
    assert!(alrescha_sparse::approx_eq(&out.x, &x_true, 1e-4));
    // The device did real work: tens of millions of ALU ops.
    assert!(out.report.energy.alu_ops > 10_000_000);
}

#[test]
fn device_graph_kernels_at_four_thousand_vertices() {
    let g = gen::GraphClass::Kronecker.generate(4096, 99);
    assert!(g.nnz() > 20_000);
    let mut acc = Alrescha::with_paper_config();
    let prog = acc.program(KernelType::Bfs, &g).expect("program");
    let (levels, report) = acc.bfs(&prog, 0).expect("run");
    let expect = alrescha_kernels::graph::bfs(&Csr::from_coo(&g), 0).expect("reference");
    assert_eq!(levels, expect);
    assert!(report.seconds > 0.0);
}

#[test]
#[ignore = "large-scale check: ~1 minute; run with cargo test -- --ignored"]
fn device_pcg_solves_a_thirtytwo_cubed_stencil() {
    // 32768 unknowns, ~880k non-zeros — HPCG's smallest official grid.
    let coo = gen::stencil27(32);
    let csr = Csr::from_coo(&coo);
    let b = spmv(&csr, &vec![1.0; coo.cols()]);
    let mut acc = Alrescha::with_paper_config();
    let solver = AcceleratedPcg::program(&mut acc, &coo).expect("program");
    let out = solver
        .solve(
            &mut acc,
            &b,
            &SolverOptions {
                tol: 1e-6,
                max_iters: 60,
            },
        )
        .expect("solve");
    assert!(out.converged);
}
