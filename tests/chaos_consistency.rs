//! `alchaos` crash-consistency harness: seeded storage and network fault
//! injection against the serve stack, with replayable failures.
//!
//! Every test here runs a per-seed property over a seed matrix:
//!
//! * `CHAOS_SEED=<n>` runs exactly that seed — the repro knob printed
//!   when a seed fails;
//! * `CHAOS_SEEDS=<count>` sets the matrix width (CI uses 32);
//! * unset, a small default keeps `cargo test` quick.
//!
//! The invariants, per seed:
//!
//! 1. **No acked record is ever lost.** Any journal operation that
//!    returned `Ok` under fault injection is present after a clean
//!    reopen; operations that returned `Err` may or may not have landed
//!    (crash-consistent either way), but can never tear the records
//!    around them.
//! 2. **Recovery is bit-identical.** Replaying the journal through the
//!    chaos storage (bit-flip reads and all) yields exactly the same
//!    pending/settled sets as a clean replay, and a served solve that
//!    lived through storage+network chaos fingerprints identically to
//!    an uninterrupted in-process run.
//! 3. **Checkpoints are atomic.** A reader only ever observes the old
//!    or the new checkpoint, bit-identically — never a blend or a torn
//!    file.
//! 4. **Every fault kind demonstrably fires** across the matrix,
//!    asserted from the injector counters and visible in alobs metrics.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use alrescha::checkpoint::{SolverCheckpoint, SolverKind};
use alrescha::{ChaosStorage, IoFaultCounters, IoFaultPlan, StorageIo};
use alrescha_obs::Telemetry;
use alrescha_serve::chaos::{ChaosProxy, NetFaultCounters, NetFaultPlan};
use alrescha_serve::{
    Bind, Client, JobPayload, Journal, JournalRecord, RetryPolicy, Server, ServerConfig,
};

/// Base offset so chaos seeds are recognizable in logs.
const SEED_BASE: u64 = 0xA15C_0000;

/// The seed matrix: `CHAOS_SEED` pins one seed, `CHAOS_SEEDS` widens the
/// matrix (CI passes 32), otherwise `default_count` seeds run.
fn seed_matrix(default_count: u64) -> Vec<u64> {
    if let Ok(pinned) = std::env::var("CHAOS_SEED") {
        let seed = pinned
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("CHAOS_SEED must be a u64, got {pinned:?}"));
        return vec![seed];
    }
    let count = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(default_count);
    (0..count).map(|i| SEED_BASE + i).collect()
}

/// Runs `body` for every seed in the matrix; a failing seed prints a
/// copy-pasteable repro line before propagating the panic.
fn for_each_seed(test: &str, default_count: u64, body: impl Fn(u64)) {
    let seeds = seed_matrix(default_count);
    for &seed in &seeds {
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(seed))) {
            eprintln!(
                "\nchaos seed {seed} failed; reproduce with:\n  \
                 CHAOS_SEED={seed} cargo test --release --test chaos_consistency {test} -- --nocapture\n"
            );
            panic::resume_unwind(payload);
        }
    }
}

/// Coverage assertions only make sense over a real matrix, not a pinned
/// single-seed repro run.
fn full_matrix() -> bool {
    std::env::var("CHAOS_SEED").is_err()
}

fn tempdir(name: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "alchaos-{name}-{seed}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_job(seed: u64) -> JobPayload {
    let matrix = alrescha_sparse::gen::stencil27(2);
    let b: Vec<f64> = (0..matrix.rows())
        .map(|i| ((i as f64) + (seed as f64) * 0.5).cos() + 1.5)
        .collect();
    JobPayload {
        matrix,
        b,
        tol: 1e-10,
        max_iters: 100,
        priority: (seed % 4) as u8,
    }
}

// ---------------------------------------------------------------------------
// Invariant 1 + 2a: the journal under storage chaos
// ---------------------------------------------------------------------------

#[test]
fn journal_never_loses_an_acked_record() {
    let merged = std::sync::Mutex::new(IoFaultCounters::default());
    for_each_seed("journal_never_loses_an_acked_record", 8, |seed| {
        let dir = tempdir("journal", seed);
        let wal = dir.join("jobs.wal");
        let storage = Arc::new(ChaosStorage::new(IoFaultPlan::aggressive(seed)));

        // Three open→work→drop rounds: each open replays through the
        // chaos read path (bit flips), each round appends under write
        // faults. Track exactly which operations were acknowledged.
        let mut acked_accepts: Vec<u64> = Vec::new();
        let mut acked_terminals: Vec<u64> = Vec::new();
        let mut next_id = 1u64;
        for round in 0..3u64 {
            let journal = Journal::open_with(
                &wal,
                Arc::clone(&storage) as Arc<dyn StorageIo>,
            );
            // A stable-read failure after 32 retries is theoretically
            // possible but means the harness, not the journal, is
            // miscalibrated — surface it as a failure.
            let mut journal = journal.unwrap_or_else(|e| {
                panic!("seed {seed} round {round}: journal open failed: {e}")
            });
            // Replay must never have dropped an acked record.
            let pending: Vec<u64> = journal.recover().iter().map(|(id, _, _)| *id).collect();
            for id in &acked_accepts {
                let settled = journal.settled().iter().any(|r| match r {
                    JournalRecord::Completed { job_id, .. }
                    | JournalRecord::Failed { job_id, .. } => job_id == id,
                    _ => false,
                });
                assert!(
                    pending.contains(id) || settled,
                    "seed {seed} round {round}: acked job {id} lost on replay"
                );
            }
            for id in &acked_terminals {
                assert!(
                    !pending.contains(id),
                    "seed {seed} round {round}: acked terminal for {id} lost (job re-pending)"
                );
            }

            let job = small_job(seed);
            for op in 0..12u64 {
                let id = next_id;
                if op % 3 == 2 && acked_accepts.iter().any(|a| !acked_terminals.contains(a)) {
                    // Settle the oldest unfinished acked job.
                    let open = *acked_accepts
                        .iter()
                        .find(|a| !acked_terminals.contains(a))
                        .unwrap();
                    let record = JournalRecord::Completed {
                        job_id: open,
                        fingerprint: seed ^ open,
                        iterations: op,
                        residual: 1e-12,
                        converged: true,
                    };
                    if journal.terminal(&record).is_ok() {
                        acked_terminals.push(open);
                    }
                } else if journal.accept(id, "chaos", &job).is_ok() {
                    acked_accepts.push(id);
                    next_id += 1;
                } else {
                    // Unacked: the record may or may not be on disk; both
                    // are crash-consistent. Skip the id to mimic a fresh
                    // admission after a client retry.
                    next_id += 1;
                }
            }
        }

        // Final verification: a clean replay (no read faults) and a chaos
        // replay (stable-read loop) must agree bit-for-bit on recovery.
        let clean = Journal::open(&wal).unwrap();
        let chaos = Journal::open_with(&wal, Arc::clone(&storage) as Arc<dyn StorageIo>)
            .unwrap_or_else(|e| panic!("seed {seed}: chaos reopen failed: {e}"));
        assert_eq!(
            clean.recover(),
            chaos.recover(),
            "seed {seed}: chaos replay diverged from clean replay (pending)"
        );
        assert_eq!(
            clean.settled(),
            chaos.settled(),
            "seed {seed}: chaos replay diverged from clean replay (settled)"
        );
        let pending: Vec<u64> = clean.recover().iter().map(|(id, _, _)| *id).collect();
        for id in &acked_accepts {
            let settled = acked_terminals.contains(id);
            assert!(
                pending.contains(id) || settled,
                "seed {seed}: acked job {id} missing after clean reopen"
            );
        }
        for id in &acked_terminals {
            assert!(
                !pending.contains(id),
                "seed {seed}: acked terminal for {id} missing after clean reopen"
            );
        }

        merged.lock().unwrap().merge(&storage.counters());
        let _ = std::fs::remove_dir_all(&dir);
    });

    if full_matrix() {
        let merged = merged.lock().unwrap();
        assert!(
            merged.all_kinds_fired(),
            "storage fault coverage incomplete across the matrix: {merged:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Invariant 3: checkpoint atomicity
// ---------------------------------------------------------------------------

fn checkpoint_fixture(tag: u64, n: usize) -> SolverCheckpoint {
    let f = |i: usize| ((i as f64) + (tag as f64) * 0.25).sin();
    SolverCheckpoint {
        kind: SolverKind::Pcg,
        n,
        iteration: tag as usize + 1,
        x: (0..n).map(f).collect(),
        r: (0..n).map(|i| f(i) * 0.5).collect(),
        p: (0..n).map(|i| f(i) * 0.25).collect(),
        rz: 1.0 + tag as f64,
        r0: 10.0,
        residual_history: (0..=tag).map(|k| 1.0 / (k as f64 + 1.0)).collect(),
        fault: None,
    }
}

#[test]
fn checkpoint_writes_are_atomic_old_or_new() {
    for_each_seed("checkpoint_writes_are_atomic_old_or_new", 8, |seed| {
        let dir = tempdir("ckpt", seed);
        let path = dir.join("job-1.ckpt");
        let storage = ChaosStorage::new(IoFaultPlan::aggressive(seed));

        // Establish a known-good "old" checkpoint, then hammer the path
        // with "new" checkpoints through the fault injector.
        let mut current = checkpoint_fixture(0, 24);
        current.write_to_path(&path).unwrap();
        for attempt in 1..=12u64 {
            let next = checkpoint_fixture(attempt, 24);
            let wrote = next.write_to_path_with(&storage, &path).is_ok();
            // Old-or-new: a clean read must yield exactly one of the two
            // candidate checkpoints, bit-identically.
            let seen = SolverCheckpoint::read_from_path(&path).unwrap_or_else(|e| {
                panic!("seed {seed} attempt {attempt}: checkpoint unreadable (torn?): {e}")
            });
            if wrote {
                assert_eq!(
                    seen, next,
                    "seed {seed} attempt {attempt}: acked write not visible"
                );
            } else {
                assert!(
                    seen == current || seen == next,
                    "seed {seed} attempt {attempt}: torn checkpoint observed"
                );
            }
            current = seen;
            // The chaos read path (bit-flip retries) agrees with the
            // clean read.
            let chaos_seen = SolverCheckpoint::read_from_path_with(&storage, &path)
                .unwrap_or_else(|e| {
                    panic!("seed {seed} attempt {attempt}: chaos read failed: {e}")
                });
            assert_eq!(chaos_seen, current);
        }
        let _ = std::fs::remove_dir_all(&dir);
    });
}

// ---------------------------------------------------------------------------
// Invariant 2b + 4: the full serve stack under storage AND network chaos
// ---------------------------------------------------------------------------

fn reference_fingerprint(job: &JobPayload) -> u64 {
    use alrescha::fleet::{Fleet, FleetConfig, JobKernel, JobSpec};
    let spec = JobSpec::new(
        job.matrix.clone(),
        JobKernel::Pcg {
            b: job.b.clone(),
            opts: alrescha::SolverOptions {
                tol: job.tol,
                max_iters: usize::try_from(job.max_iters).unwrap(),
            },
        },
    );
    let fleet = Fleet::new(FleetConfig::default().with_workers(1));
    let report = fleet.run_sequential(vec![spec]);
    report.jobs[0]
        .result
        .as_ref()
        .unwrap()
        .solution_fingerprint()
}

fn chaos_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        deadline: Duration::from_mins(2),
        max_attempts: 2000,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(10),
        seed,
    }
}

#[test]
fn serve_stack_survives_storage_and_network_chaos() {
    let merged_net = std::sync::Mutex::new(NetFaultCounters::default());
    let merged_io = std::sync::Mutex::new(IoFaultCounters::default());
    for_each_seed("serve_stack_survives_storage_and_network_chaos", 2, |seed| {
        let dir = tempdir("serve", seed);
        let tele = Telemetry::new();
        // Storage chaos is dialed below the journal-test rates: the server
        // must make forward progress through its storage breaker, not
        // spend the whole run rejecting.
        let io_plan = IoFaultPlan {
            short_write_rate: 0.10,
            interrupt_rate: 0.05,
            enospc_rate: 0.04,
            fsync_fail_rate: 0.03,
            bit_flip_rate: 0.10,
            seed,
        };
        let storage = Arc::new(
            ChaosStorage::new(io_plan).with_telemetry(Arc::clone(&tele)),
        );
        let config = ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_owned()),
            data_dir: dir.clone(),
            workers: 2,
            queue_capacity: 16,
            per_tenant_quota: 8,
            checkpoint_every: 3,
            retry_after_hint: Duration::from_millis(2),
            storage: Arc::clone(&storage) as Arc<dyn StorageIo>,
            ..ServerConfig::default()
        };
        let handle = Server::new(config).start().unwrap();
        let proxy = ChaosProxy::start_with_telemetry(
            handle.addr().to_owned(),
            NetFaultPlan::aggressive(seed),
            Some(Arc::clone(&tele)),
        )
        .unwrap();

        // Submit a small prioritized batch THROUGH the proxy and wait for
        // every job the server acknowledged.
        let mut client = Client::tcp(proxy.addr().to_owned(), chaos_policy(seed));
        let jobs: Vec<JobPayload> = (0..3u64)
            .map(|j| {
                let mut job = small_job(seed.wrapping_add(j));
                job.priority = [0u8, 200, 9][j as usize];
                job
            })
            .collect();
        let mut ids = Vec::new();
        for job in &jobs {
            let id = client
                .submit("chaos", job)
                .unwrap_or_else(|e| panic!("seed {seed}: submit failed: {e:?}"));
            ids.push(id);
        }
        for (id, job) in ids.iter().zip(&jobs) {
            let result = client
                .wait(*id)
                .unwrap_or_else(|e| panic!("seed {seed}: wait({id}) failed: {e:?}"));
            assert!(result.converged, "seed {seed}: job {id} did not converge");
            assert_eq!(
                result.solution_fingerprint,
                reference_fingerprint(job),
                "seed {seed}: job {id} diverged from the uninterrupted reference"
            );
        }
        proxy_counters_into(&proxy, &merged_net);
        handle.stop();

        // Crash-consistency coda: restart CLEAN (no chaos) over whatever
        // the chaotic run left on disk. Every acked job must either be
        // settled or recovered and re-run to the identical fingerprint.
        let clean_config = ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_owned()),
            data_dir: dir.clone(),
            workers: 2,
            retry_after_hint: Duration::from_millis(2),
            ..ServerConfig::default()
        };
        let handle = Server::new(clean_config).start().unwrap();
        let mut client = Client::tcp(handle.addr().to_owned(), chaos_policy(seed));
        for (id, job) in ids.iter().zip(&jobs) {
            let result = client
                .wait(*id)
                .unwrap_or_else(|e| panic!("seed {seed}: post-restart wait({id}) failed: {e:?}"));
            assert!(result.converged);
            assert_eq!(
                result.solution_fingerprint,
                reference_fingerprint(job),
                "seed {seed}: job {id} not bit-identical after clean restart"
            );
        }
        handle.stop();

        // Telemetry: injected faults are visible as alobs counters.
        let snapshot = tele.metrics().snapshot_json();
        if storage.counters().total() > 0 {
            assert!(
                snapshot.contains("alchaos_io_"),
                "seed {seed}: storage faults fired but no alchaos_io_* metric"
            );
        }
        merged_io.lock().unwrap().merge(&storage.counters());
        let _ = std::fs::remove_dir_all(&dir);
    });

    // Coverage across the matrix: every network fault kind fired. (The
    // storage-side coverage assert lives in the journal test, whose rates
    // are tuned to fire every kind; here the dialed-down plan still must
    // have injected a meaningful number of faults.)
    if full_matrix() && seed_matrix(2).len() >= 8 {
        let net = merged_net.lock().unwrap();
        assert!(
            net.all_kinds_fired(),
            "network fault coverage incomplete across the matrix: {net:?}"
        );
        let io = merged_io.lock().unwrap();
        assert!(
            io.total() > 0,
            "storage injector never fired during the e2e matrix"
        );
    }
}

fn proxy_counters_into(proxy: &ChaosProxy, merged: &std::sync::Mutex<NetFaultCounters>) {
    merged.lock().unwrap().merge(&proxy.counters());
}
