//! Checkpoint/resume acceptance tests: a solve killed mid-run and resumed
//! from its last checkpoint is bit-identical to the uninterrupted solve —
//! across block widths, fault plans, and checkpoint cadences — and the
//! serialized format rejects every corruption with a typed error.

use proptest::prelude::*;

use alrescha::{
    AcceleratedMgPcg, AcceleratedPcg, Alrescha, CheckpointError, FaultPlan, RecoveryPolicy,
    SolveOutcome, SolverCheckpoint, SolverOptions,
};
use alrescha_kernels::multigrid::GridHierarchy;
use alrescha_kernels::spmv::spmv;
use alrescha_sim::SimConfig;
use alrescha_sparse::{gen, Csr};

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn assert_outcomes_bit_identical(a: &SolveOutcome, b: &SolveOutcome) {
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.converged, b.converged);
    assert_eq!(a.residual.to_bits(), b.residual.to_bits());
    assert!(bits_equal(&a.x, &b.x), "iterates differ bitwise");
}

/// An accelerator with the given ω, a fault plan (when `seeded`), and a
/// retry policy generous enough that transient flips never kill the solve.
fn accelerator(omega: usize, fault_seed: Option<u64>) -> Alrescha {
    let mut acc = Alrescha::new(SimConfig::paper().with_omega(omega));
    if let Some(seed) = fault_seed {
        acc.set_fault_plan(Some(FaultPlan::inert(seed).with_fcu_tree_rate(0.01)));
        acc.set_recovery_policy(RecoveryPolicy::Retry {
            max_retries: 32,
            backoff_cycles: 8,
        });
    }
    acc
}

#[test]
fn mg_pcg_resume_is_bit_identical() {
    let hierarchy = GridHierarchy::build(8, 3).unwrap();
    let a = hierarchy.levels()[0].matrix.clone();
    let b = spmv(&a, &vec![1.0; a.cols()]);
    let opts = SolverOptions {
        tol: 1e-9,
        max_iters: 100,
    };

    let mut acc = Alrescha::with_paper_config();
    let solver = AcceleratedMgPcg::program(&mut acc, &hierarchy).unwrap();
    let full = solver.solve(&mut acc, &b, &opts).unwrap();
    assert!(full.converged);

    let mut checkpoints = Vec::new();
    let watched = solver
        .solve_with_checkpoints(&mut acc, &b, &opts, 2, &mut |cp| checkpoints.push(cp))
        .unwrap();
    assert_outcomes_bit_identical(&full, &watched);
    assert!(!checkpoints.is_empty());

    let resumed = solver
        .resume(&mut acc, &b, &opts, checkpoints.first().unwrap())
        .unwrap();
    assert_eq!(resumed.reason, alrescha::TerminationReason::Resumed);
    assert_outcomes_bit_identical(&full, &resumed);
}

#[test]
fn pcg_checkpoint_survives_serialization_mid_solve() {
    // The full durable path: checkpoint → bytes → decode → resume.
    let coo = gen::stencil27(3);
    let b = spmv(&Csr::from_coo(&coo), &vec![1.0; coo.cols()]);
    let opts = SolverOptions::default();

    let mut acc = accelerator(8, Some(0x00C0_FFEE));
    let solver = AcceleratedPcg::program(&mut acc, &coo).unwrap();
    let full = solver.solve(&mut acc, &b, &opts).unwrap();

    let mut acc2 = accelerator(8, Some(0x00C0_FFEE));
    let mut blobs: Vec<Vec<u8>> = Vec::new();
    solver
        .solve_with_checkpoints(&mut acc2, &b, &opts, 2, &mut |cp| blobs.push(cp.to_bytes()))
        .unwrap();
    assert!(!blobs.is_empty());

    let decoded = SolverCheckpoint::from_bytes(blobs.last().unwrap()).unwrap();
    assert!(decoded.fault.is_some(), "fault cursor must ride along");
    let mut acc3 = accelerator(8, Some(0x00C0_FFEE));
    let resumed = solver.resume(&mut acc3, &b, &opts, &decoded).unwrap();
    assert_outcomes_bit_identical(&full, &resumed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary ω, fault plans, cadences, and resume points:
    /// checkpointing never perturbs the solve, and resuming any emitted
    /// checkpoint on a fresh accelerator reproduces the uninterrupted
    /// result bit for bit (fault stream included).
    #[test]
    fn resume_is_bit_identical(
        omega_pow in 2usize..5,      // ω ∈ {4, 8, 16}
        seed in 0u64..1000,
        with_faults in 0u8..2,
        every in 1usize..5,
        pick in 0usize..100,
    ) {
        let omega = 1 << omega_pow;
        let fault_seed = (with_faults == 1).then_some(seed);
        let coo = gen::banded(64, 4, seed % 5 + 3);
        let b: Vec<f64> = (0..64).map(|i| (f64::from(i) * 0.17).sin() + 1.5).collect();
        let opts = SolverOptions { tol: 1e-10, max_iters: 200 };

        let mut acc = accelerator(omega, fault_seed);
        let solver = AcceleratedPcg::program(&mut acc, &coo).expect("programs");
        // A fault that escapes the checksums can legitimately diverge
        // the solve; determinism of that error is covered elsewhere.
        let Ok(full) = solver.solve(&mut acc, &b, &opts) else {
            return Ok(());
        };

        let mut acc2 = accelerator(omega, fault_seed);
        let mut checkpoints = Vec::new();
        let watched = solver
            .solve_with_checkpoints(&mut acc2, &b, &opts, every, &mut |cp| checkpoints.push(cp))
            .expect("same run as `full` cannot fail");
        assert_outcomes_bit_identical(&full, &watched);
        if checkpoints.is_empty() {
            // Converged before the first checkpoint boundary.
            prop_assert!(full.iterations < every);
            return Ok(());
        }

        let cp = &checkpoints[pick % checkpoints.len()];
        // Round-trip through bytes, as a real kill/restart would.
        let decoded = SolverCheckpoint::from_bytes(&cp.to_bytes()).expect("round trip");
        prop_assert_eq!(&decoded, cp);

        let mut acc3 = accelerator(omega, fault_seed);
        let resumed = solver.resume(&mut acc3, &b, &opts, &decoded).expect("resumes");
        assert_outcomes_bit_identical(&full, &resumed);
    }

    /// Decoding never panics: any single-byte corruption of a valid
    /// checkpoint is rejected with a typed error.
    #[test]
    fn corrupted_checkpoints_are_rejected(
        iteration in 1usize..50,
        n in 1usize..20,
        flip_at in 0usize..10_000,
        flip_mask in 1u8..=255,
    ) {
        let cp = SolverCheckpoint {
            kind: alrescha::SolverKind::Pcg,
            n,
            iteration,
            x: (0..n).map(|i| i as f64 * 0.5).collect(),
            r: (0..n).map(|i| -(i as f64)).collect(),
            p: vec![1.0; n],
            rz: 0.25,
            r0: 3.5,
            residual_history: (0..iteration).map(|k| 1.0 / (k + 1) as f64).collect(),
            fault: None,
        };
        let bytes = cp.to_bytes();
        prop_assert_eq!(&SolverCheckpoint::from_bytes(&bytes).expect("valid"), &cp);

        let mut bad = bytes.clone();
        let at = flip_at % bad.len();
        bad[at] ^= flip_mask;
        prop_assert!(
            SolverCheckpoint::from_bytes(&bad).is_err(),
            "flip at {} undetected", at
        );

        // Truncation at any point is also a typed error, never a panic.
        let cut = flip_at % (bytes.len() + 1);
        if cut < bytes.len() {
            prop_assert!(SolverCheckpoint::from_bytes(&bytes[..cut]).is_err());
        }
    }

    /// Arbitrary garbage bytes decode to a typed error, never a panic or an
    /// absurd allocation.
    #[test]
    fn garbage_bytes_never_panic(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
        with_magic in 0u8..2,
    ) {
        let mut candidate = bytes;
        if with_magic == 1 {
            // Make it past the magic check so deeper decoders get fuzzed.
            let mut prefixed = b"ALCK".to_vec();
            prefixed.extend_from_slice(&candidate);
            candidate = prefixed;
        }
        match SolverCheckpoint::from_bytes(&candidate) {
            Ok(cp) => prop_assert_eq!(cp.x.len(), cp.n), // decoder enforced coherence
            Err(CheckpointError::BadMagic
                | CheckpointError::UnsupportedVersion(_)
                | CheckpointError::Truncated { .. }
                | CheckpointError::CrcMismatch { .. }
                | CheckpointError::Malformed(_)
                | CheckpointError::Mismatch { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error variant {e:?}"),
        }
    }
}
