//! Golden-snapshot tests for the report JSON schemas.
//!
//! [`ExecutionReport::to_json`] and [`FleetReport::to_json`] are consumed by
//! external tooling (dashboards, the figures harness, CI triage), so their
//! field names, ordering, and number formatting are a contract. These tests
//! pin that contract against committed fixtures built from *synthetic*
//! fully-populated reports — every field non-zero, so a silently dropped or
//! renamed field changes the output.
//!
//! To regenerate after an intentional schema change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```

use std::path::PathBuf;
use std::time::Duration;

use alrescha::fleet::{FleetReport, FleetStats, JobOutput, JobRecord};
use alrescha::CoreError;
use alrescha_sim::rcu::ReconfigStats;
use alrescha_sim::report::{BreakerStats, CacheStats, CycleBreakdown, DataPathCounts};
use alrescha_sim::{EnergyCounters, ExecutionReport, FaultCounters};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the committed fixture, or rewrites the fixture
/// when `UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::write(&path, format!("{actual}\n")).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        expected.trim_end(),
        actual,
        "{name} drifted from its golden fixture; if the schema change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// A synthetic execution report with every field non-zero and distinct, so
/// any dropped, renamed, or reordered field perturbs the JSON.
fn populated_execution_report() -> ExecutionReport {
    ExecutionReport {
        kernel: "symgs",
        cycles: 12_345,
        seconds: 1.2345e-5,
        bytes_streamed: 67_890,
        bandwidth_utilization: 0.875,
        cache_time_fraction: 0.125,
        energy: EnergyCounters {
            alu_ops: 11,
            re_ops: 22,
            pe_ops: 33,
            cache_accesses: 44,
            buffer_ops: 55,
            dram_bytes: 66,
            reconfigs: 77,
        },
        reconfig: ReconfigStats {
            switches: 7,
            hidden_cycles: 84,
            exposed_cycles: 3,
        },
        cache: CacheStats {
            hits: 100,
            misses: 20,
            writes: 30,
            busy_cycles: 400,
        },
        datapaths: DataPathCounts {
            gemv_blocks: 9,
            dsymgs_blocks: 8,
            graph_blocks: 7,
            iterations: 2,
            link_stack_peak: 5,
            operand_fifo_peak: 6,
        },
        breakdown: CycleBreakdown {
            gemv_cycles: 1000,
            dsymgs_cycles: 2000,
            graph_cycles: 300,
            drain_cycles: 45,
            recovery_cycles: 6,
        },
        faults: FaultCounters {
            injected: 4,
            detected: 3,
            recovered: 2,
            retries: 5,
            degraded: 1,
        },
        breaker: BreakerStats {
            trips: 1,
            half_open_probes: 2,
            cpu_fallback_runs: 3,
        },
    }
}

/// A synthetic fleet report: one hit, one miss, one failure, one admission
/// reject — all with fixed timings, so the fixture is byte-stable.
fn populated_fleet_report() -> FleetReport {
    let report = populated_execution_report();
    let jobs = vec![
        JobRecord {
            job: 0,
            kernel: "symgs",
            worker: 0,
            cache_hit: false,
            queue_wait: Duration::from_micros(15),
            run_time: Duration::from_micros(920),
            result: Ok(JobOutput::SymGs {
                x: vec![1.0, -2.5, 0.0],
                report: report.clone(),
            }),
        },
        JobRecord {
            job: 1,
            kernel: "symgs",
            worker: 1,
            cache_hit: true,
            queue_wait: Duration::from_micros(40),
            run_time: Duration::from_micros(610),
            result: Ok(JobOutput::SymGs {
                x: vec![1.0, -2.5, 0.0],
                report,
            }),
        },
        JobRecord {
            job: 2,
            kernel: "spmv",
            worker: 0,
            cache_hit: false,
            queue_wait: Duration::from_micros(55),
            run_time: Duration::from_micros(12),
            result: Err(CoreError::Preflight {
                message: "synthetic rejection".to_owned(),
            }),
        },
        JobRecord {
            job: 3,
            kernel: "pcg",
            worker: usize::MAX,
            cache_hit: false,
            queue_wait: Duration::ZERO,
            run_time: Duration::ZERO,
            result: Err(CoreError::QueueFull {
                capacity: 3,
                offered: 4,
                retry_after: Duration::from_millis(25),
            }),
        },
    ];
    FleetReport {
        jobs,
        stats: FleetStats {
            jobs: 4,
            completed: 2,
            failed: 1,
            rejected: 1,
            cache_hits: 1,
            cache_misses: 1,
            engine_rebuilds: 2,
            engine_reuses: 1,
            workers: 2,
            wall_time: Duration::from_micros(1800),
            total_device_cycles: 24_690,
            queue_wait_max: Duration::from_micros(55),
            queue_wait_mean: Duration::from_micros(36),
        },
    }
}

#[test]
fn execution_report_json_matches_golden() {
    assert_golden(
        "execution_report.json",
        &populated_execution_report().to_json(),
    );
}

#[test]
fn fleet_report_json_matches_golden() {
    assert_golden("fleet_report.json", &populated_fleet_report().to_json());
}

#[test]
fn golden_fixtures_are_valid_single_line_json() {
    for name in [
        "execution_report.json",
        "fleet_report.json",
        "metrics_snapshot.json",
    ] {
        let text = std::fs::read_to_string(golden_path(name)).expect("fixture exists");
        let line = text.trim_end();
        assert!(!line.contains('\n'), "{name} must be a single line");
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "unbalanced braces in {name}"
        );
        assert_eq!(
            line.matches('[').count(),
            line.matches(']').count(),
            "unbalanced brackets in {name}"
        );
        assert!(!line.contains(",}"), "trailing comma in {name}");
        assert!(!line.contains(",]"), "trailing comma in {name}");
    }
}

/// The fingerprint embedded in fleet JSON is itself part of the contract:
/// identical payloads serialize to identical fingerprints across runs.
#[test]
fn fleet_json_fingerprints_are_reproducible() {
    let a = populated_fleet_report().to_json();
    let b = populated_fleet_report().to_json();
    assert_eq!(a, b);
}

/// Canonical alasm listings are a contract with the same shape: the
/// disassembler's directive ordering, comment text, value formatting, and
/// alobs span cross-references feed saved program files and triage
/// workflows, so drift must be deliberate. Each fixture must also
/// assemble back to the exact bits it was disassembled from (the codec's
/// round-trip guarantee, pinned here on committed artifacts).
#[test]
fn disassembled_listings_match_golden() {
    use alrescha::convert::{convert, KernelType};
    use alrescha::ProgramBinary;
    use alrescha_asm::{assemble_text, disassemble};

    let coo = alrescha_sparse::gen::stencil27(2);
    for (name, kernel, omega) in [
        ("listings/stencil27_spmv_w4.alasm", KernelType::SpMv, 4),
        ("listings/stencil27_symgs_w4.alasm", KernelType::SymGs, 4),
    ] {
        let (alf, table) = convert(kernel, &coo, omega).expect("convert");
        let binary = ProgramBinary::encode(kernel, &table, coo.rows().max(coo.cols()), omega);
        let text = disassemble(kernel, &table, &alf);
        assert_golden(name, text.trim_end());
        let asm = assemble_text(&text).expect("golden listing must assemble");
        assert_eq!(
            asm.binary.as_bytes(),
            binary.as_bytes(),
            "{name}: reassembly must be bit-identical"
        );
        assert_eq!(asm.alf, alf, "{name}: payload must survive the round-trip");
    }

    // One generator-produced listing pins the differential fuzzer's
    // canonical text form (including its converter-unreachable schedule).
    let generated = alrescha_asm::genprog::generate(42);
    assert_golden("listings/genprog_seed42.alasm", generated.text.trim_end());
    let asm = assemble_text(&generated.text).expect("generated listing must assemble");
    assert_eq!(asm.alf.omega(), generated.omega);
}

/// The deterministic slice of the telemetry metrics registry is an external
/// contract too: metric names, types, histogram bucket bounds, and number
/// formatting feed dashboards and the `alobs` summarizer. A fixed sequential
/// workload (SpMV + PCG over one stencil) must reproduce the fixture bit for
/// bit; regenerate with `UPDATE_GOLDEN=1` after an intentional change.
#[test]
fn metrics_snapshot_matches_fixture() {
    use std::sync::Arc;

    use alrescha::fleet::{Fleet, FleetConfig, JobKernel, JobSpec};
    use alrescha::SolverOptions;

    let tele = alrescha_obs::Telemetry::new();
    let a = alrescha_sparse::gen::stencil27(3);
    let x: Vec<f64> = (0..a.cols()).map(|i| 1.0 + (i % 5) as f64 / 3.0).collect();
    let b = vec![1.0; a.rows()];
    let jobs = vec![
        JobSpec::new(a.clone(), JobKernel::SpMv { x: x.clone() }),
        JobSpec::new(a.clone(), JobKernel::SpMv { x }),
        JobSpec::new(
            a,
            JobKernel::Pcg {
                b,
                opts: SolverOptions {
                    tol: 1e-8,
                    max_iters: 50,
                },
            },
        ),
    ];
    let fleet = Fleet::new(FleetConfig::default())
        .with_preflight(alrescha_lint::fleet_preflight_hook_with_telemetry(
            Arc::clone(&tele),
        ))
        .with_telemetry(Arc::clone(&tele));
    let batch = fleet.run_sequential(jobs);
    assert_eq!(batch.stats.failed, 0);
    assert_golden("metrics_snapshot.json", &tele.metrics().deterministic_json());
}
