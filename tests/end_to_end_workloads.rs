//! Scenario tests: the workloads a downstream adopter would actually run,
//! end to end on the device, across every dataset class.

use alrescha::{AcceleratedPcg, Alrescha, KernelType, SolverOptions, TerminationReason};
use alrescha_kernels::graph;
use alrescha_lint::Preflight;
use alrescha_kernels::pcg::{pcg as pcg_host, PcgOptions};
use alrescha_kernels::spmv::spmv;
use alrescha_sim::PageRankConfig;
use alrescha_sparse::{approx_eq, gen, Csr, MetaData};

#[test]
fn pcg_on_every_science_class_end_to_end() {
    for class in gen::ScienceClass::ALL {
        let coo = class.generate(220, 41);
        let csr = Csr::from_coo(&coo);
        let x_true: Vec<f64> = (0..coo.rows())
            .map(|i| ((i % 8) as f64) * 0.25 - 1.0)
            .collect();
        let b = spmv(&csr, &x_true);

        let mut acc = Alrescha::with_paper_config();
        // Static verification first: the solve must start from a program
        // with zero error-severity diagnostics.
        let checked = acc.program(KernelType::SymGs, &coo).expect("program");
        let diags = acc.preflight(&checked).expect("preflight refused a shipped class");
        assert!(
            diags.iter().all(|d| d.severity != alrescha_lint::Severity::Error),
            "{}: {diags:?}",
            class.name()
        );
        let solver = AcceleratedPcg::program(&mut acc, &coo).expect("program");
        let out = solver
            .solve(
                &mut acc,
                &b,
                &SolverOptions {
                    tol: 1e-8,
                    max_iters: 300,
                },
            )
            .expect("solve");
        assert!(out.converged, "{} did not converge", class.name());
        assert_eq!(out.reason, TerminationReason::Converged, "{}", class.name());
        assert!(
            approx_eq(&out.x, &x_true, 1e-4),
            "{} wrong solution",
            class.name()
        );

        // Device trajectory equals the host oracle's.
        let host = pcg_host(
            &csr,
            &b,
            &PcgOptions {
                tol: 1e-8,
                max_iters: 300,
                ..Default::default()
            },
        )
        .expect("host pcg");
        assert!(
            (out.iterations as i64 - host.iterations as i64).abs() <= 1,
            "{}: device {} host {}",
            class.name(),
            out.iterations,
            host.iterations
        );
    }
}

#[test]
fn graph_suite_runs_all_kernels_on_table3_analogs() {
    // Two representative Table 3 analogs at test scale: the densest and the
    // sparsest ends of the degree spectrum.
    for (name, coo) in [
        ("kron-like", gen::rmat(256, 16, 77)),
        ("road-like", gen::road_grid(16)),
    ] {
        let csr = Csr::from_coo(&coo);
        let mut acc = Alrescha::with_paper_config();

        let prog = acc.program(KernelType::Bfs, &coo).expect("program");
        acc.preflight(&prog).expect("bfs preflight");
        let (levels, _) = acc.bfs(&prog, 0).expect("bfs");
        assert_eq!(levels, graph::bfs(&csr, 0).expect("ref"), "{name}");

        let prog = acc.program(KernelType::Sssp, &coo).expect("program");
        acc.preflight(&prog).expect("sssp preflight");
        let (dist, _) = acc.sssp(&prog, 0).expect("sssp");
        let expect = graph::sssp(&csr, 0).expect("ref");
        assert!(
            dist.iter()
                .zip(&expect)
                .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9),
            "{name}"
        );

        let prog = acc.program(KernelType::PageRank, &coo).expect("program");
        acc.preflight(&prog).expect("pagerank preflight");
        let (ranks, _) = acc
            .pagerank(
                &prog,
                &PageRankConfig {
                    tol: 1e-8,
                    ..Default::default()
                },
            )
            .expect("pr");
        assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-6, "{name}");

        let prog = acc
            .program(KernelType::ConnectedComponents, &coo)
            .expect("program");
        acc.preflight(&prog).expect("cc preflight");
        let (labels, _) = acc.connected_components(&prog).expect("cc");
        assert_eq!(
            labels,
            graph::connected_components(&csr).expect("ref"),
            "{name}"
        );
    }
}

#[test]
fn ssor_preconditioned_device_pcg_via_closure() {
    // Host PCG with the preconditioner application running on the device —
    // the hybrid integration pcg_with enables.
    let coo = gen::stencil27(3);
    let csr = Csr::from_coo(&coo);
    let x_true: Vec<f64> = (0..coo.rows()).map(|i| (i as f64 * 0.21).sin()).collect();
    let b = spmv(&csr, &x_true);

    let mut acc = Alrescha::with_paper_config();
    let prog = acc.program(KernelType::SymGs, &coo).expect("program");
    acc.preflight(&prog).expect("ssor preflight");
    let sol = alrescha_kernels::pcg::pcg_with(&csr, &b, 1e-9, 200, |_, r| {
        let mut z = vec![0.0; r.len()];
        acc.ssor(&prog, r, &mut z, 1.0).map_err(|_| {
            alrescha_kernels::KernelError::NoConvergence {
                iterations: 0,
                residual: f64::NAN,
            }
        })?;
        Ok(z)
    })
    .expect("hybrid pcg");
    assert!(sol.converged);
    assert!(approx_eq(&sol.x, &x_true, 1e-6));
}

#[test]
fn starved_iteration_budget_reports_budget_exhausted() {
    // An adopter that under-budgets a hard system gets a truthful outcome:
    // not converged, reason BudgetExhausted, and the partial iterate is the
    // same one a host PCG reaches after the same number of iterations.
    let coo = gen::stencil27(3);
    let csr = Csr::from_coo(&coo);
    let b = spmv(&csr, &vec![1.0; coo.cols()]);

    let mut acc = Alrescha::with_paper_config();
    let checked = acc.program(KernelType::SymGs, &coo).expect("program");
    acc.preflight(&checked).expect("preflight");
    let solver = AcceleratedPcg::program(&mut acc, &coo).expect("program");
    let out = solver
        .solve(
            &mut acc,
            &b,
            &SolverOptions {
                tol: 1e-12,
                max_iters: 3,
            },
        )
        .expect("a starved budget is not an error");
    assert!(!out.converged);
    assert_eq!(out.reason, TerminationReason::BudgetExhausted);
    assert_eq!(out.iterations, 3);
    assert!(out.residual.is_finite());

    let host = pcg_host(
        &csr,
        &b,
        &PcgOptions {
            tol: 1e-12,
            max_iters: 3,
            ..Default::default()
        },
    )
    .expect("host pcg");
    assert!(approx_eq(&out.x, &host.x, 1e-9));
}

#[test]
fn dataset_scaling_is_monotone_in_device_time() {
    // Bigger instances of the same class must take longer on the device.
    let mut prev_seconds = 0.0;
    for side in [4usize, 6, 8] {
        let coo = gen::stencil27(side);
        let mut acc = Alrescha::with_paper_config();
        let prog = acc.program(KernelType::SpMv, &coo).expect("program");
        acc.preflight(&prog).expect("spmv preflight");
        let x = vec![1.0; coo.cols()];
        let (_, report) = acc.spmv(&prog, &x).expect("run");
        assert!(
            report.seconds > prev_seconds,
            "side {side}: {} !> {prev_seconds}",
            report.seconds
        );
        prev_seconds = report.seconds;
        assert!(coo.nnz() > 0);
    }
}
