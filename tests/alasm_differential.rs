//! alasm differential-fuzz tier: seeded programs generated in **text
//! space**, assembled, then executed twice — once on the cycle-accurate
//! engine and once on the straight-line reference interpreter — with
//! bit-identical results required.
//!
//! The generator ([`alrescha_asm::genprog`]) deliberately emits schedules
//! Algorithm 1 would never produce: off-diagonal blocks reordered within
//! their block row, padding-heavy blocks, padded tails, and mixed
//! SpMV/SymGS kernels across seeds — all inside the AL0xx–AL4xx legality
//! envelope, which each program is gated through before execution.
//!
//! Per seed:
//!
//! 1. generate a listing, parse + assemble it (AL5xx-clean);
//! 2. run the full alverify preflight — zero error diagnostics;
//! 3. execute engine and reference interpreter; every output value must
//!    match **bit for bit**;
//! 4. cross-check the engine's cycle report against schedule-derived
//!    invariants (breakdown totals, block counts, buffer peaks).
//!
//! Knobs, in the house alchaos style:
//!
//! * `ALASM_SEED=<n>` runs exactly that seed — the repro knob printed
//!   when a seed fails;
//! * `ALASM_SEEDS=<count>` sets the matrix width (CI uses 256);
//! * unset, a smaller default keeps `cargo test` quick.

use std::panic::{self, AssertUnwindSafe};

use alrescha::convert::KernelType;
use alrescha_asm::genprog::{generate, GeneratedProgram};
use alrescha_asm::interp::{spmv_reference, symgs_reference};
use alrescha_asm::{assemble_text, AssembledProgram};
use alrescha_sim::{Engine, SimConfig};
use alrescha_sparse::BlockKind;

/// Base offset so alasm fuzz seeds are recognizable in logs.
const SEED_BASE: u64 = 0xA5A5_0000;

/// The seed matrix: `ALASM_SEED` pins one seed, `ALASM_SEEDS` widens the
/// matrix (CI passes 256), otherwise `default_count` seeds run.
fn seed_matrix(default_count: u64) -> Vec<u64> {
    if let Ok(pinned) = std::env::var("ALASM_SEED") {
        let seed = pinned
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("ALASM_SEED must be a u64, got {pinned:?}"));
        return vec![seed];
    }
    let count = std::env::var("ALASM_SEEDS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(default_count);
    (0..count).map(|i| SEED_BASE + i).collect()
}

/// Runs `body` for every seed in the matrix; a failing seed prints a
/// copy-pasteable repro line (and the offending listing) before
/// propagating the panic.
fn for_each_seed(test: &str, default_count: u64, body: impl Fn(u64)) {
    let seeds = seed_matrix(default_count);
    for &seed in &seeds {
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(seed))) {
            eprintln!(
                "\nalasm seed {seed} failed; reproduce with:\n  \
                 ALASM_SEED={seed} cargo test --release --test alasm_differential {test} -- --nocapture\n"
            );
            eprintln!("--- listing for seed {seed} ---\n{}", generate(seed).text);
            panic::resume_unwind(payload);
        }
    }
}

/// Coverage assertions only make sense over a real matrix, not a pinned
/// single-seed repro run.
fn full_matrix() -> bool {
    std::env::var("ALASM_SEED").is_err()
}

/// Generate → assemble → preflight-gate one seed's program.
fn assembled(seed: u64) -> (GeneratedProgram, AssembledProgram) {
    let p = generate(seed);
    let asm = assemble_text(&p.text)
        .unwrap_or_else(|e| panic!("seed {seed}: generated listing rejected by assembler:\n{e}"));
    let config = SimConfig::paper().with_omega(p.omega);
    let diags = alrescha_lint::verify(&asm.binary, &asm.alf, &config);
    let errors = alrescha_lint::count(&diags, alrescha_lint::Severity::Error);
    assert_eq!(
        errors,
        0,
        "seed {seed}: assembled program fails preflight:\n{}",
        alrescha_lint::render_text(&diags)
    );
    (p, asm)
}

fn assert_bits_equal(what: &str, engine: &[f64], reference: &[f64]) {
    assert_eq!(engine.len(), reference.len(), "{what}: length mismatch");
    for (i, (e, r)) in engine.iter().zip(reference).enumerate() {
        assert!(
            e.to_bits() == r.to_bits(),
            "{what}[{i}]: engine {e:?} ({:#018x}) != reference {r:?} ({:#018x})",
            e.to_bits(),
            r.to_bits()
        );
    }
}

#[test]
fn engine_matches_reference_interpreter_bit_for_bit() {
    for_each_seed("engine_matches_reference_interpreter_bit_for_bit", 64, |seed| {
        let (p, asm) = assembled(seed);
        let mut engine = Engine::new(SimConfig::paper().with_omega(p.omega));
        match p.kernel {
            KernelType::SpMv => {
                let (y_engine, report) = engine
                    .run_spmv(&asm.alf, &p.x)
                    .unwrap_or_else(|e| panic!("seed {seed}: engine rejected SpMV: {e}"));
                let y_ref = spmv_reference(&asm.alf, &p.x)
                    .unwrap_or_else(|e| panic!("seed {seed}: reference rejected SpMV: {e}"));
                assert_bits_equal("y", &y_engine, &y_ref);
                // Cycle-report consistency against the schedule.
                assert_eq!(report.cycles, report.breakdown.total(), "seed {seed}");
                assert_eq!(
                    report.datapaths.gemv_blocks,
                    asm.alf.blocks().len() as u64,
                    "seed {seed}: one GEMV execution per streamed block"
                );
                assert_eq!(report.datapaths.dsymgs_blocks, 0, "seed {seed}");
            }
            KernelType::SymGs => {
                let mut x_engine = p.x.clone();
                let mut x_ref = p.x.clone();
                let report = engine
                    .run_symgs(&asm.alf, &p.b, &mut x_engine)
                    .unwrap_or_else(|e| panic!("seed {seed}: engine rejected SymGS: {e}"));
                symgs_reference(&asm.alf, &p.b, &mut x_ref)
                    .unwrap_or_else(|e| panic!("seed {seed}: reference rejected SymGS: {e}"));
                assert_bits_equal("x", &x_engine, &x_ref);

                // Cycle-report consistency: the merged forward+backward
                // report executes every block twice.
                assert_eq!(report.cycles, report.breakdown.total(), "seed {seed}");
                assert_eq!(report.datapaths.iterations, 1, "seed {seed}");
                let offdiag = asm
                    .alf
                    .blocks()
                    .iter()
                    .filter(|b| b.kind() == BlockKind::OffDiagonal)
                    .count() as u64;
                let diag_rows = asm
                    .alf
                    .blocks()
                    .iter()
                    .filter(|b| b.kind() == BlockKind::Diagonal)
                    .count() as u64;
                assert_eq!(
                    report.datapaths.gemv_blocks,
                    2 * offdiag,
                    "seed {seed}: two sweeps over each off-diagonal block"
                );
                assert_eq!(
                    report.datapaths.dsymgs_blocks,
                    2 * diag_rows,
                    "seed {seed}: two sweeps over each diagonal block"
                );
                // Link-stack peak: the widest block row's GEMV results
                // (ω entries per off-diagonal block) are all in flight.
                let mut per_row = vec![0u64; asm.alf.block_rows()];
                for b in asm.alf.blocks() {
                    if b.kind() == BlockKind::OffDiagonal {
                        per_row[b.block_row()] += p.omega as u64;
                    }
                }
                let widest = per_row.iter().copied().max().unwrap_or(0);
                assert_eq!(
                    report.datapaths.link_stack_peak, widest,
                    "seed {seed}: link-stack peak must equal the widest row's GEMV burst"
                );
                // Operand FIFOs fill one slot per valid lane; the first
                // block row always has ω valid rows.
                assert_eq!(
                    report.datapaths.operand_fifo_peak,
                    p.omega.min(p.n) as u64,
                    "seed {seed}: operand FIFO peak"
                );
            }
            other => panic!("seed {seed}: generator emitted unexpected kernel {other:?}"),
        }
    });
}

#[test]
fn seed_matrix_covers_the_advertised_program_space() {
    if !full_matrix() {
        return;
    }
    let mut kernels = std::collections::HashSet::new();
    let mut omegas = std::collections::HashSet::new();
    let mut padded_tail = false;
    let mut shuffled_row = false;
    for &seed in &seed_matrix(64) {
        let (p, asm) = assembled(seed);
        kernels.insert(p.kernel);
        omegas.insert(p.omega);
        padded_tail |= p.n % p.omega != 0;
        // A block row whose off-diagonal columns are out of ascending
        // order is a schedule Algorithm 1 cannot emit.
        let mut last: Option<(usize, usize)> = None;
        for b in asm.alf.blocks() {
            if b.kind() == BlockKind::OffDiagonal {
                if let Some((lr, lc)) = last {
                    if lr == b.block_row() && b.block_col() < lc {
                        shuffled_row = true;
                    }
                }
                last = Some((b.block_row(), b.block_col()));
            } else {
                last = None;
            }
        }
    }
    assert_eq!(kernels.len(), 2, "matrix must mix SpMV and SymGS");
    assert!(omegas.len() >= 2, "matrix must vary ω, saw {omegas:?}");
    assert!(padded_tail, "matrix must include a padded tail");
    assert!(
        shuffled_row,
        "matrix must include a converter-unreachable shuffled schedule"
    );
}

#[test]
fn canonical_listing_round_trips_for_every_seed() {
    for_each_seed("canonical_listing_round_trips_for_every_seed", 32, |seed| {
        use alrescha_asm::syntax::token_stream;
        let (_, asm) = assembled(seed);
        let text = alrescha_asm::disassemble(asm.kernel, &asm.table, &asm.alf);
        let again = assemble_text(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: canonical listing rejected:\n{e}"));
        assert_eq!(
            again.binary.as_bytes(),
            asm.binary.as_bytes(),
            "seed {seed}: program bits diverged across text round-trip"
        );
        assert_eq!(again.alf, asm.alf, "seed {seed}: payload diverged");
        let text2 = alrescha_asm::disassemble(again.kernel, &again.table, &again.alf);
        assert_eq!(
            token_stream(&text),
            token_stream(&text2),
            "seed {seed}: token stream diverged"
        );
    });
}
