//! Differential correctness for the alprove abstract interpreter: on
//! every generator class and kernel, the static bounds must *dominate*
//! the engine's fault-free dynamic counts (soundness) while staying
//! within a pinned tightness ratio (usefulness), and injected violations
//! — an overdeep link-stack schedule, a reordered sweep — must always be
//! caught.

use alrescha::convert::{ConfigTable, DataPath};
use alrescha::fleet::{Fleet, FleetConfig, JobKernel, JobSpec};
use alrescha::{Alrescha, ExecBudget, KernelType};
use alrescha_lint::{analyze_programmed, analyze_table, fleet_admission_hook, Analysis};
use alrescha_sim::{ExecutionReport, PageRankConfig, SimConfig};
use alrescha_sparse::gen;
use proptest::prelude::*;

/// The pinned tightness ratio: the AL404 bound may not exceed twice the
/// engine's dynamic count on any fault-free run (at the paper
/// configuration the bound is exact, so this has slack for future cost
/// remodeling without ever letting the bound drift into uselessness).
const TIGHTNESS: u64 = 2;

fn assert_dominates(analysis: &Analysis, report: &ExecutionReport, what: &str) {
    let rounds = report.datapaths.iterations.max(1);
    let bound = analysis.cycle_bound.total_bound(rounds);
    assert!(
        bound >= report.cycles,
        "{what}: AL404 bound {bound} under-approximates engine cycles {}",
        report.cycles
    );
    assert!(
        bound <= TIGHTNESS * report.cycles,
        "{what}: AL404 bound {bound} exceeds {TIGHTNESS}x engine cycles {}",
        report.cycles
    );
    assert!(
        analysis.link_stack_bound >= report.datapaths.link_stack_peak,
        "{what}: AL401 bound {} under-approximates link-stack peak {}",
        analysis.link_stack_bound,
        report.datapaths.link_stack_peak
    );
    assert!(
        analysis.operand_fifo_bound >= report.datapaths.operand_fifo_peak,
        "{what}: AL402 bound {} under-approximates operand-FIFO peak {}",
        analysis.operand_fifo_bound,
        report.datapaths.operand_fifo_peak
    );
}

#[test]
fn spmv_bound_dominates_engine_on_every_class() {
    let mut acc = Alrescha::with_paper_config();
    for class in gen::ScienceClass::ALL {
        let coo = class.generate(300, 11);
        let x: Vec<f64> = (0..coo.cols()).map(|i| (i as f64 * 0.13).sin()).collect();
        let prog = acc.program(KernelType::SpMv, &coo).expect("program");
        let analysis = analyze_programmed(&prog, acc.config());
        let (_, report) = acc.spmv(&prog, &x).expect("run");
        assert_dominates(&analysis, &report, class.name());
        acc.reset();
    }
}

#[test]
fn symgs_bound_dominates_engine_on_every_class() {
    let mut acc = Alrescha::with_paper_config();
    for class in gen::ScienceClass::ALL {
        let coo = class.generate(300, 13);
        let b: Vec<f64> = (0..coo.rows()).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let prog = acc.program(KernelType::SymGs, &coo).expect("program");
        let analysis = analyze_programmed(&prog, acc.config());
        let mut x = vec![0.0; coo.cols()];
        let report = acc.symgs(&prog, &b, &mut x).expect("run");
        // The merged forward+backward report keeps iterations = 1; the
        // bound's runs_per_application = 2 covers both sweeps.
        assert_dominates(&analysis, &report, class.name());
        acc.reset();
    }
}

#[test]
fn graph_bounds_dominate_engine_on_every_class() {
    let mut acc = Alrescha::with_paper_config();
    for class in gen::GraphClass::ALL {
        let coo = class.generate(256, 11);

        let prog = acc.program(KernelType::Bfs, &coo).expect("program bfs");
        let analysis = analyze_programmed(&prog, acc.config());
        let (_, report) = acc.bfs(&prog, 0).expect("bfs");
        assert_dominates(&analysis, &report, &format!("bfs/{}", class.name()));
        acc.reset();

        let prog = acc.program(KernelType::Sssp, &coo).expect("program sssp");
        let analysis = analyze_programmed(&prog, acc.config());
        let (_, report) = acc.sssp(&prog, 0).expect("sssp");
        assert_dominates(&analysis, &report, &format!("sssp/{}", class.name()));
        acc.reset();

        let prog = acc
            .program(KernelType::ConnectedComponents, &coo)
            .expect("program cc");
        let analysis = analyze_programmed(&prog, acc.config());
        let (_, report) = acc.connected_components(&prog).expect("cc");
        assert_dominates(&analysis, &report, &format!("cc/{}", class.name()));
        acc.reset();
    }
}

#[test]
fn pagerank_bound_dominates_engine() {
    let mut acc = Alrescha::with_paper_config();
    for class in gen::GraphClass::ALL {
        let coo = class.generate(256, 17);
        let prog = acc.program(KernelType::PageRank, &coo).expect("program");
        let analysis = analyze_programmed(&prog, acc.config());
        // PageRank's round count lives in runtime options, not the
        // program, so the bound is per-iteration (rounds_cap = None).
        assert_eq!(analysis.cycle_bound.rounds_cap, None);
        let opts = PageRankConfig {
            max_iters: 200,
            ..PageRankConfig::default()
        };
        let (_, report) = acc.pagerank(&prog, &opts).expect("pagerank");
        assert_dominates(&analysis, &report, class.name());
        acc.reset();
    }
}

/// The static round cap for the min-plus kernels must dominate the
/// engine's worst observed round count (the engine breaks once `rounds`
/// passes n, so the cap is n + 1).
#[test]
fn graph_round_caps_dominate_observed_rounds() {
    let mut acc = Alrescha::with_paper_config();
    // A path graph maximizes BFS rounds: the frontier advances one hop
    // per round.
    let coo = gen::road_grid(16);
    let prog = acc.program(KernelType::Bfs, &coo).expect("program");
    let analysis = analyze_programmed(&prog, acc.config());
    let (_, report) = acc.bfs(&prog, 0).expect("bfs");
    let cap = analysis.cycle_bound.rounds_cap.expect("bfs cap is static");
    assert!(cap >= report.datapaths.iterations);
    assert!(
        analysis.cycle_bound.static_total().expect("static") >= report.cycles,
        "fully static bound must dominate even without knowing the rounds"
    );
}

/// End to end through the batch runtime: the admission hook rejects a job
/// whose AL404 bound exceeds its cycle budget with a typed
/// `CoreError::Admission`, before the engine runs; the same job under an
/// open budget is accepted and completes.
#[test]
fn fleet_admission_hook_rejects_over_budget_jobs() {
    let coo = gen::stencil27(3);
    let x: Vec<f64> = (0..coo.cols()).map(|i| 1.0 + i as f64 * 0.01).collect();
    let fleet = Fleet::new(FleetConfig::default().with_workers(1))
        .with_admission(fleet_admission_hook());

    let starved = JobSpec::new(coo.clone(), JobKernel::SpMv { x: x.clone() }).with_budget(
        ExecBudget {
            max_cycles: Some(10),
            ..ExecBudget::none()
        },
    );
    let report = fleet.run_sequential(vec![starved]);
    match &report.jobs[0].result {
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("admission") && msg.contains("AL404"),
                "expected a typed AL404 admission rejection, got: {msg}"
            );
        }
        Ok(_) => panic!("a 10-cycle budget must be statically rejected"),
    }

    let open = JobSpec::new(coo, JobKernel::SpMv { x });
    let report = fleet.run_sequential(vec![open]);
    assert!(report.jobs[0].result.is_ok(), "open budget must be admitted");
}

/// The admission hook also refuses programs whose *resource* proof fails
/// (AL401): a schedule the analysis proves to wedge the link stack is
/// rejected regardless of the cycle budget.
#[test]
fn fleet_admission_hook_rejects_overdeep_link_stack() {
    // ~100 scattered off-diagonals per row at ω = 8 proves a 248-entry
    // link-stack peak against the 128-entry LIFO.
    let coo = gen::scattered(256, 100, 5);
    let b: Vec<f64> = vec![1.0; coo.rows()];
    let x0 = vec![0.0; coo.cols()];
    let fleet = Fleet::new(FleetConfig::default().with_workers(1))
        .with_admission(fleet_admission_hook());
    let spec = JobSpec::new(coo, JobKernel::SymGs { b, x0 });
    let report = fleet.run_sequential(vec![spec]);
    match &report.jobs[0].result {
        Err(e) => assert!(
            e.to_string().contains("AL401"),
            "expected AL401 in: {e}"
        ),
        Ok(_) => panic!("overdeep schedule must be rejected at admission"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Injected violation: any non-identity permutation of the D-SymGS
    /// entries breaks the strictly-ascending sweep order, and the
    /// analyzer must always catch it (AL403 — or AL405 when the swap
    /// lands two entries on the same produced row).
    #[test]
    fn reordered_sweeps_are_always_caught(side in 3usize..6, a in 0usize..16, b in 0usize..16) {
        let coo = gen::stencil27(side);
        let (alf, table) = alrescha::convert::convert(KernelType::SymGs, &coo, 8).expect("convert");
        let mut entries = table.entries().to_vec();
        let diag_idx: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.data_path == DataPath::DSymGs)
            .map(|(i, _)| i)
            .collect();
        let (i, j) = (diag_idx[a % diag_idx.len()], diag_idx[b % diag_idx.len()]);
        prop_assume!(i != j);
        entries.swap(i, j);
        let doctored = ConfigTable::from_entries(entries, table.entry_bits());
        let out = analyze_table(KernelType::SymGs, &doctored, &alf, &SimConfig::paper());
        prop_assert!(
            out.diagnostics.iter().any(|d| d.code == "AL403" || d.code == "AL405"),
            "swap ({i}, {j}) must be caught"
        );
    }

    /// Injected violation: random scattered matrices — the analyzer's
    /// AL401 verdict must agree with the exact schedule shape, and the
    /// over-capacity ones must always be errors.
    #[test]
    fn overdeep_stacks_are_always_caught(n in 64usize..320, per_row in 40usize..120, seed in 0u64..64) {
        let coo = gen::scattered(n, per_row, seed);
        let cfg = SimConfig::paper();
        let (alf, table) = alrescha::convert::convert(KernelType::SymGs, &coo, cfg.omega).expect("convert");
        let out = analyze_table(KernelType::SymGs, &table, &alf, &cfg);
        let peak = (cfg.omega as u64) * alf.max_off_diagonal_blocks_per_row() as u64;
        prop_assert_eq!(out.link_stack_bound, peak);
        prop_assert_eq!(
            out.diagnostics.iter().any(|d| d.code == "AL401"),
            peak > cfg.link_stack_capacity() as u64,
            "AL401 must fire exactly when the proved peak exceeds capacity"
        );
    }
}
