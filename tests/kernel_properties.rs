//! Property-based tests on kernel invariants: the SymGS decomposition is
//! exact, solvers converge on diagonally dominant systems, and the graph
//! kernels obey their mathematical contracts.

use proptest::prelude::*;

use alrescha::{Alrescha, KernelType};
use alrescha_kernels::{graph, spmv, symgs};
use alrescha_sparse::{approx_eq, Coo, Csr};

/// Strategy: a strictly diagonally dominant SPD-style matrix up to 24x24.
fn arb_dd_matrix() -> impl Strategy<Value = Coo> {
    (2usize..24).prop_flat_map(|n| {
        let entry = (0..n, 0..n, 1i32..50);
        proptest::collection::vec(entry, 0..60).prop_map(move |entries| {
            let mut coo = Coo::new(n, n);
            let mut row_sum = vec![0.0; n];
            for (r, c, v) in entries {
                if r != c {
                    let v = -f64::from(v) / 50.0;
                    coo.push(r, c, v);
                    coo.push(c, r, v);
                    row_sum[r] += v.abs();
                    row_sum[c] += v.abs();
                }
            }
            for (i, s) in row_sum.iter().enumerate() {
                coo.push(i, i, s + 1.0);
            }
            coo.compress()
        })
    })
}

/// Strategy: a small directed weighted graph.
fn arb_graph() -> impl Strategy<Value = Coo> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 1i32..100);
        proptest::collection::vec(edge, 0..80).prop_map(move |edges| {
            let mut coo = Coo::new(n, n);
            for (u, v, w) in edges {
                if u != v {
                    coo.push(u, v, f64::from(w) / 10.0);
                }
            }
            coo.compress()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_symgs_equals_row_symgs(coo in arb_dd_matrix(), omega in 1usize..6) {
        // The heart of the paper: Algorithm 1's GEMV/D-SymGS decomposition
        // and reordering is mathematically exact (distributivity of the
        // inner product). The simulator executes the blocked order; the
        // reference executes the row order; results must agree.
        let omega = 1 << omega; // 2..32 lanes
        let csr = Csr::from_coo(&coo);
        let b: Vec<f64> = (0..coo.rows()).map(|i| (i as f64 * 0.3).sin()).collect();

        let mut acc = Alrescha::new(alrescha_sim::SimConfig::paper().with_omega(omega));
        let prog = acc.program(KernelType::SymGs, &coo).expect("dd matrix programs");
        let mut x_dev = vec![0.0; coo.cols()];
        acc.symgs(&prog, &b, &mut x_dev).expect("device symgs");

        let mut x_ref = vec![0.0; coo.cols()];
        symgs::symgs(&csr, &b, &mut x_ref).expect("reference symgs");
        prop_assert!(approx_eq(&x_dev, &x_ref, 1e-9));
    }

    #[test]
    fn symgs_iteration_is_a_contraction(coo in arb_dd_matrix()) {
        // On strictly diagonally dominant systems Gauss-Seidel converges:
        // the residual after a sweep is no larger than before (up to fp).
        let csr = Csr::from_coo(&coo);
        let x_true: Vec<f64> = (0..coo.rows()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let b = spmv::spmv(&csr, &x_true);
        let mut x = vec![0.0; coo.cols()];
        let r0 = alrescha_kernels::norm2(&symgs::residual(&csr, &b, &x));
        symgs::symgs(&csr, &b, &mut x).expect("sweep");
        let r1 = alrescha_kernels::norm2(&symgs::residual(&csr, &b, &x));
        prop_assert!(r1 <= r0 * (1.0 + 1e-9), "r0 {r0} r1 {r1}");
    }

    #[test]
    fn pcg_solves_dd_systems(coo in arb_dd_matrix()) {
        let csr = Csr::from_coo(&coo);
        let x_true: Vec<f64> = (0..coo.rows()).map(|i| 1.0 + (i as f64 * 0.2).cos()).collect();
        let b = spmv::spmv(&csr, &x_true);
        let sol = alrescha_kernels::pcg::pcg(
            &csr,
            &b,
            &alrescha_kernels::pcg::PcgOptions::default(),
        ).expect("pcg runs");
        prop_assert!(sol.converged);
        prop_assert!(approx_eq(&sol.x, &x_true, 1e-5));
    }

    #[test]
    fn bfs_levels_respect_edges(g in arb_graph()) {
        // Contract: along every edge u->v, level(v) <= level(u) + 1.
        let csr = Csr::from_coo(&g);
        let levels = graph::bfs(&csr, 0).expect("bfs");
        prop_assert_eq!(levels[0], 0.0);
        for u in 0..csr.rows() {
            if levels[u].is_finite() {
                for (v, _) in csr.row_entries(u) {
                    prop_assert!(levels[v] <= levels[u] + 1.0);
                }
            }
        }
    }

    #[test]
    fn sssp_satisfies_triangle_inequality(g in arb_graph()) {
        // Contract: dist(v) <= dist(u) + w(u, v) for every edge, and
        // dist(source) = 0.
        let csr = Csr::from_coo(&g);
        let dist = graph::sssp(&csr, 0).expect("sssp");
        prop_assert_eq!(dist[0], 0.0);
        for u in 0..csr.rows() {
            if dist[u].is_finite() {
                for (v, w) in csr.row_entries(u) {
                    prop_assert!(dist[v] <= dist[u] + w + 1e-9);
                }
            }
        }
    }

    #[test]
    fn pagerank_is_a_distribution(g in arb_graph()) {
        let csr = Csr::from_coo(&g);
        let (ranks, _) = graph::pagerank(&csr, &graph::PageRankOptions::default())
            .expect("pagerank");
        let total: f64 = ranks.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sum {total}");
        prop_assert!(ranks.iter().all(|r| *r >= 0.0));
    }

    #[test]
    fn spmv_is_linear(coo in arb_dd_matrix(), alpha in -4.0f64..4.0) {
        // A(alpha x + y) = alpha A x + A y.
        let csr = Csr::from_coo(&coo);
        let n = coo.cols();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5).cos()).collect();
        let combined: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
        let lhs = spmv::spmv(&csr, &combined);
        let ax = spmv::spmv(&csr, &x);
        let ay = spmv::spmv(&csr, &y);
        let rhs: Vec<f64> = ax.iter().zip(&ay).map(|(a, b)| alpha * a + b).collect();
        prop_assert!(approx_eq(&lhs, &rhs, 1e-9));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn device_ssor_equals_reference_for_arbitrary_systems(
        coo in arb_dd_matrix(),
        relax_pct in 40u32..160,
    ) {
        let omega_relax = f64::from(relax_pct) / 100.0;
        let csr = Csr::from_coo(&coo);
        let b: Vec<f64> = (0..coo.rows()).map(|i| (i as f64 * 0.23).cos()).collect();

        let mut acc = Alrescha::with_paper_config();
        let prog = acc.program(KernelType::SymGs, &coo).expect("dd matrix");
        let mut x_dev = vec![0.0; coo.cols()];
        acc.ssor(&prog, &b, &mut x_dev, omega_relax).expect("device ssor");

        let mut x_ref = vec![0.0; coo.cols()];
        alrescha_kernels::smoothers::ssor(&csr, &b, &mut x_ref, omega_relax)
            .expect("reference ssor");
        prop_assert!(approx_eq(&x_dev, &x_ref, 1e-9));
    }

    #[test]
    fn device_cc_equals_reference_for_arbitrary_graphs(
        edges in proptest::collection::vec((0usize..24, 0usize..24), 0..60)
    ) {
        let mut coo = alrescha_sparse::Coo::new(24, 24);
        for (u, v) in edges {
            if u != v {
                coo.push(u, v, 1.0);
            }
        }
        let coo = coo.compress();
        let csr = Csr::from_coo(&coo);
        let mut acc = Alrescha::with_paper_config();
        let prog = acc
            .program(KernelType::ConnectedComponents, &coo)
            .expect("program");
        let (labels, _) = acc.connected_components(&prog).expect("run");
        let expect = graph::connected_components(&csr).expect("reference");
        prop_assert_eq!(labels, expect);
    }
}
