//! Cross-crate integration tests: the cycle-level simulator's functional
//! output must agree with the reference kernels on every dataset class.

use alrescha::{AcceleratedPcg, Alrescha, KernelType, SolverOptions};
use alrescha_kernels::{graph, pcg, spmv, symgs};
use alrescha_sim::PageRankConfig;
use alrescha_sparse::{approx_eq, gen, Csr};

#[test]
fn spmv_agrees_on_every_scientific_class() {
    let mut acc = Alrescha::with_paper_config();
    for class in gen::ScienceClass::ALL {
        let coo = class.generate(300, 11);
        let csr = Csr::from_coo(&coo);
        let x: Vec<f64> = (0..coo.cols()).map(|i| (i as f64 * 0.13).sin()).collect();
        let prog = acc.program(KernelType::SpMv, &coo).expect("program");
        let (y, _) = acc.spmv(&prog, &x).expect("run");
        let expect = spmv::spmv(&csr, &x);
        assert!(
            approx_eq(&y, &expect, 1e-11),
            "spmv mismatch on {}",
            class.name()
        );
    }
}

#[test]
fn spmv_agrees_on_every_graph_class() {
    let mut acc = Alrescha::with_paper_config();
    for class in gen::GraphClass::ALL {
        let coo = class.generate(256, 11);
        let csr = Csr::from_coo(&coo);
        let x: Vec<f64> = (0..coo.cols()).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let prog = acc.program(KernelType::SpMv, &coo).expect("program");
        let (y, _) = acc.spmv(&prog, &x).expect("run");
        let expect = spmv::spmv(&csr, &x);
        assert!(
            approx_eq(&y, &expect, 1e-11),
            "spmv mismatch on {}",
            class.name()
        );
    }
}

#[test]
fn symgs_sweeps_agree_on_every_scientific_class() {
    let mut acc = Alrescha::with_paper_config();
    for class in gen::ScienceClass::ALL {
        let coo = class.generate(300, 13);
        let csr = Csr::from_coo(&coo);
        let b: Vec<f64> = (0..coo.rows())
            .map(|i| ((i * 7) % 13) as f64 - 6.0)
            .collect();

        let prog = acc.program(KernelType::SymGs, &coo).expect("program");
        let mut x_dev = vec![0.0; coo.cols()];
        acc.symgs(&prog, &b, &mut x_dev).expect("device symgs");

        let mut x_ref = vec![0.0; coo.cols()];
        symgs::symgs(&csr, &b, &mut x_ref).expect("reference symgs");
        assert!(
            approx_eq(&x_dev, &x_ref, 1e-9),
            "symgs mismatch on {}",
            class.name()
        );
    }
}

#[test]
fn accelerated_pcg_matches_host_pcg_trajectory() {
    for class in [gen::ScienceClass::Stencil27, gen::ScienceClass::Structural] {
        let coo = class.generate(250, 3);
        let csr = Csr::from_coo(&coo);
        let x_true: Vec<f64> = (0..coo.rows())
            .map(|i| ((i % 9) as f64) * 0.5 - 2.0)
            .collect();
        let b = spmv::spmv(&csr, &x_true);

        let host = pcg::pcg(&csr, &b, &pcg::PcgOptions::default()).expect("host pcg");

        let mut acc = Alrescha::with_paper_config();
        let solver = AcceleratedPcg::program(&mut acc, &coo).expect("program");
        let dev = solver
            .solve(
                &mut acc,
                &b,
                &SolverOptions {
                    tol: 1e-10,
                    max_iters: 500,
                },
            )
            .expect("device solve");

        assert!(host.converged && dev.converged, "{}", class.name());
        assert!(
            (host.iterations as i64 - dev.iterations as i64).abs() <= 1,
            "{}: host {} device {}",
            class.name(),
            host.iterations,
            dev.iterations
        );
        assert!(approx_eq(&dev.x, &x_true, 1e-5), "{}", class.name());
    }
}

#[test]
fn bfs_agrees_on_every_graph_class() {
    let mut acc = Alrescha::with_paper_config();
    for class in gen::GraphClass::ALL {
        let coo = class.generate(200, 17);
        let csr = Csr::from_coo(&coo);
        let prog = acc.program(KernelType::Bfs, &coo).expect("program");
        let (levels, _) = acc.bfs(&prog, 0).expect("run");
        let expect = graph::bfs(&csr, 0).expect("reference");
        assert_eq!(levels, expect, "bfs mismatch on {}", class.name());
    }
}

#[test]
fn sssp_agrees_on_every_graph_class() {
    let mut acc = Alrescha::with_paper_config();
    for class in gen::GraphClass::ALL {
        let coo = class.generate(200, 19);
        let csr = Csr::from_coo(&coo);
        let prog = acc.program(KernelType::Sssp, &coo).expect("program");
        let (dist, _) = acc.sssp(&prog, 0).expect("run");
        let expect = graph::sssp(&csr, 0).expect("reference");
        assert!(
            dist.iter()
                .zip(&expect)
                .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9),
            "sssp mismatch on {}",
            class.name()
        );
    }
}

#[test]
fn pagerank_agrees_on_every_graph_class() {
    let mut acc = Alrescha::with_paper_config();
    for class in gen::GraphClass::ALL {
        let coo = class.generate(128, 23);
        let csr = Csr::from_coo(&coo);
        let prog = acc.program(KernelType::PageRank, &coo).expect("program");
        let (ranks, _) = acc
            .pagerank(&prog, &PageRankConfig::default())
            .expect("run");
        let (expect, _) =
            graph::pagerank(&csr, &graph::PageRankOptions::default()).expect("reference");
        assert!(
            approx_eq(&ranks, &expect, 1e-6),
            "pagerank mismatch on {}",
            class.name()
        );
    }
}

#[test]
fn reports_are_internally_consistent() {
    let mut acc = Alrescha::with_paper_config();
    let coo = gen::stencil27(5);
    let prog = acc.program(KernelType::SymGs, &coo).expect("program");
    let b = vec![1.0; coo.rows()];
    let mut x = vec![0.0; coo.cols()];
    let report = acc.symgs(&prog, &b, &mut x).expect("run");

    assert!(report.seconds > 0.0);
    assert!((0.0..=1.0).contains(&report.bandwidth_utilization));
    assert!((0.0..=1.0).contains(&report.cache_time_fraction));
    assert_eq!(
        report.reconfig.exposed_cycles, 0,
        "drain must hide reconfiguration"
    );
    assert!(report.energy.dram_bytes as u64 == report.bytes_streamed);
    assert!(report.energy.alu_ops > 0 && report.energy.pe_ops > 0);
    // Both data paths executed, and the table switches match the layout.
    assert!(report.datapaths.gemv_blocks > 0);
    assert!(report.datapaths.dsymgs_blocks > 0);
}
