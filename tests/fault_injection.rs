//! End-to-end fault-injection acceptance tests: ABFT checksum coverage of
//! FCU bit-flips, retry-based recovery, graceful degradation to the host
//! kernels, watchdog/deadline enforcement, and circuit-breaker failover —
//! all seeded and fully deterministic.

use alrescha::{
    Alrescha, BreakerConfig, ExecBudget, FaultPlan, KernelType, RecoveryPolicy, TerminationReason,
};
use alrescha_kernels::spmv::spmv;
use alrescha_sim::SimError;
use alrescha_sparse::{gen, Csr};

/// The GEMV column-sum checksums must catch at least 95% of injected FCU
/// lane and reduction-tree bit-flips (the escapes are compensating
/// multi-flip patterns within one block, which a single check value cannot
/// separate).
#[test]
fn checksums_detect_95_percent_of_fcu_flips() {
    let coo = gen::banded(512, 6, 11);
    let mut acc = Alrescha::with_paper_config();
    let prog = acc.program(KernelType::SpMv, &coo).unwrap();
    // FCU-only plan: every injected fault is a lane or tree flip.
    acc.set_fault_plan(Some(
        FaultPlan::inert(0xA15C_E5CA)
            .with_fcu_lane_rate(0.02)
            .with_fcu_tree_rate(0.02),
    ));
    acc.set_recovery_policy(RecoveryPolicy::Retry {
        max_retries: 16,
        backoff_cycles: 8,
    });
    let x: Vec<f64> = (0..coo.cols()).map(|i| 1.0 + ((i % 7) as f64) * 0.5).collect();
    let (_, report) = acc.spmv(&prog, &x).expect("retries absorb transient flips");

    assert!(
        report.faults.injected >= 20,
        "plan too quiet to be meaningful: {} injections",
        report.faults.injected
    );
    let coverage = report.faults.detected as f64 / report.faults.injected as f64;
    assert!(
        coverage >= 0.95,
        "checksum coverage {:.3} ({} detected / {} injected)",
        coverage,
        report.faults.detected,
        report.faults.injected
    );
    assert_eq!(
        report.faults.recovered, report.faults.detected,
        "a surviving run must have recovered everything it caught"
    );
}

/// Retry-from-checkpoint recovers the exact SpMV result whenever nothing
/// slipped past the checksums, and always charges the retry cycles.
#[test]
fn retry_policy_recovers_spmv() {
    let coo = gen::stencil27(4);
    let x: Vec<f64> = (0..coo.cols()).map(|i| (i as f64 * 0.11).sin()).collect();
    // Baseline: the fault-free device run (the reference CSR kernel only
    // agrees up to floating-point reassociation of the blocked order).
    let mut clean = Alrescha::with_paper_config();
    let prog = clean.program(KernelType::SpMv, &coo).unwrap();
    let (expect, _) = clean.spmv(&prog, &x).unwrap();

    let mut acc = Alrescha::with_paper_config();
    let prog = acc.program(KernelType::SpMv, &coo).unwrap();
    acc.set_fault_plan(Some(FaultPlan::inert(7).with_fcu_tree_rate(0.05)));
    acc.set_recovery_policy(RecoveryPolicy::Retry {
        max_retries: 16,
        backoff_cycles: 8,
    });
    let (y, report) = acc.spmv(&prog, &x).expect("retries succeed");
    assert!(report.faults.detected > 0, "plan must actually fire");
    assert!(report.faults.retries > 0, "recovery must have retried");
    if report.faults.detected == report.faults.injected {
        assert_eq!(y, expect, "nothing slipped, so recovery must be exact");
    } else {
        assert!(alrescha_sparse::approx_eq(&y, &expect, 1e-6));
    }
}

/// SymGS under buffer-drop faults: occupancy checks catch the drops, the
/// push sequence is rolled back and retried, and the sweep result matches
/// the fault-free device run exactly (drops never corrupt values).
#[test]
fn retry_policy_recovers_symgs_buffer_drops() {
    let coo = gen::stencil27(3);
    let b = vec![1.0; coo.rows()];

    let mut clean = Alrescha::with_paper_config();
    let prog = clean.program(KernelType::SymGs, &coo).unwrap();
    let mut x_clean = vec![0.0; coo.cols()];
    clean.symgs(&prog, &b, &mut x_clean).unwrap();

    let mut acc = Alrescha::with_paper_config();
    let prog = acc.program(KernelType::SymGs, &coo).unwrap();
    acc.set_fault_plan(Some(
        FaultPlan::inert(3)
            .with_lifo_drop_rate(0.05)
            .with_fifo_drop_rate(0.05),
    ));
    acc.set_recovery_policy(RecoveryPolicy::Retry {
        max_retries: 16,
        backoff_cycles: 4,
    });
    let mut x = vec![0.0; coo.cols()];
    let report = acc.symgs(&prog, &b, &mut x).expect("drops are recoverable");
    assert!(report.faults.detected > 0, "plan must actually fire");
    assert_eq!(report.faults.recovered, report.faults.detected);
    assert_eq!(x, x_clean, "buffer drops never corrupt values");
    assert!(
        report.cycles > 0,
        "recovered run still reports device cycles"
    );
}

/// A full PCG solve under permanent stuck-at memory faults: every device
/// kernel degrades to the host implementation, the solve still converges to
/// the true solution, and the degradation is visible in the report.
#[test]
fn pcg_degrades_to_cpu_and_stays_correct() {
    let coo = gen::stencil27(3);
    let csr = Csr::from_coo(&coo);
    let x_true: Vec<f64> = (0..coo.rows()).map(|i| ((i % 5) as f64) - 2.0).collect();
    let b = spmv(&csr, &x_true);

    let mut acc = Alrescha::with_paper_config();
    let solver = alrescha::AcceleratedPcg::program(&mut acc, &coo).unwrap();
    // Stuck-at faults re-apply on every retry, so the device always gives up.
    acc.set_fault_plan(Some(FaultPlan::inert(99).with_memory_stuck_rate(1.0)));
    acc.set_recovery_policy(RecoveryPolicy::DegradeToCpu {
        max_retries: 1,
        backoff_cycles: 4,
    });
    let out = solver
        .solve(&mut acc, &b, &alrescha::SolverOptions::default())
        .expect("degraded solve completes");
    assert!(out.converged, "residual {}", out.residual);
    assert!(alrescha_sparse::approx_eq(&out.x, &x_true, 1e-6));
    assert!(
        out.report.faults.degraded > 0,
        "degradation must be visible in the report"
    );
    assert!(out.report.faults.detected > 0);
}

/// A permanently wedged D-SymGS block scheduler must surface as a typed
/// stall within the watchdog window — the solve cannot hang.
#[test]
fn wedged_scheduler_stalls_within_budget() {
    let coo = gen::stencil27(3);
    let mut acc = Alrescha::with_paper_config();
    let prog = acc.program(KernelType::SymGs, &coo).unwrap();
    // The scheduler stops issuing blocks after the third one, forever.
    acc.set_fault_plan(Some(FaultPlan::inert(1).with_dsymgs_stall_after(3)));
    acc.set_budget(ExecBudget::cycles(5_000_000).with_watchdog(1024));
    let b = vec![1.0; coo.rows()];
    let mut x = vec![0.0; coo.cols()];
    let err = acc.symgs(&prog, &b, &mut x).unwrap_err();
    match err {
        alrescha::CoreError::Sim(SimError::Stalled {
            site,
            cycle,
            idle_cycles,
        }) => {
            assert_eq!(site, "d-symgs block scheduler");
            assert_eq!(idle_cycles, 1024, "watchdog window is what fired");
            assert!(
                cycle < 5_000_000,
                "stall must be reported inside the cycle budget, got {cycle}"
            );
        }
        other => panic!("expected Stalled, got {other:?}"),
    }
    assert_eq!(
        TerminationReason::from_error(&err),
        Some(TerminationReason::Stalled)
    );
}

/// A cycle budget tighter than the watchdog window wins: the run reports
/// the deadline, not the stall.
#[test]
fn tight_cycle_budget_reports_deadline() {
    let coo = gen::stencil27(3);
    let mut acc = Alrescha::with_paper_config();
    let prog = acc.program(KernelType::SpMv, &coo).unwrap();
    acc.set_budget(ExecBudget::cycles(10));
    let err = acc.spmv(&prog, &vec![1.0; coo.cols()]).unwrap_err();
    assert!(
        matches!(
            err,
            alrescha::CoreError::Sim(SimError::DeadlineExceeded {
                budget: "cycle",
                ..
            })
        ),
        "{err:?}"
    );
    assert_eq!(
        TerminationReason::from_error(&err),
        Some(TerminationReason::BudgetExhausted)
    );
}

/// Full PCG under a permanent device outage with a circuit breaker: the
/// breaker trips to the CPU backend after the configured failure run, the
/// solve still converges to the true solution, and the trips, fallback
/// runs, and recovery cycles are all visible in the merged report.
#[test]
fn breaker_failover_keeps_pcg_correct_and_visible() {
    let coo = gen::stencil27(3);
    let csr = Csr::from_coo(&coo);
    let x_true: Vec<f64> = (0..coo.rows()).map(|i| ((i % 5) as f64) - 2.0).collect();
    let b = spmv(&csr, &x_true);

    let mut acc = Alrescha::with_paper_config();
    let solver = alrescha::AcceleratedPcg::program(&mut acc, &coo).unwrap();
    // Permanent outage: stuck-at memory faults defeat every device attempt.
    acc.set_fault_plan(Some(FaultPlan::inert(99).with_memory_stuck_rate(1.0)));
    acc.set_circuit_breaker(Some(BreakerConfig {
        failure_threshold: 2,
        cooldown_ops: 8,
        max_attempts: 2,
        ..BreakerConfig::default()
    }));
    let out = solver
        .solve(&mut acc, &b, &alrescha::SolverOptions::default())
        .expect("breaker failover completes the solve");
    assert!(out.converged, "residual {}", out.residual);
    assert_eq!(out.reason, TerminationReason::Converged);
    assert!(alrescha_sparse::approx_eq(&out.x, &x_true, 1e-6));

    assert!(out.report.breaker.trips >= 1, "breaker must have tripped");
    assert!(
        out.report.breaker.cpu_fallback_runs > 0,
        "open-state operations must be served by the CPU"
    );
    assert!(
        out.report.breakdown.recovery_cycles > 0,
        "wasted device attempts and backoff must be charged"
    );
    assert_eq!(
        out.report.breakdown.total(),
        out.report.cycles,
        "cycle breakdown invariant must survive failover accounting"
    );
    assert!(out.report.faults.degraded > 0);
}

/// Fault hooks disabled: the armed-but-inert engine output is bit-identical
/// to the plain engine (the stronger regression is the property suite in
/// `crates/sim/tests/fault_determinism.rs`).
#[test]
fn disabled_hooks_are_bit_identical() {
    let coo = gen::stencil27(3);
    let x: Vec<f64> = (0..coo.cols()).map(|i| (i as f64 * 0.31).cos()).collect();

    let mut plain = Alrescha::with_paper_config();
    let prog = plain.program(KernelType::SpMv, &coo).unwrap();
    let (y_plain, rep_plain) = plain.spmv(&prog, &x).unwrap();

    let mut armed = Alrescha::with_paper_config();
    let prog = armed.program(KernelType::SpMv, &coo).unwrap();
    armed.set_fault_plan(Some(FaultPlan::inert(123)));
    let (y_armed, rep_armed) = armed.spmv(&prog, &x).unwrap();

    assert_eq!(y_plain, y_armed);
    assert_eq!(rep_plain, rep_armed);
    assert_eq!(armed.fault_counters().injected, 0);
}
