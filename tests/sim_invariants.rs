//! Property-based tests on simulator invariants: timing and accounting hold
//! for arbitrary diagonally dominant inputs and block widths.

use proptest::prelude::*;

use alrescha::{Alrescha, KernelType};
use alrescha_sim::SimConfig;
use alrescha_sparse::Coo;

fn arb_dd_matrix() -> impl Strategy<Value = Coo> {
    (2usize..32).prop_flat_map(|n| {
        let entry = (0..n, 0..n, 1i32..50);
        proptest::collection::vec(entry, 0..80).prop_map(move |entries| {
            let mut coo = Coo::new(n, n);
            let mut row_sum = vec![0.0; n];
            for (r, c, v) in entries {
                if r != c {
                    let v = -f64::from(v) / 60.0;
                    coo.push(r, c, v);
                    row_sum[r] += v.abs();
                }
            }
            for (i, s) in row_sum.iter().enumerate() {
                coo.push(i, i, s + 1.0);
            }
            coo.compress()
        })
    })
}

/// Regression pin for the shrunk case committed in
/// `sim_invariants.proptest-regressions`: a 9×9 diagonally dominant system
/// whose off-diagonals couple both ω=8 block rows in both directions, with
/// three pure-diagonal rows (2, 4, 5) interleaved.
///
/// **Root cause:** this shape maximizes data-path alternation in SymGS.
/// Each of the two block rows switches GEMV→D-SymGS→… within *each* sweep,
/// and symmetric Gauss–Seidel runs **two** sweeps (forward + backward), so
/// the simulator performs 8 switches where the configuration table's
/// straight-line count predicts only 3. A switch bound that counts one
/// sweep — `2·block_rows + 1 = 5` — is violated (8 > 5); the property's
/// bound must carry the outer factor two for the backward sweep:
/// `2·(2·block_rows + 1) = 10`. The committed seed keeps this
/// maximal-alternation shape exercised deterministically.
#[test]
fn committed_seed_needs_the_two_sweep_switch_bound() {
    let mut coo = Coo::new(9, 9);
    for (r, c, v) in [
        (0usize, 0usize, 1.5333333333333332f64),
        (0, 4, -0.5),
        (0, 5, -0.03333333333333333),
        (1, 1, 1.4666666666666668),
        (1, 2, -0.05),
        (1, 6, -0.4166666666666667),
        (2, 2, 1.0),
        (3, 1, -0.016666666666666666),
        (3, 2, -0.6333333333333333),
        (3, 3, 1.9333333333333333),
        (3, 8, -0.2833333333333333),
        (4, 4, 1.0),
        (5, 5, 1.0),
        (6, 0, -0.08333333333333333),
        (6, 6, 1.0833333333333333),
        (7, 3, -1.2333333333333334),
        (7, 5, -0.75),
        (7, 7, 3.7),
        (7, 8, -0.7166666666666668),
        (8, 1, -0.8166666666666668),
        (8, 8, 1.8166666666666669),
    ] {
        coo.push(r, c, v);
    }
    let coo = coo.compress();

    let mut acc = Alrescha::with_paper_config();
    let prog = acc.program(KernelType::SymGs, &coo).expect("programs");
    let b = vec![1.0; 9];
    let mut x = vec![0.0; 9];
    let report = acc.symgs(&prog, &b, &mut x).expect("runs");

    let block_rows = prog.matrix().block_rows() as u64;
    let table_switches = prog.table().switch_count() as u64;
    assert_eq!(block_rows, 2, "seed spans two ω=8 block rows");
    assert_eq!(table_switches, 3, "straight-line table undercounts sweeps");
    assert_eq!(report.reconfig.switches, 8, "deterministic switch count");
    // The single-sweep bound this seed originally broke…
    assert!(report.reconfig.switches > 2 * block_rows + 1);
    // …and the two-sweep bound the property asserts today.
    assert!(report.reconfig.switches <= 2 * (2 * block_rows + 1));
    // Alternation is still fully hidden under reduction-tree drains.
    assert_eq!(report.reconfig.exposed_cycles, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spmv_report_invariants(coo in arb_dd_matrix(), omega_pow in 1usize..6) {
        let omega = 1 << omega_pow;
        let config = SimConfig::paper().with_omega(omega);
        let mut acc = Alrescha::new(config);
        let prog = acc.program(KernelType::SpMv, &coo).expect("programs");
        let x = vec![1.0; coo.cols()];
        let (_, report) = acc.spmv(&prog, &x).expect("runs");

        prop_assert!(report.cycles > 0);
        prop_assert!(report.seconds > 0.0);
        prop_assert!((0.0..=1.0).contains(&report.bandwidth_utilization));
        prop_assert!((0.0..=1.0).contains(&report.cache_time_fraction));
        // Payload streamed is at least the dense blocks of the matrix.
        let expected_payload = prog.matrix().streamed_bytes() as u64;
        prop_assert!(report.bytes_streamed >= expected_payload);
        // ALU work: one omega-wide MAC row per block row.
        let block_count = prog.matrix().blocks().len() as u64;
        prop_assert_eq!(
            report.energy.alu_ops,
            block_count * (omega * omega) as u64
        );
    }

    #[test]
    fn symgs_reconfiguration_is_always_hidden(coo in arb_dd_matrix()) {
        let mut acc = Alrescha::with_paper_config();
        let prog = acc.program(KernelType::SymGs, &coo).expect("programs");
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let report = acc.symgs(&prog, &b, &mut x).expect("runs");
        // Table 5's latencies guarantee the switch fits under the drain.
        prop_assert_eq!(report.reconfig.exposed_cycles, 0);
        prop_assert!(report.reconfig.switches >= 1);
        prop_assert!(report.datapaths.dsymgs_blocks >= 1);
    }

    #[test]
    fn wider_blocks_never_reduce_streamed_bytes(coo in arb_dd_matrix()) {
        // Padding grows (weakly) with block width for a fixed matrix.
        let bytes: Vec<u64> = [4usize, 8, 16]
            .iter()
            .map(|&omega| {
                let mut acc = Alrescha::new(SimConfig::paper().with_omega(omega));
                let prog = acc.program(KernelType::SpMv, &coo).expect("programs");
                let x = vec![1.0; coo.cols()];
                acc.spmv(&prog, &x).expect("runs").1.bytes_streamed
            })
            .collect();
        prop_assert!(bytes[0] <= bytes[1] * 2, "4 -> 8: {} vs {}", bytes[0], bytes[1]);
        // Monotone within rounding: an omega-doubling cannot shrink the
        // dense-block footprint below the finer blocking's footprint.
        prop_assert!(bytes[1] <= bytes[2] * 2);
    }

    #[test]
    fn config_table_switches_bound_simulator_switches(coo in arb_dd_matrix()) {
        let mut acc = Alrescha::with_paper_config();
        let prog = acc.program(KernelType::SymGs, &coo).expect("programs");
        let table_switches = prog.table().switch_count() as u64;
        let block_rows = prog.matrix().block_rows() as u64;
        let b = vec![1.0; coo.rows()];
        let mut x = vec![0.0; coo.cols()];
        let report = acc.symgs(&prog, &b, &mut x).expect("runs");
        // Two sweeps; each block row switches at most twice per sweep
        // (into GEMV, into D-SymGS), plus the initial configuration. The
        // table's straight-line switch count is a lower-bound witness.
        prop_assert!(report.reconfig.switches >= table_switches.min(1));
        prop_assert!(
            report.reconfig.switches <= 2 * (2 * block_rows + 1),
            "sim {} block rows {}",
            report.reconfig.switches,
            block_rows
        );
    }
}
